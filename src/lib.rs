//! # nochatter
//!
//! *Want to gather? No need to chatter!* — a faithful, tested Rust
//! implementation of the deterministic gathering, leader-election and
//! gossiping algorithms of Bouchard, Dieudonné & Pelc (PODC 2020,
//! arXiv:1908.11402), together with the full simulation substrate they run
//! on.
//!
//! A team of labeled mobile agents starts from different nodes of an
//! unknown anonymous network, woken at adversarially chosen times. Agents
//! move synchronously along port-numbered edges, and the *only* thing an
//! agent can sense about its companions is **how many** currently share
//! its node. No messages, no visible labels, no marking. The paper — and
//! this library — shows that even so, the agents can gather at one node
//! and know it, elect a leader, and even solve full gossiping by encoding
//! bits into choreographed movement.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | anonymous port-labeled graphs, generators, initial configurations, exhaustive small-graph enumeration |
//! | [`sim`] | the synchronous execution engine: observations, wake schedules, declarations, the `Procedure` framework |
//! | [`explore`] | universal exploration sequences and `EXPLO(N)` |
//! | [`rendezvous`] | the label-schedule rendezvous `TZ(L)` |
//! | [`core`] | the paper's algorithms: `Communicate`, `GatherKnownUpperBound`, `GatherUnknownUpperBound`, `Gossip`, and the talking-model baseline |
//!
//! ## Quickstart
//!
//! ```
//! use nochatter::core::{harness, CommMode, KnownSetup};
//! use nochatter::graph::{generators, InitialConfiguration, Label, NodeId};
//! use nochatter::sim::WakeSchedule;
//!
//! let cfg = InitialConfiguration::new(
//!     generators::ring(5),
//!     vec![
//!         (Label::new(6).unwrap(), NodeId::new(0)),
//!         (Label::new(11).unwrap(), NodeId::new(3)),
//!     ],
//! )?;
//! let setup = KnownSetup::for_configuration(&cfg, 8, 7);
//! let outcome = harness::run_known(
//!     &cfg,
//!     &setup,
//!     CommMode::Silent,
//!     WakeSchedule::FirstOnly,
//! )?;
//! let report = outcome.gathering()?;
//! println!(
//!     "gathered at {} in round {} — leader {}",
//!     report.node,
//!     report.round,
//!     report.leader.unwrap(),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` for the system
//! inventory, substitutions and the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nochatter_core as core;
pub use nochatter_explore as explore;
pub use nochatter_graph as graph;
pub use nochatter_rendezvous as rendezvous;
pub use nochatter_sim as sim;
