//! Edge cases of the checkpoint/fork engine: a round-0 checkpoint is a
//! fresh run, a terminal run cannot be snapshotted, resume is insensitive
//! to scratch dirt, and pending wake/crash boundaries (with the
//! fast-forward decisions they cap) survive forking bitwise.

use nochatter_core::harness::{run_scenario_with_scratch, GatherScenario, ScenarioRun};
use nochatter_core::{CommMode, KnownSetup};
use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter_sim::{
    CrashPoint, EngineScratch, FaultSpec, RunOutcome, SimError, TopologySpec, WakeSchedule,
};

const SEED: u64 = 0xC0FFEE;

fn ring_cfg(n: u32) -> InitialConfiguration {
    let graph = generators::ring(n);
    let last = graph.node_count() as u32 - 1;
    InitialConfiguration::new(
        graph,
        vec![
            (Label::new(2).unwrap(), NodeId::new(0)),
            (Label::new(3).unwrap(), NodeId::new(last)),
        ],
    )
    .expect("distinct labels on distinct nodes")
}

fn scenario(
    cfg: &InitialConfiguration,
    schedule: WakeSchedule,
    fault: FaultSpec,
) -> GatherScenario<'_> {
    GatherScenario {
        cfg,
        mode: CommMode::Silent,
        schedule,
        topo: TopologySpec::Static,
        fault,
        seed: SEED,
        trace_capacity: Some(1 << 12),
    }
}

fn setup_for(cfg: &InitialConfiguration) -> KnownSetup {
    KnownSetup::for_configuration(cfg, cfg.size() as u32, SEED)
}

fn finish(s: &GatherScenario, setup: &KnownSetup) -> Result<RunOutcome, SimError> {
    let mut scratch = EngineScratch::new();
    ScenarioRun::begin(s, setup, &mut scratch)
        .expect("run begins")
        .finish(&mut scratch)
}

#[test]
fn a_round_zero_checkpoint_reproduces_the_run_exactly() {
    let cfg = ring_cfg(5);
    let setup = setup_for(&cfg);
    let s = scenario(&cfg, WakeSchedule::Simultaneous, FaultSpec::None);
    let mut scratch = EngineScratch::new();

    let donor = ScenarioRun::begin(&s, &setup, &mut scratch).expect("run begins");
    let cp = donor.checkpoint().expect("a freshly begun run snapshots");
    assert_eq!(cp.round(), 0);
    assert_eq!(cp.executed_rounds(), 0);

    let mut resumed = ScenarioRun::begin(&s, &setup, &mut scratch).expect("run begins");
    assert!(resumed.resume_from(&cp), "shapes match, behaviors fork");
    let via_checkpoint = resumed.finish(&mut scratch);
    let from_scratch = finish(&s, &setup);
    assert_eq!(
        format!("{via_checkpoint:?}"),
        format!("{from_scratch:?}"),
        "a round-0 checkpoint must be indistinguishable from a fresh begin"
    );
}

#[test]
fn a_terminated_run_declines_to_checkpoint() {
    let cfg = ring_cfg(4);
    let setup = setup_for(&cfg);
    let s = scenario(&cfg, WakeSchedule::Simultaneous, FaultSpec::None);
    let mut scratch = EngineScratch::new();

    let mut run = ScenarioRun::begin(&s, &setup, &mut scratch).expect("run begins");
    assert!(run.checkpoint().is_some(), "a live run snapshots");
    loop {
        if let Some(result) = run.step(&mut scratch) {
            result.expect("run terminates cleanly");
            break;
        }
    }
    assert!(
        run.checkpoint().is_none(),
        "finishing takes the result-bearing state; a terminal run has \
         nothing coherent left to snapshot"
    );
}

#[test]
fn resume_is_insensitive_to_scratch_dirt() {
    let cfg = ring_cfg(5);
    let setup = setup_for(&cfg);
    let s = scenario(&cfg, WakeSchedule::Staggered { gap: 3 }, FaultSpec::None);

    // Take a mid-run checkpoint with a clean scratch.
    let mut clean = EngineScratch::new();
    let mut donor = ScenarioRun::begin(&s, &setup, &mut clean).expect("run begins");
    let mut cp = donor.checkpoint().expect("live run snapshots");
    for _ in 0..6 {
        if donor.step(&mut clean).is_some() {
            break;
        }
        cp = donor.checkpoint().expect("live run snapshots");
    }

    // Dirty a scratch with an unrelated run (different shape, mode,
    // schedule), then resume through it.
    let mut dirty = EngineScratch::new();
    let other = InitialConfiguration::new(
        generators::star(7),
        vec![
            (Label::new(8).unwrap(), NodeId::new(1)),
            (Label::new(9).unwrap(), NodeId::new(6)),
        ],
    )
    .unwrap();
    run_scenario_with_scratch(
        &other,
        CommMode::Talking,
        WakeSchedule::FirstOnly,
        &TopologySpec::Static,
        &FaultSpec::None,
        99,
        Some(1 << 10),
        &mut dirty,
    )
    .expect("warmup run succeeds");

    let mut resumed = ScenarioRun::begin(&s, &setup, &mut dirty).expect("run begins");
    assert!(resumed.resume_from(&cp));
    let via_dirty = resumed.finish(&mut dirty);
    let from_scratch = finish(&s, &setup);
    assert_eq!(
        format!("{via_dirty:?}"),
        format!("{from_scratch:?}"),
        "grow-only scratch buffers must not leak into a resumed run"
    );
}

/// Forks a run of `donor` into `target` from the deepest checkpoint at or
/// below `max_round` (stepping the donor at most to it), finishes the
/// forked run, and asserts it is bitwise identical to `target` run from
/// scratch. Returns the checkpoint round actually used.
fn fork_and_compare(
    cfg: &InitialConfiguration,
    donor: &GatherScenario,
    target: &GatherScenario,
    max_round: u64,
) -> u64 {
    let setup = setup_for(cfg);
    let mut scratch = EngineScratch::new();
    let mut run = ScenarioRun::begin(donor, &setup, &mut scratch).expect("donor begins");
    let mut cp = run.checkpoint().expect("live run snapshots");
    loop {
        if run.next_round() > max_round {
            break;
        }
        if run.step(&mut scratch).is_some() {
            break;
        }
        match run.checkpoint() {
            Some(next) if next.round() <= max_round => cp = next,
            _ => break,
        }
    }

    let mut forked = ScenarioRun::begin(target, &setup, &mut scratch).expect("target begins");
    assert!(forked.resume_from(&cp), "shapes match, behaviors fork");
    let via_fork = forked.finish(&mut scratch);
    let from_scratch = finish(target, &setup);
    assert_eq!(
        format!("{via_fork:?}"),
        format!("{from_scratch:?}"),
        "forking from round {} must be invisible in the outcome",
        cp.round()
    );
    cp.round()
}

#[test]
fn forking_across_a_pending_wake_boundary_preserves_the_schedule() {
    let cfg = ring_cfg(5);
    // Agent 3 wakes adversarially at round 40. Checkpoints up to round 39
    // are sound for any same-shape candidate differing only at 40+; the
    // fast-forward consults the pending wake when sizing its skips, so
    // this exercises exactly the FF-cap-survives-forking contract.
    let donor = scenario(&cfg, WakeSchedule::Explicit(vec![0, 40]), FaultSpec::None);
    let target = scenario(&cfg, WakeSchedule::Explicit(vec![0, 44]), FaultSpec::None);
    // Divergence rule: differing wakes 40 vs 44 ⇒ sound through round 39.
    let used = fork_and_compare(&cfg, &donor, &target, 39);
    assert!(used > 0, "the fork must not degenerate to a fresh run");
}

#[test]
fn forking_across_a_pending_crash_boundary_reconciles_the_crash() {
    let cfg = ring_cfg(5);
    let crash_at = |round: u64| {
        FaultSpec::CrashAt(vec![CrashPoint {
            label: Label::new(3).unwrap(),
            round,
        }])
    };
    // Donor crashes agent 3 at round 90, target at round 120: identical
    // through round 89, and the checkpointed pending-crash slot must be
    // re-resolved against the *target's* spec on resume.
    let donor = scenario(&cfg, WakeSchedule::Simultaneous, crash_at(90));
    let target = scenario(&cfg, WakeSchedule::Simultaneous, crash_at(120));
    let used = fork_and_compare(&cfg, &donor, &target, 89);
    assert!(used > 0, "the fork must not degenerate to a fresh run");

    // And from a faulty donor into a fault-free target: the pending crash
    // is dropped, not inherited.
    let clean = scenario(&cfg, WakeSchedule::Simultaneous, FaultSpec::None);
    fork_and_compare(&cfg, &donor, &clean, 89);
    // The reverse direction arms a crash the donor never had.
    fork_and_compare(&cfg, &clean, &donor, 89);
}
