//! Property: the batched multi-run engine pass is bitwise identical to
//! running each scenario individually — across sensing modes, wake
//! schedules, round-varying topologies, crash faults, trace capture, and a
//! scratch left dirty by unrelated prior work.

use proptest::prelude::*;

use nochatter_core::harness::{
    run_scenario_batch_with_scratch, run_scenario_with_scratch, GatherScenario,
};
use nochatter_core::CommMode;
use nochatter_graph::dynamic::{DynamicRing, PeriodicEdges, ScriptedRing, SeededEdgeFailure};
use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter_sim::{CrashPoint, EngineScratch, FaultSpec, TopologySpec, WakeSchedule};

/// A small instance: ring, path or star with two agents.
fn instance(shape: u8, n: u32, labels: (u64, u64)) -> InitialConfiguration {
    let graph = match shape % 3 {
        0 => generators::ring(n),
        1 => generators::path(n),
        _ => generators::star(n),
    };
    let last = graph.node_count() as u32 - 1;
    InitialConfiguration::new(
        graph,
        vec![
            (Label::new(labels.0).unwrap(), NodeId::new(0)),
            (Label::new(labels.1).unwrap(), NodeId::new(last)),
        ],
    )
    .expect("distinct labels on distinct nodes")
}

fn topo(choice: u8, shape: u8) -> TopologySpec {
    match choice % 5 {
        0 => TopologySpec::Static,
        1 => TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.15, seed: 9 }),
        2 => TopologySpec::Periodic(PeriodicEdges {
            period: 3,
            offset: 1,
        }),
        // The dynamic-ring specs only run over a cycle; fall back to
        // static on the other shapes.
        3 if shape.is_multiple_of(3) => TopologySpec::Ring(DynamicRing { seed: 9 }),
        // The explicit choice-list adversary the search harness emits:
        // remove edge 0, then nothing, then edge 1, repeating.
        4 if shape.is_multiple_of(3) => TopologySpec::Scripted(ScriptedRing {
            script: vec![0, ScriptedRing::KEEP_ALL, 1],
        }),
        _ => TopologySpec::Static,
    }
}

fn fault(choice: u8, label: u64) -> FaultSpec {
    match choice % 3 {
        0 => FaultSpec::None,
        1 => FaultSpec::CrashAt(vec![CrashPoint {
            label: Label::new(label).unwrap(),
            round: 25,
        }]),
        _ => FaultSpec::SeededCrash {
            p: 0.002,
            seed: 3,
            max_crashes: 1,
        },
    }
}

fn schedule(choice: u8) -> WakeSchedule {
    match choice % 3 {
        0 => WakeSchedule::Simultaneous,
        1 => WakeSchedule::FirstOnly,
        _ => WakeSchedule::Staggered { gap: 3 },
    }
}

/// One batch: an instance-sharing group of 1..=4 cells (same cfg + seed,
/// varying execution axes) optionally followed by a second group on a
/// different instance, exactly the layout the campaign runner produces.
#[derive(Debug, Clone)]
struct Drawn {
    shape: u8,
    n: u32,
    seed: u64,
    cells: Vec<(u8, u8, u8, u8, bool)>, // (mode, sched, topo, fault, trace)
    second_group: bool,
}

fn drawn() -> impl Strategy<Value = Drawn> {
    (
        any::<u8>(),
        4u32..7,
        any::<u64>(),
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<bool>(),
            ),
            1..=4,
        ),
        any::<bool>(),
    )
        .prop_map(|(shape, n, seed, cells, second_group)| Drawn {
            shape,
            n,
            seed,
            cells,
            second_group,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn batched_pass_is_bitwise_identical_to_individual_runs(d in drawn()) {
        let cfg = instance(d.shape, d.n, (2, 3));
        let cfg2 = instance(d.shape.wrapping_add(1), d.n, (4, 5));
        let mut batch: Vec<GatherScenario<'_>> = d
            .cells
            .iter()
            .map(|&(m, s, t, f, trace)| GatherScenario {
                cfg: &cfg,
                mode: if m % 2 == 0 { CommMode::Silent } else { CommMode::Talking },
                schedule: schedule(s),
                topo: topo(t, d.shape),
                fault: fault(f, 3),
                seed: d.seed,
                trace_capacity: trace.then_some(1 << 12),
            })
            .collect();
        if d.second_group {
            batch.push(GatherScenario {
                cfg: &cfg2,
                mode: CommMode::Silent,
                schedule: WakeSchedule::Simultaneous,
                topo: TopologySpec::Static,
                fault: FaultSpec::None,
                seed: d.seed.wrapping_add(1),
                trace_capacity: Some(1 << 12),
            });
        }

        // Dirty the shared scratch with an unrelated run first: the batched
        // pass must be insensitive to whatever a previous campaign cell
        // left behind in the grow-only buffers.
        let mut dirty = EngineScratch::new();
        let warmup = instance(2, 6, (8, 9));
        run_scenario_with_scratch(
            &warmup,
            CommMode::Talking,
            WakeSchedule::FirstOnly,
            &TopologySpec::Static,
            &FaultSpec::None,
            99,
            Some(1 << 10),
            &mut dirty,
        )
        .expect("warmup run succeeds");

        let batched = run_scenario_batch_with_scratch(&batch, &mut dirty);
        prop_assert_eq!(batched.len(), batch.len());
        for (cell, got) in batch.iter().zip(&batched) {
            let solo = run_scenario_with_scratch(
                cell.cfg,
                cell.mode,
                cell.schedule.clone(),
                &cell.topo,
                &cell.fault,
                cell.seed,
                cell.trace_capacity,
                &mut EngineScratch::new(),
            );
            // Debug formatting covers every outcome field, the full event
            // trace included.
            prop_assert_eq!(format!("{:?}", got), format!("{:?}", solo));
        }
    }
}
