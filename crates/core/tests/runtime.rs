//! Pins the data-oriented agent runtime against the historical storage:
//! running the real algorithm stack through [`BehaviorSlot`] enum dispatch
//! (what every harness runner now does) is bitwise identical to running
//! the same stack through per-agent `Box<dyn AgentBehavior>` storage (the
//! pre-refactor wiring, still available as the engine's default `B`) —
//! across sensing modes, wake schedules, graph families, with the slot
//! run sharing one deliberately dirty scratch.
//!
//! Together with the golden smoke campaign (byte-identical to the
//! recording made before the agent-runtime refactor), this is the
//! refactor's behavior-preservation proof: storage and dispatch changed,
//! bits did not.

use std::cell::RefCell;

use proptest::prelude::*;

use nochatter_core::{harness, CommMode, GatherKnownUpperBound, KnownSetup};
use nochatter_graph::generators::Family;
use nochatter_graph::{InitialConfiguration, Label, NodeId};
use nochatter_sim::{Engine, EngineScratch, RunOutcome, Sensing, SimError, WakeSchedule};

fn sensing_for(mode: CommMode) -> Sensing {
    match mode {
        CommMode::Silent => Sensing::Weak,
        CommMode::Talking => Sensing::Traditional,
    }
}

/// The pre-refactor wiring, verbatim: one boxed behavior per agent through
/// the engine's default storage.
fn run_known_boxed(
    cfg: &InitialConfiguration,
    setup: &KnownSetup,
    mode: CommMode,
    schedule: WakeSchedule,
    trace_capacity: usize,
) -> Result<RunOutcome, SimError> {
    let mut engine = Engine::new(cfg.graph());
    engine.set_sensing(sensing_for(mode));
    engine.record_trace(trace_capacity);
    for &(label, start) in cfg.agents() {
        engine.add_agent(
            label,
            start,
            Box::new(
                GatherKnownUpperBound::with_mode(setup.params().clone(), label, mode)
                    .into_behavior(),
            ),
        );
    }
    engine.set_wake_schedule(schedule);
    let limit = setup.params().round_limit(cfg.smallest_label_bit_len());
    engine.run(limit)
}

fn scenario_strategy() -> impl Strategy<Value = (InitialConfiguration, u64, WakeSchedule, CommMode)>
{
    (0usize..4, 4u32..7, any::<u64>(), 0u64..3, any::<bool>()).prop_map(
        |(family, n, seed, sched, talking)| {
            let family = [Family::Ring, Family::Path, Family::Star, Family::Grid][family];
            let graph = family.instantiate(n, seed);
            let n_actual = graph.node_count() as u32;
            let cfg = InitialConfiguration::new(
                graph,
                vec![
                    (Label::new(2).unwrap(), NodeId::new(0)),
                    (Label::new(seed % 5 + 3).unwrap(), NodeId::new(n_actual / 2)),
                ],
            )
            .expect("two distinct starts on ≥4 nodes");
            let schedule = match sched {
                0 => WakeSchedule::Simultaneous,
                1 => WakeSchedule::FirstOnly,
                _ => WakeSchedule::Staggered { gap: seed % 9 + 1 },
            };
            let mode = if talking {
                CommMode::Talking
            } else {
                CommMode::Silent
            };
            (cfg, seed, schedule, mode)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn enum_dispatch_is_bitwise_identical_to_boxed_dispatch(
        (cfg, seed, schedule, mode) in scenario_strategy()
    ) {
        thread_local! {
            static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::new());
        }
        let setup = KnownSetup::for_configuration(&cfg, cfg.size() as u32, seed);
        let capacity = 1 << 14;
        let boxed = run_known_boxed(&cfg, &setup, mode, schedule.clone(), capacity).unwrap();
        let slots = SCRATCH.with(|scratch| {
            harness::run_known_traced_with_scratch(
                &cfg,
                &setup,
                mode,
                schedule,
                Some(capacity),
                &mut scratch.borrow_mut(),
            )
            .unwrap()
        });
        prop_assert_eq!(format!("{boxed:?}"), format!("{slots:?}"));
        prop_assert_eq!(
            boxed.trace.as_ref().unwrap().events(),
            slots.trace.as_ref().unwrap().events()
        );
        // Both are the real algorithm: the gathering must validate.
        prop_assert!(slots.gathering().is_ok());
    }
}
