//! Timing parameters of the known-upper-bound algorithm.

use std::sync::Arc;

use nochatter_explore::{Explo, Uxs};

/// Shared parameters of `GatherKnownUpperBound` and the algorithms built on
/// it: the known upper bound `N` on the graph size and the universal
/// exploration sequence realizing `EXPLO(N)`.
///
/// All the paper's duration constants derive from these:
///
/// * `T(EXPLO(N)) = 2 · |uxs|` — [`KnownParams::t_explo`];
/// * `P(N, k)` — the `TZ` meeting bound, [`KnownParams::p`];
/// * `D_k = P(N, k) + 3(k+2)·T(EXPLO(N))` — [`KnownParams::d`]
///   (§3.2 of the paper, verbatim).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use nochatter_core::KnownParams;
/// use nochatter_explore::Uxs;
/// use nochatter_graph::generators;
///
/// let g = generators::ring(6);
/// let uxs = Uxs::covering(std::slice::from_ref(&g), 0).unwrap();
/// let params = KnownParams::new(8, Arc::new(uxs));
/// assert_eq!(params.d(1), params.p(1) + 9 * params.t_explo());
/// ```
#[derive(Clone, Debug)]
pub struct KnownParams {
    n_upper: u32,
    uxs: Arc<Uxs>,
}

impl KnownParams {
    /// Parameters for a known upper bound `n_upper >= 2` and an exploration
    /// sequence certified for all graphs the algorithm will run on.
    ///
    /// # Panics
    ///
    /// Panics if `n_upper < 2` or the sequence is empty.
    pub fn new(n_upper: u32, uxs: Arc<Uxs>) -> Self {
        assert!(n_upper >= 2, "the network has at least 2 nodes");
        assert!(!uxs.is_empty(), "EXPLO needs a non-empty sequence");
        KnownParams { n_upper, uxs }
    }

    /// Convenience constructor: builds a certified covering sequence for
    /// `corpus` (the graphs the algorithm will be evaluated on) and wraps it
    /// with the bound `n_upper`.
    ///
    /// # Panics
    ///
    /// Panics if certification fails (see [`Uxs::covering`]) or
    /// `n_upper < 2`.
    pub fn for_corpus(n_upper: u32, corpus: &[nochatter_graph::Graph], seed: u64) -> Self {
        let uxs = Uxs::covering(corpus, seed).expect("corpus must be coverable");
        KnownParams::new(n_upper, Arc::new(uxs))
    }

    /// The known upper bound `N`.
    pub fn n_upper(&self) -> u32 {
        self.n_upper
    }

    /// The shared exploration sequence.
    pub fn uxs(&self) -> &Arc<Uxs> {
        &self.uxs
    }

    /// `T(EXPLO(N))`: the exact duration of one `EXPLO` execution.
    pub fn t_explo(&self) -> u64 {
        Explo::duration(&self.uxs)
    }

    /// `P(N, k)`: two parties running `TZ` with distinct parameters, one of
    /// bit length `<= k`, starting at most `T/2` apart, meet within this
    /// many rounds of the later start.
    pub fn p(&self, k: u32) -> u64 {
        nochatter_rendezvous::meeting_bound(&self.uxs, k)
    }

    /// `D_k = P(N, k) + 3(k+2) · T(EXPLO(N))` (paper §3.2).
    pub fn d(&self, k: u32) -> u64 {
        self.p(k) + 3 * (u64::from(k) + 2) * self.t_explo()
    }

    /// The paper's bound on the number of phases executed before gathering
    /// is declared: `⌊log N⌋ + 2ℓ + 2`, where `ℓ` is the bit length of the
    /// smallest label (Theorem 3.1).
    pub fn phase_bound(&self, smallest_label_bits: u32) -> u32 {
        let log_n = 31 - self.n_upper.leading_zeros(); // ⌊log2 N⌋, N >= 2
        log_n + 2 * smallest_label_bits + 2
    }

    /// A safe engine round limit for a full run: the per-phase duration
    /// bound `D_{i+1} + 2 D_i + (5i+6) T` summed over the phase bound, plus
    /// wake-up slack. Exceeding this indicates a bug, not slowness.
    pub fn round_limit(&self, smallest_label_bits: u32) -> u64 {
        let phases = u64::from(self.phase_bound(smallest_label_bits)) + 1;
        let worst_phase = self
            .d(self.phase_bound(smallest_label_bits) + 1)
            .saturating_mul(4)
            .saturating_add((5 * phases + 6).saturating_mul(self.t_explo()));
        phases
            .saturating_mul(worst_phase)
            .saturating_add(4 * self.t_explo())
            .saturating_mul(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::generators;

    fn params() -> KnownParams {
        let corpus = vec![generators::ring(5), generators::path(4)];
        KnownParams::for_corpus(6, &corpus, 1)
    }

    #[test]
    fn t_explo_is_twice_sequence_length() {
        let p = params();
        assert_eq!(p.t_explo(), 2 * p.uxs().len() as u64);
    }

    #[test]
    fn d_is_monotone_with_big_gaps() {
        let p = params();
        for k in 1..10 {
            // The correctness proofs need D_{k+1} > D_k + 3T.
            assert!(p.d(k + 1) > p.d(k) + 3 * p.t_explo());
            // ...and D_k >= P(N,k) + T/2.
            assert!(p.d(k) >= p.p(k) + p.t_explo() / 2);
        }
    }

    #[test]
    fn phase_bound_grows_with_label_length() {
        let p = params();
        // ⌊log2 6⌋ = 2, so the bound is 2 + 2ℓ + 2.
        assert_eq!(p.phase_bound(1), 6);
        assert_eq!(p.phase_bound(3), 10);
    }

    #[test]
    fn round_limit_is_finite_and_dominates_d() {
        let p = params();
        assert!(p.round_limit(4) > p.d(p.phase_bound(4)));
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_tiny_bound() {
        let corpus = vec![generators::path(2)];
        KnownParams::for_corpus(1, &corpus, 0);
    }
}
