//! Convenience runners wiring configurations, parameters and behaviors into
//! the engine — used by tests, examples and the benchmark harness.
//!
//! Every runner here builds its engine over [`BehaviorSlot`] storage: the
//! built-in algorithm stack lives inline in the agent arena and
//! enum-dispatches, with no per-agent `Box` and no vtable call per round.

use std::sync::{Arc, Mutex};

use nochatter_graph::{InitialConfiguration, Label};
use nochatter_sim::{
    ActiveRun, BatchEngine, Engine, EngineScratch, FaultSpec, RunCheckpoint, RunOutcome, Sensing,
    SimError, SpecView, Static, Topology, TopologySpec, WakeSchedule,
};

use crate::codec::BitStr;
use crate::gossip::{GossipKnownUpperBound, GossipReport};
use crate::known::CommMode;
use crate::params::KnownParams;
use crate::slot::BehaviorSlot;

/// Bundled parameters for known-upper-bound runs.
#[derive(Clone, Debug)]
pub struct KnownSetup {
    params: KnownParams,
}

impl KnownSetup {
    /// Builds parameters whose exploration sequence is certified for the
    /// configuration's graph, with the declared upper bound `n_upper`
    /// (clamped up to the true size — `N` must be an upper bound).
    pub fn for_configuration(cfg: &InitialConfiguration, n_upper: u32, seed: u64) -> Self {
        let n = n_upper.max(cfg.size() as u32);
        KnownSetup {
            params: KnownParams::for_corpus(n, std::slice::from_ref(cfg.graph()), seed),
        }
    }

    /// Wraps explicit parameters.
    pub fn from_params(params: KnownParams) -> Self {
        KnownSetup { params }
    }

    /// The underlying timing parameters.
    pub fn params(&self) -> &KnownParams {
        &self.params
    }
}

fn sensing_for(mode: CommMode) -> Sensing {
    match mode {
        CommMode::Silent => Sensing::Weak,
        CommMode::Talking => Sensing::Traditional,
    }
}

/// Runs `GatherKnownUpperBound` for every agent of `cfg` under the given
/// wake schedule; the round limit is derived from the paper's complexity
/// bound, so hitting it means a bug rather than slowness.
///
/// # Errors
///
/// Propagates engine setup or protocol errors.
pub fn run_known(
    cfg: &InitialConfiguration,
    setup: &KnownSetup,
    mode: CommMode,
    schedule: WakeSchedule,
) -> Result<RunOutcome, SimError> {
    run_known_traced(cfg, setup, mode, schedule, None)
}

/// [`run_known`] with optional event tracing (capacity in events); the
/// recorded trace lands in [`RunOutcome::trace`].
///
/// # Errors
///
/// Propagates engine setup or protocol errors.
pub fn run_known_traced(
    cfg: &InitialConfiguration,
    setup: &KnownSetup,
    mode: CommMode,
    schedule: WakeSchedule,
    trace_capacity: Option<usize>,
) -> Result<RunOutcome, SimError> {
    run_known_traced_with_scratch(
        cfg,
        setup,
        mode,
        schedule,
        trace_capacity,
        &mut EngineScratch::new(),
    )
}

/// [`run_known_traced`] against caller-owned engine working memory, so a
/// loop over many runs allocates nothing in steady state. Identical
/// outcomes, bit for bit.
///
/// # Errors
///
/// Propagates engine setup or protocol errors.
pub fn run_known_traced_with_scratch(
    cfg: &InitialConfiguration,
    setup: &KnownSetup,
    mode: CommMode,
    schedule: WakeSchedule,
    trace_capacity: Option<usize>,
    scratch: &mut EngineScratch,
) -> Result<RunOutcome, SimError> {
    run_known_view(
        cfg,
        KnownRun {
            setup,
            mode,
            schedule,
            fault: &FaultSpec::None,
            trace_capacity,
        },
        &Static,
        scratch,
    )
}

/// The non-configuration arguments of one known-upper-bound engine run,
/// grouped so the wiring function keeps a readable signature as axes
/// (sensing mode, wake schedule, fault adversary, tracing) accumulate.
struct KnownRun<'a> {
    setup: &'a KnownSetup,
    mode: CommMode,
    schedule: WakeSchedule,
    fault: &'a FaultSpec,
    trace_capacity: Option<usize>,
}

/// The one engine-wiring path behind every known-upper-bound runner,
/// monomorphized over the topology: the [`Static`] instantiation is the
/// fault-free pre-dynamic hot path, and one [`nochatter_sim::SpecView`]
/// instantiation covers every round-varying provider. Agents are stored as
/// [`BehaviorSlot::KnownGather`] — inline, enum-dispatched, unboxed.
fn run_known_view<T: Topology>(
    cfg: &InitialConfiguration,
    run: KnownRun<'_>,
    topology: &T,
    scratch: &mut EngineScratch,
) -> Result<RunOutcome, SimError> {
    let mut engine: Engine<'_, T::View, BehaviorSlot> = Engine::with_parts(cfg.graph(), topology);
    engine.set_sensing(sensing_for(run.mode));
    engine.set_faults(run.fault.clone());
    if let Some(capacity) = run.trace_capacity {
        engine.record_trace(capacity);
    }
    for &(label, start) in cfg.agents() {
        engine.add_agent(
            label,
            start,
            BehaviorSlot::known_gather(run.setup.params.clone(), label, run.mode),
        );
    }
    engine.set_wake_schedule(run.schedule);
    let limit = run.setup.params.round_limit(cfg.smallest_label_bit_len());
    engine.run_with_scratch(limit, scratch)
}

/// The single entry point every scenario-style consumer (the bench tables,
/// the `nochatter-lab` campaign runner, the differential tests, examples)
/// uses to execute one known-upper-bound gathering scenario.
///
/// Builds the [`KnownSetup`] from `(cfg, seed)` — the exploration-sequence
/// stream derives from `seed`, the bound is the true size — and runs under
/// `mode`, `schedule`, the round-varying topology described by `topo`
/// ([`TopologySpec::Static`] is the paper's model and costs nothing; see
/// [`nochatter_graph::dynamic`] for the dynamic providers) and the
/// crash-fault adversary `fault` ([`FaultSpec::None`] is the paper's model
/// and costs nothing). Fully deterministic: identical arguments produce a
/// bitwise-identical [`RunOutcome`], which is what makes sharded campaign
/// runs reproducible regardless of worker count.
///
/// # Errors
///
/// Propagates engine setup or protocol errors.
///
/// # Panics
///
/// Panics if `topo` is incompatible with the configuration's graph
/// (a [`TopologySpec::Ring`] over a non-cycle — check
/// [`TopologySpec::compatible_with`] first).
///
/// # Example
///
/// ```
/// use nochatter_core::{harness, CommMode};
/// use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
/// use nochatter_sim::{FaultSpec, TopologySpec, WakeSchedule};
///
/// let cfg = InitialConfiguration::new(
///     generators::ring(4),
///     vec![
///         (Label::new(2).unwrap(), NodeId::new(0)),
///         (Label::new(3).unwrap(), NodeId::new(2)),
///     ],
/// )?;
/// let outcome = harness::run_scenario(
///     &cfg,
///     CommMode::Silent,
///     WakeSchedule::Simultaneous,
///     &TopologySpec::Static,
///     &FaultSpec::None,
///     7,
///     None,
/// )?;
/// assert!(outcome.gathering().is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_scenario(
    cfg: &InitialConfiguration,
    mode: CommMode,
    schedule: WakeSchedule,
    topo: &TopologySpec,
    fault: &FaultSpec,
    seed: u64,
    trace_capacity: Option<usize>,
) -> Result<RunOutcome, SimError> {
    run_scenario_with_scratch(
        cfg,
        mode,
        schedule,
        topo,
        fault,
        seed,
        trace_capacity,
        &mut EngineScratch::new(),
    )
}

/// [`run_scenario`] against caller-owned engine working memory: the
/// buffers behind occupancy tracking and observations are reused instead
/// of reallocated, which is what the campaign runner threads through each
/// of its workers. Identical outcomes, bit for bit.
///
/// # Errors
///
/// Propagates engine setup or protocol errors.
///
/// # Panics
///
/// Panics if `topo` is incompatible with the configuration's graph.
#[allow(clippy::too_many_arguments)] // the scenario axes ARE the signature; grouped callers use GatherScenario
pub fn run_scenario_with_scratch(
    cfg: &InitialConfiguration,
    mode: CommMode,
    schedule: WakeSchedule,
    topo: &TopologySpec,
    fault: &FaultSpec,
    seed: u64,
    trace_capacity: Option<usize>,
    scratch: &mut EngineScratch,
) -> Result<RunOutcome, SimError> {
    let setup = KnownSetup::for_configuration(cfg, cfg.size() as u32, seed);
    let run = KnownRun {
        setup: &setup,
        mode,
        schedule,
        fault,
        trace_capacity,
    };
    if topo.is_static() {
        // The zero-cost monomorphization: exactly the fault-free
        // pre-dynamic engine when `fault` is `FaultSpec::None`.
        run_known_view(cfg, run, &Static, scratch)
    } else {
        run_known_view(cfg, run, topo, scratch)
    }
}

/// One known-upper-bound gathering scenario of a [`run_scenario_batch`]
/// call: the argument tuple of [`run_scenario`], minus the configuration
/// borrow's lifetime plumbing.
#[derive(Clone, Debug)]
pub struct GatherScenario<'a> {
    /// The initial configuration to run.
    pub cfg: &'a InitialConfiguration,
    /// Silent (weak sensing) or talking (traditional sensing).
    pub mode: CommMode,
    /// The adversary's wake schedule.
    pub schedule: WakeSchedule,
    /// The round-varying topology ([`TopologySpec::Static`] for the
    /// paper's model).
    pub topo: TopologySpec,
    /// The crash-fault adversary ([`FaultSpec::None`] for the paper's
    /// model).
    pub fault: FaultSpec,
    /// Seed of the exploration-sequence stream.
    pub seed: u64,
    /// Event-trace capacity, if a trace is wanted.
    pub trace_capacity: Option<usize>,
}

/// Runs a batch of gathering scenarios through the batched multi-run
/// engine pass. Each entry's outcome is bitwise identical to what
/// [`run_scenario`] returns for the same arguments; an engine error in one
/// scenario does not abort the rest.
///
/// Consecutive entries sharing a configuration and seed — the campaign
/// runner's instance sub-key grouping produces exactly this layout — are
/// executed as **one** [`BatchEngine`] over **one** [`KnownSetup`]: the
/// certified exploration-sequence corpus, the dominant per-scenario setup
/// cost, is built once per group instead of once per cell, and the group's
/// runs interleave through one round loop with shared scratch. Entries
/// that share nothing still run correctly, just without amortization.
pub fn run_scenario_batch(batch: &[GatherScenario<'_>]) -> Vec<Result<RunOutcome, SimError>> {
    run_scenario_batch_with_scratch(batch, &mut EngineScratch::new())
}

/// [`run_scenario_batch`] against caller-owned engine working memory (the
/// campaign runner threads one scratch per worker through every batch it
/// executes). Identical outcomes, bit for bit.
pub fn run_scenario_batch_with_scratch(
    batch: &[GatherScenario<'_>],
    scratch: &mut EngineScratch,
) -> Vec<Result<RunOutcome, SimError>> {
    let mut results = Vec::with_capacity(batch.len());
    let mut start = 0;
    while start < batch.len() {
        // One group = the maximal run of entries sharing (cfg, seed).
        let mut end = start + 1;
        while end < batch.len()
            && batch[end].seed == batch[start].seed
            && batch[end].cfg == batch[start].cfg
        {
            end += 1;
        }
        let group = &batch[start..end];
        let first = &group[0];
        let setup = KnownSetup::for_configuration(first.cfg, first.cfg.size() as u32, first.seed);
        let limit = setup.params.round_limit(first.cfg.smallest_label_bit_len());
        // A `BatchEngine` holds one view type, so the group is partitioned
        // by topology kind: static cells run under the zero-cost `Static`
        // monomorphization — exactly like their solo twins — and dynamic
        // cells under the enum-dispatched `SpecView`. Each partition is
        // one interleaved engine pass; results merge back in cell order.
        // Both paths are pinned bitwise against solo execution by the
        // equivalence tests.
        let statics: Vec<&GatherScenario<'_>> =
            group.iter().filter(|s| s.topo.is_static()).collect();
        let dynamics: Vec<&GatherScenario<'_>> =
            group.iter().filter(|s| !s.topo.is_static()).collect();
        let mut static_results = run_batch_group(&statics, &setup, limit, scratch, |_| &Static);
        let mut dynamic_results = run_batch_group(&dynamics, &setup, limit, scratch, |s| &s.topo);
        let mut next_static = static_results.drain(..);
        let mut next_dynamic = dynamic_results.drain(..);
        results.extend(group.iter().map(|s| {
            if s.topo.is_static() {
                next_static.next().expect("one result per static cell")
            } else {
                next_dynamic.next().expect("one result per dynamic cell")
            }
        }));
        start = end;
    }
    results
}

/// Runs one same-view partition of a (cfg, seed) group through a single
/// [`BatchEngine`] under the topology family `T` selects (`Static` for
/// the static partition, `TopologySpec`/`SpecView` for the dynamic one),
/// returning one result per cell in partition order.
fn run_batch_group<'c, T>(
    cells: &[&GatherScenario<'c>],
    setup: &KnownSetup,
    limit: u64,
    scratch: &mut EngineScratch,
    topo_of: impl for<'s> Fn(&'s GatherScenario<'c>) -> &'s T,
) -> Vec<Result<RunOutcome, SimError>>
where
    T: Topology,
{
    let mut engines: BatchEngine<'c, T::View, BehaviorSlot> = BatchEngine::new();
    for s in cells {
        let mut engine: Engine<'c, T::View, BehaviorSlot> =
            Engine::with_parts(s.cfg.graph(), topo_of(s));
        engine.set_sensing(sensing_for(s.mode));
        engine.set_faults(s.fault.clone());
        if let Some(capacity) = s.trace_capacity {
            engine.record_trace(capacity);
        }
        for &(label, node) in s.cfg.agents() {
            engine.add_agent(
                label,
                node,
                BehaviorSlot::known_gather(setup.params.clone(), label, s.mode),
            );
        }
        engine.set_wake_schedule(s.schedule.clone());
        engines.push(engine, limit);
    }
    engines.run(scratch)
}

/// A mid-flight snapshot of one gathering scenario run — the
/// checkpoint/fork currency of the adversary search's prefix-sharing
/// incremental evaluation.
///
/// Produced by [`ScenarioRun::checkpoint`] along one scenario's
/// trajectory; a *different* scenario over the same configuration can then
/// fast-start from it via [`ScenarioRun::resume_from`], provided the two
/// adversary specs agree on every round before [`ScenarioCheckpoint::round`]
/// (the caller derives that bound from the specs — see the divergence-round
/// computation in `nochatter-lab`'s search module).
pub struct ScenarioCheckpoint {
    cp: RunCheckpoint<BehaviorSlot>,
}

impl ScenarioCheckpoint {
    /// The first round a run resumed from this checkpoint executes.
    pub fn round(&self) -> u64 {
        self.cp.round()
    }

    /// The engine iterations the checkpointed prefix had executed — the
    /// work a resumed run skips.
    pub fn executed_rounds(&self) -> u64 {
        self.cp.executed_rounds()
    }
}

/// One known-upper-bound gathering scenario being stepped round by round,
/// with checkpoint capture and resume — the solo, incremental counterpart
/// of [`run_scenario_batch_with_scratch`].
///
/// Wiring is identical to [`run_scenario_with_scratch`] (same behaviors,
/// sensing, faults, schedule, round limit), except the engine always runs
/// under the enum-dispatched [`SpecView`] so checkpoints taken under a
/// static spec can seed runs under scripted-ring specs and vice versa; a
/// [`TopologySpec::Static`] view answers exactly like the zero-cost
/// [`Static`] one, so outcomes stay bitwise identical to the batch path's.
pub struct ScenarioRun<'g> {
    run: ActiveRun<'g, SpecView, BehaviorSlot>,
}

impl<'g> ScenarioRun<'g> {
    /// Validates and prepares the scenario for stepping. `setup` must be
    /// built from the same `(cfg, seed)` as the scenario (callers share
    /// one [`KnownSetup`] — the dominant per-scenario cost — across every
    /// candidate of an instance).
    ///
    /// # Errors
    ///
    /// Propagates engine setup errors.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's topology is incompatible with its graph.
    pub fn begin(
        s: &GatherScenario<'g>,
        setup: &KnownSetup,
        scratch: &mut EngineScratch,
    ) -> Result<Self, SimError> {
        let mut engine: Engine<'g, SpecView, BehaviorSlot> =
            Engine::with_parts(s.cfg.graph(), &s.topo);
        engine.set_sensing(sensing_for(s.mode));
        engine.set_faults(s.fault.clone());
        if let Some(capacity) = s.trace_capacity {
            engine.record_trace(capacity);
        }
        for &(label, node) in s.cfg.agents() {
            engine.add_agent(
                label,
                node,
                BehaviorSlot::known_gather(setup.params.clone(), label, s.mode),
            );
        }
        engine.set_wake_schedule(s.schedule.clone());
        let limit = setup.params.round_limit(s.cfg.smallest_label_bit_len());
        Ok(ScenarioRun {
            run: ActiveRun::begin(engine, limit, scratch)?,
        })
    }

    /// The round the next [`ScenarioRun::step`] will simulate.
    pub fn next_round(&self) -> u64 {
        self.run.next_round()
    }

    /// Executes one round-loop iteration; `Some` once the run terminated.
    pub fn step(&mut self, scratch: &mut EngineScratch) -> Option<Result<RunOutcome, SimError>> {
        self.run.step(scratch)
    }

    /// Runs the remaining rounds to completion.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (invalid port) from any behavior.
    pub fn finish(mut self, scratch: &mut EngineScratch) -> Result<RunOutcome, SimError> {
        loop {
            if let Some(result) = self.run.step(scratch) {
                return result;
            }
        }
    }

    /// Snapshots the run at the current round boundary; `None` if any
    /// behavior declines to fork (see
    /// [`nochatter_sim::ForkableBehavior`]).
    pub fn checkpoint(&self) -> Option<ScenarioCheckpoint> {
        self.run.checkpoint().map(|cp| ScenarioCheckpoint { cp })
    }

    /// Overwrites this freshly begun run's state with the checkpoint's.
    /// Returns `false` (run untouched) when shapes differ or a behavior
    /// declines to fork. See [`ActiveRun::resume_from`] for the validity
    /// contract the caller must uphold.
    pub fn resume_from(&mut self, cp: &ScenarioCheckpoint) -> bool {
        self.run.resume_from(&cp.cp)
    }
}

/// Runs the composed gather-then-gossip algorithm and returns the outcome
/// plus each agent's final [`GossipReport`] (in configuration label order).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `messages` does not cover exactly the configuration's labels.
pub fn run_gossip_outcome(
    cfg: &InitialConfiguration,
    setup: &KnownSetup,
    mode: CommMode,
    messages: &[(Label, BitStr)],
    schedule: WakeSchedule,
) -> Result<(RunOutcome, Vec<(Label, GossipReport)>), SimError> {
    assert_eq!(
        messages.len(),
        cfg.agent_count(),
        "one message per agent required"
    );
    let mut engine: Engine<'_, Static, BehaviorSlot> = Engine::with_parts(cfg.graph(), &Static);
    engine.set_sensing(sensing_for(mode));
    let sinks: Vec<(Label, Arc<Mutex<Option<GossipReport>>>)> = cfg
        .agents()
        .iter()
        .map(|&(label, _)| (label, Arc::new(Mutex::new(None))))
        .collect();
    for (idx, &(label, start)) in cfg.agents().iter().enumerate() {
        let payload = messages
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no message for agent {label}"))
            .1
            .clone();
        let proc_ = GossipKnownUpperBound::new(setup.params.clone(), label, payload, mode);
        engine.add_agent(
            label,
            start,
            BehaviorSlot::gossip(proc_, Arc::clone(&sinks[idx].1)),
        );
    }
    engine.set_wake_schedule(schedule);
    let max_code_len = messages
        .iter()
        .map(|(_, m)| 2 * m.len() as u64 + 2)
        .max()
        .unwrap_or(2);
    let gather_limit = setup.params.round_limit(cfg.smallest_label_bit_len());
    // Gossip cost: for each delivered message, the length budget climbs
    // 2, 4, ..., |σ| with Communicate cost 5jT — quadratic in the code
    // length, linear in the team size.
    let t = setup.params.t_explo();
    let per_message = 5 * t * (max_code_len / 2 + 1) * (max_code_len + 2);
    let limit = gather_limit + per_message * cfg.agent_count() as u64 + 100 * t;
    let outcome = engine.run(limit)?;
    let reports = sinks
        .into_iter()
        .map(|(label, sink)| {
            let report = sink
                .lock()
                .expect("sink poisoned")
                .clone()
                .unwrap_or_else(|| panic!("agent {label} produced no gossip report"));
            (label, report)
        })
        .collect();
    Ok((outcome, reports))
}

/// Like [`run_gossip_outcome`] but returning only the per-agent reports.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_gossip(
    cfg: &InitialConfiguration,
    setup: &KnownSetup,
    mode: CommMode,
    messages: &[(Label, BitStr)],
    schedule: WakeSchedule,
) -> Result<Vec<(Label, GossipReport)>, SimError> {
    run_gossip_outcome(cfg, setup, mode, messages, schedule).map(|(_, reports)| reports)
}

/// Runs the zero-knowledge `GossipUnknownUpperBound` for every agent of
/// `cfg` against the enumeration; returns the outcome and the per-agent
/// reports (insertion order).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `messages` does not cover exactly the configuration's labels
/// or the schedule cannot be built.
pub fn run_gossip_unknown(
    cfg: &InitialConfiguration,
    omega: std::sync::Arc<dyn crate::unknown::ConfigEnumeration>,
    messages: &[(Label, BitStr)],
    schedule: WakeSchedule,
) -> Result<(RunOutcome, Vec<(Label, crate::gossip::UnknownGossipReport)>), SimError> {
    use crate::gossip::GossipUnknownUpperBound;
    use crate::unknown::{EstMode, GatherUnknownUpperBound, UnknownSchedule};

    assert_eq!(
        messages.len(),
        cfg.agent_count(),
        "one message per agent required"
    );
    let unknown_schedule = std::sync::Arc::new(
        UnknownSchedule::new(omega).expect("schedule must fit u64 for this horizon"),
    );
    // The configuration already owns its graph behind an `Arc`: sharing it
    // with every agent's position oracle is a pointer clone, not a graph
    // copy per run.
    let graph = cfg.graph_arc();
    let mut engine: Engine<'_, Static, BehaviorSlot> = Engine::with_parts(cfg.graph(), &Static);
    let sinks: Vec<(
        Label,
        Arc<Mutex<Option<crate::gossip::UnknownGossipReport>>>,
    )> = cfg
        .agents()
        .iter()
        .map(|&(l, _)| (l, Arc::new(Mutex::new(None))))
        .collect();
    for (idx, &(label, start)) in cfg.agents().iter().enumerate() {
        let payload = messages
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no message for agent {label}"))
            .1
            .clone();
        let gather = GatherUnknownUpperBound::new(
            label,
            start,
            std::sync::Arc::clone(&graph),
            std::sync::Arc::clone(&unknown_schedule),
            EstMode::Conservative,
        );
        engine.add_agent(
            label,
            start,
            BehaviorSlot::unknown_gossip(
                GossipUnknownUpperBound::new(gather, payload),
                Arc::clone(&sinks[idx].1),
            ),
        );
    }
    engine.set_wake_schedule(schedule);
    // The gossip term is negligible next to the unknown-bound budgets.
    let limit = unknown_schedule.round_limit().saturating_mul(2);
    let outcome = engine.run(limit)?;
    let reports = sinks
        .into_iter()
        .map(|(label, sink)| {
            let report = sink
                .lock()
                .expect("sink poisoned")
                .clone()
                .unwrap_or_else(|| panic!("agent {label} produced no gossip report"));
            (label, report)
        })
        .collect();
    Ok((outcome, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, NodeId};
    use nochatter_sim::CrashPoint;

    fn cfg(n: u32, starts: &[(u64, u32)]) -> InitialConfiguration {
        InitialConfiguration::new(
            generators::ring(n),
            starts
                .iter()
                .map(|&(l, s)| (Label::new(l).unwrap(), NodeId::new(s)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn batch_matches_individual_runs_bitwise() {
        let cfgs = [cfg(4, &[(2, 0), (3, 2)]), cfg(6, &[(2, 1), (5, 4)])];
        // Alternate modes, topologies and faults so the shared scratch
        // crosses sensing models, graph sizes, static/dynamic paths and
        // fault-free/faulty runs between consecutive executions.
        let topos = [
            TopologySpec::Static,
            TopologySpec::Periodic(nochatter_graph::dynamic::PeriodicEdges {
                period: 5,
                offset: 0,
            }),
        ];
        let faults = [
            FaultSpec::None,
            FaultSpec::CrashAt(vec![CrashPoint {
                label: Label::new(2).unwrap(),
                round: 40,
            }]),
        ];
        let batch: Vec<GatherScenario<'_>> = cfgs
            .iter()
            .enumerate()
            .flat_map(|(i, cfg)| {
                let topos = &topos;
                let faults = &faults;
                [CommMode::Silent, CommMode::Talking]
                    .into_iter()
                    .flat_map(move |mode| {
                        topos.iter().flat_map(move |topo| {
                            faults.iter().map(move |fault| GatherScenario {
                                cfg,
                                mode,
                                schedule: WakeSchedule::Simultaneous,
                                topo: topo.clone(),
                                fault: fault.clone(),
                                seed: 7 + i as u64,
                                trace_capacity: Some(1 << 12),
                            })
                        })
                    })
            })
            .collect();
        let outcomes = run_scenario_batch(&batch);
        assert_eq!(outcomes.len(), batch.len());
        for (s, batched) in batch.iter().zip(&outcomes) {
            let solo = run_scenario(
                s.cfg,
                s.mode,
                s.schedule.clone(),
                &s.topo,
                &s.fault,
                s.seed,
                s.trace_capacity,
            )
            .unwrap();
            let batched = batched.as_ref().unwrap();
            assert_eq!(format!("{batched:?}"), format!("{solo:?}"));
            if s.topo.is_static() && s.fault.is_none() {
                assert!(batched.gathering().is_ok());
                assert_eq!(batched.blocked_moves, 0);
            }
            if !s.fault.is_none() {
                assert_eq!(batched.crashed_agents, vec![Label::new(2).unwrap()]);
            }
        }
    }
}
