//! Enum-dispatched agent behaviors: the built-in algorithm stack as one
//! inline storage type.
//!
//! The engine's agent arena is generic over its behavior storage
//! (`Engine<'g, V, B>`); instantiating `B` with [`BehaviorSlot`] stores
//! every built-in behavior *inline* — no `Box` per agent, no vtable call
//! per agent per round. The harness runners
//! ([`crate::harness::run_scenario`] and the gossip/unknown siblings) all
//! execute through slots; [`BehaviorSlot::Custom`] keeps the open
//! [`AgentBehavior`] extension point for everything else, so the public
//! trait survives unchanged.

use std::convert::Infallible;
use std::sync::{Arc, Mutex};

use nochatter_explore::{Explo, ExploOutcome, Uxs};
use nochatter_graph::Label;
use nochatter_rendezvous::Tz;
use nochatter_sim::proc::{ProcBehavior, Procedure, RunFor};
use nochatter_sim::{Action, AgentAct, AgentBehavior, Declaration, ForkableBehavior, Obs, Poll};

use crate::gossip::{GossipKnownUpperBound, GossipReport, GossipUnknownUpperBound};
use crate::known::{CommMode, GatherKnownUpperBound};
use crate::params::KnownParams;
use crate::unknown::{GatherUnknownUpperBound, UnknownReport};

/// Adapts a [`Procedure`] into an [`AgentBehavior`] that, on completion,
/// writes the full output into a shared sink and declares a summary of it.
///
/// This is how the gossip and unknown-bound runners get their rich reports
/// out of the engine: the declaration carries only what the model lets an
/// agent announce (leader, size), while the sink receives the whole
/// transcript. Keeping the summary map a plain `fn` pointer (not a
/// closure) is what makes the concrete `SinkBehavior<P>` types nameable —
/// and therefore storable in [`BehaviorSlot`] without boxing.
pub struct SinkBehavior<P: Procedure> {
    inner: P,
    sink: Arc<Mutex<Option<P::Output>>>,
    declare: fn(&P::Output) -> Declaration,
    done: bool,
}

impl<P: Procedure> SinkBehavior<P> {
    /// Runs `inner`; on completion stores the output in `sink` and
    /// declares `declare(&output)`.
    pub fn new(
        inner: P,
        sink: Arc<Mutex<Option<P::Output>>>,
        declare: fn(&P::Output) -> Declaration,
    ) -> Self {
        SinkBehavior {
            inner,
            sink,
            declare,
            done: false,
        }
    }
}

impl<P: Procedure> AgentBehavior for SinkBehavior<P> {
    fn on_round(&mut self, obs: &Obs) -> AgentAct {
        if self.done {
            // The engine stops polling declared agents; be safe anyway.
            return AgentAct::Wait;
        }
        match self.inner.poll(obs) {
            Poll::Yield(Action::Wait) => AgentAct::Wait,
            Poll::Yield(Action::TakePort(p)) => AgentAct::TakePort(p),
            Poll::Complete(out) => {
                self.done = true;
                let declaration = (self.declare)(&out);
                *self.sink.lock().expect("sink poisoned") = Some(out);
                AgentAct::Declare(declaration)
            }
        }
    }

    fn min_wait(&self) -> u64 {
        if self.done {
            u64::MAX
        } else {
            self.inner.min_wait()
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        if !self.done {
            self.inner.note_skipped(rounds);
        }
    }
}

fn declare_bare_explo(_out: ExploOutcome) -> Declaration {
    Declaration::bare()
}

fn declare_bare_tz(_out: Option<Infallible>) -> Declaration {
    Declaration::bare()
}

fn declare_gossip(report: &GossipReport) -> Declaration {
    Declaration::with_leader(report.leader)
}

fn declare_unknown(report: &UnknownReport) -> Declaration {
    Declaration {
        leader: Some(report.leader),
        size: Some(report.size),
    }
}

fn declare_unknown_gossip(report: &crate::gossip::UnknownGossipReport) -> Declaration {
    Declaration {
        leader: Some(report.gathering.leader),
        size: Some(report.gathering.size),
    }
}

/// A walker variant's concrete type: a procedure mapped to a declaration
/// by a plain `fn` pointer (closures would make the type unnameable).
type WalkerBehavior<P> = ProcBehavior<P, fn(<P as Procedure>::Output) -> Declaration>;

/// One agent's behavior, enum-dispatched.
///
/// Every built-in algorithm of the reproduction has a variant, so a
/// campaign's engines store their agents' state machines inline in the
/// arena's `Vec<BehaviorSlot>` and dispatch each round with a jump table
/// instead of a per-agent vtable pointer chase. [`BehaviorSlot::Custom`]
/// boxes anything outside the built-in stack — the same open extension
/// point the engine's default `Box<dyn AgentBehavior>` storage offers.
// One slot per agent, k ≤ n of them per engine: the size skew between a
// bare EXPLO walker and the full known-bound machine is irrelevant next to
// losing the per-agent heap indirection.
#[allow(clippy::large_enum_variant)]
pub enum BehaviorSlot {
    /// An `EXPLO(N)` walker: runs the exploration once, then declares.
    Explo(WalkerBehavior<Explo>),
    /// A `TZ(λ)` rendezvous walker run for a fixed number of rounds, then
    /// declaring.
    Tz(WalkerBehavior<RunFor<Tz>>),
    /// Algorithm 3, [`GatherKnownUpperBound`], silent or talking; declares
    /// the elected leader.
    KnownGather(WalkerBehavior<GatherKnownUpperBound>),
    /// Algorithm 12, gather-then-gossip; the full [`GossipReport`] lands
    /// in a sink.
    Gossip(SinkBehavior<GossipKnownUpperBound>),
    /// Algorithm 5, the unknown-bound hypothesis machine; the full
    /// [`UnknownReport`] lands in a sink. The machine itself is boxed: it
    /// is by far the largest built-in (a live [`crate::unknown::Hypothesis`]
    /// inline), it runs on the exponential feasibility path where one
    /// setup allocation is irrelevant, and keeping it out of line keeps
    /// the enum small for the behaviors that run millions of rounds.
    UnknownGather(SinkBehavior<Box<GatherUnknownUpperBound>>),
    /// Zero-knowledge gossip; the full
    /// [`crate::gossip::UnknownGossipReport`] lands in a sink. Boxed for
    /// the same reason as [`BehaviorSlot::UnknownGather`].
    UnknownGossip(SinkBehavior<Box<GossipUnknownUpperBound>>),
    /// The boxed escape hatch for user-defined [`AgentBehavior`]s.
    Custom(Box<dyn AgentBehavior>),
}

impl BehaviorSlot {
    /// An `EXPLO(N)` walker driven by `uxs`; declares bare on completion.
    pub fn explo(uxs: Arc<Uxs>) -> Self {
        BehaviorSlot::Explo(ProcBehavior::mapping(Explo::new(uxs), declare_bare_explo))
    }

    /// A `TZ(lambda)` walker run for exactly `rounds` rounds; declares
    /// bare afterwards.
    pub fn tz(lambda: u64, rounds: u64, uxs: Arc<Uxs>) -> Self {
        BehaviorSlot::Tz(ProcBehavior::mapping(
            RunFor::new(rounds, Tz::new(lambda, uxs)),
            declare_bare_tz,
        ))
    }

    /// The known-upper-bound gathering algorithm (Algorithm 3) in the
    /// given communication mode; declares the elected leader.
    pub fn known_gather(params: KnownParams, label: Label, mode: CommMode) -> Self {
        BehaviorSlot::KnownGather(
            GatherKnownUpperBound::with_mode(params, label, mode).into_behavior(),
        )
    }

    /// Gather-then-gossip (Algorithm 12); the report is written to `sink`
    /// and the declaration elects the gathered leader.
    pub fn gossip(proc_: GossipKnownUpperBound, sink: Arc<Mutex<Option<GossipReport>>>) -> Self {
        BehaviorSlot::Gossip(SinkBehavior::new(proc_, sink, declare_gossip))
    }

    /// The unknown-bound hypothesis machine (Algorithm 5); the report is
    /// written to `sink` and the declaration carries leader and size.
    pub fn unknown_gather(
        proc_: GatherUnknownUpperBound,
        sink: Arc<Mutex<Option<UnknownReport>>>,
    ) -> Self {
        BehaviorSlot::UnknownGather(SinkBehavior::new(Box::new(proc_), sink, declare_unknown))
    }

    /// Zero-knowledge gossip; the report is written to `sink` and the
    /// declaration carries the gathered leader and learned size.
    pub fn unknown_gossip(
        proc_: GossipUnknownUpperBound,
        sink: Arc<Mutex<Option<crate::gossip::UnknownGossipReport>>>,
    ) -> Self {
        BehaviorSlot::UnknownGossip(SinkBehavior::new(
            Box::new(proc_),
            sink,
            declare_unknown_gossip,
        ))
    }

    /// Wraps an arbitrary behavior (the boxed extension point).
    pub fn custom(behavior: Box<dyn AgentBehavior>) -> Self {
        BehaviorSlot::Custom(behavior)
    }
}

impl From<Box<dyn AgentBehavior>> for BehaviorSlot {
    fn from(behavior: Box<dyn AgentBehavior>) -> Self {
        BehaviorSlot::Custom(behavior)
    }
}

/// Enum dispatch over every slot, `min_wait`/`note_skipped` included:
/// forwarding the wait-horizon pair verbatim is what lets the sparse
/// round loop park the built-in algorithms (whose long `CurCard`-watch
/// phases promise real horizons) exactly as it parks boxed behaviors.
impl AgentBehavior for BehaviorSlot {
    fn on_round(&mut self, obs: &Obs) -> AgentAct {
        match self {
            BehaviorSlot::Explo(b) => b.on_round(obs),
            BehaviorSlot::Tz(b) => b.on_round(obs),
            BehaviorSlot::KnownGather(b) => b.on_round(obs),
            BehaviorSlot::Gossip(b) => b.on_round(obs),
            BehaviorSlot::UnknownGather(b) => b.on_round(obs),
            BehaviorSlot::UnknownGossip(b) => b.on_round(obs),
            BehaviorSlot::Custom(b) => b.on_round(obs),
        }
    }

    fn min_wait(&self) -> u64 {
        match self {
            BehaviorSlot::Explo(b) => b.min_wait(),
            BehaviorSlot::Tz(b) => b.min_wait(),
            BehaviorSlot::KnownGather(b) => b.min_wait(),
            BehaviorSlot::Gossip(b) => b.min_wait(),
            BehaviorSlot::UnknownGather(b) => b.min_wait(),
            BehaviorSlot::UnknownGossip(b) => b.min_wait(),
            BehaviorSlot::Custom(b) => b.min_wait(),
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        match self {
            BehaviorSlot::Explo(b) => b.note_skipped(rounds),
            BehaviorSlot::Tz(b) => b.note_skipped(rounds),
            BehaviorSlot::KnownGather(b) => b.note_skipped(rounds),
            BehaviorSlot::Gossip(b) => b.note_skipped(rounds),
            BehaviorSlot::UnknownGather(b) => b.note_skipped(rounds),
            BehaviorSlot::UnknownGossip(b) => b.note_skipped(rounds),
            BehaviorSlot::Custom(b) => b.note_skipped(rounds),
        }
    }
}

/// The walker variants clone their whole state machine, so checkpointed
/// runs of the built-in gathering stack fork without boxing. The
/// sink-backed variants *decline*: their report channel is an `Arc`-shared
/// cell, and a fork would alias one sink across two runs — callers fall
/// back to from-scratch evaluation instead of silently cross-wiring
/// reports. [`BehaviorSlot::Custom`] defers to the boxed behavior's
/// [`AgentBehavior::clone_box`].
impl ForkableBehavior for BehaviorSlot {
    fn fork(&self) -> Option<Self> {
        match self {
            BehaviorSlot::Explo(b) => Some(BehaviorSlot::Explo(b.clone())),
            BehaviorSlot::Tz(b) => Some(BehaviorSlot::Tz(b.clone())),
            BehaviorSlot::KnownGather(b) => Some(BehaviorSlot::KnownGather(b.clone())),
            BehaviorSlot::Gossip(_)
            | BehaviorSlot::UnknownGather(_)
            | BehaviorSlot::UnknownGossip(_) => None,
            BehaviorSlot::Custom(b) => b.fork().map(BehaviorSlot::Custom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, NodeId};
    use nochatter_sim::{Engine, WakeSchedule};

    #[test]
    fn explo_slot_walks_and_declares() {
        let g = generators::ring(5);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 3).unwrap());
        let duration = Explo::duration(&uxs);
        let mut engine: Engine<'_, _, BehaviorSlot> =
            Engine::with_parts(&g, &nochatter_sim::Static);
        engine.add_agent(
            Label::new(1).unwrap(),
            NodeId::new(0),
            BehaviorSlot::explo(Arc::clone(&uxs)),
        );
        engine.add_agent(
            Label::new(2).unwrap(),
            NodeId::new(2),
            BehaviorSlot::explo(uxs),
        );
        let outcome = engine.run(duration + 10).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(outcome.total_moves, 2 * duration);
    }

    #[test]
    fn tz_slot_runs_for_the_exact_duration() {
        let g = generators::ring(6);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 3).unwrap());
        let mut engine: Engine<'_, _, BehaviorSlot> =
            Engine::with_parts(&g, &nochatter_sim::Static);
        engine.add_agent(
            Label::new(5).unwrap(),
            NodeId::new(0),
            BehaviorSlot::tz(5, 64, Arc::clone(&uxs)),
        );
        engine.add_agent(
            Label::new(6).unwrap(),
            NodeId::new(3),
            BehaviorSlot::tz(6, 64, uxs),
        );
        let outcome = engine.run(1000).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(outcome.rounds, 64, "RunFor pins the duration exactly");
    }

    #[test]
    fn custom_slot_delegates_to_the_boxed_behavior() {
        struct DeclareNow;
        impl AgentBehavior for DeclareNow {
            fn on_round(&mut self, _obs: &Obs) -> AgentAct {
                AgentAct::Declare(Declaration::bare())
            }
        }
        let g = generators::ring(4);
        let mut engine: Engine<'_, _, BehaviorSlot> =
            Engine::with_parts(&g, &nochatter_sim::Static);
        for (l, n) in [(1u64, 0u32), (2, 2)] {
            engine.add_agent(
                Label::new(l).unwrap(),
                NodeId::new(n),
                BehaviorSlot::custom(Box::new(DeclareNow)),
            );
        }
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(outcome.rounds, 0);
    }
}
