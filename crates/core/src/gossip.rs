//! `Gossip` (paper Algorithm 12, §5): the most general information-exchange
//! problem, solved by agents that cannot talk.
//!
//! Precondition (arranged by running a gathering algorithm first): all
//! agents are at one node and start in the same round, knowing a common
//! upper bound `N`. Each agent holds a message `M = code(M')`. The agents
//! repeatedly call [`Communicate`] with a growing length budget `j`; each
//! call surfaces the lexicographically smallest not-yet-delivered message of
//! length `j` (recognizable by its `01` suffix) together with its
//! multiplicity `k`. Senders whose message was delivered stop participating
//! (`b = false`); the loop ends when the delivered multiplicities sum to the
//! team size.
//!
//! Theorem 5.1: every agent ends with the full multiset of messages, in
//! time polynomial in `N`, in the smallest label length, and in the largest
//! message length.

use std::sync::Arc;

use nochatter_explore::Uxs;
use nochatter_graph::Label;
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Obs, Poll};

use crate::codec::BitStr;
use crate::communicate::Communicate;
use crate::known::{CommMode, GatherKnownUpperBound};
use crate::params::KnownParams;

/// What every agent knows when `Gossip` completes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipOutcome {
    /// Delivered messages in delivery order: the message *code* and how many
    /// agents sent it.
    pub transcript: Vec<(BitStr, u32)>,
}

impl GossipOutcome {
    /// The delivered payloads (decoded message bodies) with multiplicities.
    pub fn decoded(&self) -> Vec<(BitStr, u32)> {
        self.transcript
            .iter()
            .map(|(code, k)| {
                (
                    code.decode().expect("delivered strings are valid codes"),
                    *k,
                )
            })
            .collect()
    }

    /// Total number of senders accounted for.
    pub fn delivered_count(&self) -> u32 {
        self.transcript.iter().map(|&(_, k)| k).sum()
    }
}

#[derive(Debug)]
enum Stage {
    /// Read `a = CurCard` and loop control (Algorithm 12 lines 3-4).
    Loop,
    Comm(Communicate),
}

/// Algorithm 12 as a [`Procedure`]. All participating agents must start it
/// in the same round at the same node.
///
/// # Example
///
/// ```
/// use nochatter_core::{BitStr, Gossip};
/// use nochatter_explore::Uxs;
/// use std::sync::Arc;
///
/// let uxs = Arc::new(Uxs::from_steps(vec![1, 1]));
/// let gossip = Gossip::new(BitStr::parse("1011").unwrap(), uxs);
/// # let _ = gossip;
/// ```
#[derive(Debug)]
pub struct Gossip {
    uxs: Arc<Uxs>,
    /// `M = code(payload)`.
    message: BitStr,
    a: Option<u32>,
    i: u32,
    j: u32,
    b: bool,
    s: Vec<(BitStr, u32)>,
    stage: Stage,
}

impl Gossip {
    /// Gossips the given payload `M'` (the transmitted message is
    /// `code(M')`, which makes every message self-terminating).
    pub fn new(payload: BitStr, uxs: Arc<Uxs>) -> Self {
        Gossip {
            message: payload.code(),
            uxs,
            a: None,
            i: 0,
            j: 2,
            b: true,
            s: Vec::new(),
            stage: Stage::Loop,
        }
    }
}

impl Procedure for Gossip {
    type Output = GossipOutcome;

    fn poll(&mut self, obs: &Obs) -> Poll<GossipOutcome> {
        loop {
            match &mut self.stage {
                Stage::Loop => {
                    let a = *self.a.get_or_insert(obs.cur_card);
                    if self.i == a {
                        return Poll::Complete(GossipOutcome {
                            transcript: self.s.clone(),
                        });
                    }
                    self.stage = Stage::Comm(Communicate::new(
                        self.j,
                        self.message.clone(),
                        self.b,
                        Arc::clone(&self.uxs),
                    ));
                }
                Stage::Comm(comm) => match comm.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(out) => {
                        let m = out.l;
                        let n = m.len();
                        let suffixed_01 = n >= 2 && !m.bit(n - 1) && m.bit(n);
                        if suffixed_01 {
                            if m == self.message {
                                self.b = false;
                            }
                            self.i += out.k;
                            self.s.push((m, out.k));
                            self.j = 2;
                        } else {
                            self.j += 2;
                        }
                        self.stage = Stage::Loop;
                    }
                },
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::Comm(c) => c.min_wait(),
            Stage::Loop => 0,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        if let Stage::Comm(c) = &mut self.stage {
            c.note_skipped(rounds);
        }
    }
}

/// The full `GossipKnownUpperBound` of Theorem 5.1: gather with
/// [`GatherKnownUpperBound`], then [`Gossip`]. Completes with the elected
/// leader and the delivered transcript.
#[derive(Debug)]
pub struct GossipKnownUpperBound {
    stage: ComposedStage,
    payload: BitStr,
    uxs: Arc<Uxs>,
}

#[derive(Debug)]
enum ComposedStage {
    Gather(GatherKnownUpperBound),
    Chat(Label, Gossip),
}

/// Leader plus transcript, the composed algorithm's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipReport {
    /// The leader elected during the gathering stage.
    pub leader: Label,
    /// The gossip outcome.
    pub outcome: GossipOutcome,
}

impl GossipKnownUpperBound {
    /// Gathers (in the given communication mode) and then gossips `payload`.
    pub fn new(params: KnownParams, label: Label, payload: BitStr, mode: CommMode) -> Self {
        let uxs = Arc::clone(params.uxs());
        GossipKnownUpperBound {
            stage: ComposedStage::Gather(GatherKnownUpperBound::with_mode(params, label, mode)),
            payload,
            uxs,
        }
    }
}

impl Procedure for GossipKnownUpperBound {
    type Output = GossipReport;

    fn poll(&mut self, obs: &Obs) -> Poll<GossipReport> {
        loop {
            match &mut self.stage {
                ComposedStage::Gather(g) => match g.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(leader) => {
                        // All agents complete gathering in the same round at
                        // the same node (Theorem 3.1), which is exactly
                        // Gossip's precondition.
                        self.stage = ComposedStage::Chat(
                            leader,
                            Gossip::new(self.payload.clone(), Arc::clone(&self.uxs)),
                        );
                    }
                },
                ComposedStage::Chat(leader, gossip) => match gossip.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(outcome) => {
                        return Poll::Complete(GossipReport {
                            leader: *leader,
                            outcome,
                        });
                    }
                },
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            ComposedStage::Gather(g) => g.min_wait(),
            ComposedStage::Chat(_, g) => g.min_wait(),
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        match &mut self.stage {
            ComposedStage::Gather(g) => g.note_skipped(rounds),
            ComposedStage::Chat(_, g) => g.note_skipped(rounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_gossip, KnownSetup};
    use nochatter_graph::{generators, InitialConfiguration, NodeId};
    use nochatter_sim::WakeSchedule;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn payloads(items: &[(u64, &str)]) -> Vec<(Label, BitStr)> {
        items
            .iter()
            .map(|&(l, m)| (label(l), BitStr::parse(m).unwrap()))
            .collect()
    }

    fn run_and_check(cfg: &InitialConfiguration, msgs: &[(u64, &str)], schedule: WakeSchedule) {
        let setup = KnownSetup::for_configuration(cfg, cfg.size() as u32, 3);
        let msgs = payloads(msgs);
        let reports = run_gossip(cfg, &setup, CommMode::Silent, &msgs, schedule)
            .expect("gossip run succeeds");
        // Every agent ends with the same transcript covering all agents.
        let first = &reports[0].1;
        for (agent, report) in &reports {
            assert_eq!(
                report.outcome, first.outcome,
                "agent {agent} learned a different transcript"
            );
            assert_eq!(report.outcome.delivered_count() as usize, msgs.len());
        }
        // The transcript is exactly the multiset of payloads.
        let mut expected: Vec<BitStr> = msgs.iter().map(|(_, m)| m.clone()).collect();
        expected.sort();
        let mut got: Vec<BitStr> = Vec::new();
        for (payload, k) in first.outcome.decoded() {
            for _ in 0..k {
                got.push(payload.clone());
            }
        }
        got.sort();
        assert_eq!(got, expected, "delivered multiset mismatch");
    }

    #[test]
    fn two_agents_exchange_messages() {
        let cfg = InitialConfiguration::new(
            generators::path(3),
            vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(2))],
        )
        .unwrap();
        run_and_check(&cfg, &[(1, "101"), (2, "0")], WakeSchedule::Simultaneous);
    }

    #[test]
    fn three_agents_with_duplicate_messages() {
        let cfg = InitialConfiguration::new(
            generators::ring(5),
            vec![
                (label(2), NodeId::new(0)),
                (label(5), NodeId::new(2)),
                (label(6), NodeId::new(3)),
            ],
        )
        .unwrap();
        // Two agents carry the same payload; multiplicity must be 2.
        run_and_check(
            &cfg,
            &[(2, "11"), (5, "11"), (6, "000")],
            WakeSchedule::Simultaneous,
        );
    }

    #[test]
    fn empty_message_is_legal() {
        let cfg = InitialConfiguration::new(
            generators::path(2),
            vec![(label(1), NodeId::new(0)), (label(3), NodeId::new(1))],
        )
        .unwrap();
        run_and_check(&cfg, &[(1, ""), (3, "1")], WakeSchedule::Simultaneous);
    }

    #[test]
    fn staggered_wakeups_do_not_break_gossip() {
        let cfg = InitialConfiguration::new(
            generators::star(4),
            vec![
                (label(3), NodeId::new(1)),
                (label(4), NodeId::new(2)),
                (label(9), NodeId::new(3)),
            ],
        )
        .unwrap();
        run_and_check(
            &cfg,
            &[(3, "01"), (4, "0110"), (9, "1")],
            WakeSchedule::Staggered { gap: 13 },
        );
    }

    #[test]
    fn longer_messages_cost_more_rounds() {
        let mk = |m: &str| {
            let cfg = InitialConfiguration::new(
                generators::path(2),
                vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(1))],
            )
            .unwrap();
            let setup = KnownSetup::for_configuration(&cfg, 2, 3);
            let msgs = payloads(&[(1, m), (2, "1")]);
            let (outcome, _) = crate::harness::run_gossip_outcome(
                &cfg,
                &setup,
                CommMode::Silent,
                &msgs,
                WakeSchedule::Simultaneous,
            )
            .unwrap();
            outcome.rounds
        };
        let short = mk("1");
        let long = mk("1111111111");
        assert!(
            long > short,
            "longer message must take longer ({long} <= {short})"
        );
    }
}

/// `GossipUnknownUpperBound` (Theorem 5.1, second part): full gossiping
/// with **no a priori knowledge about the network**.
///
/// Runs [`crate::unknown::GatherUnknownUpperBound`] first; its declaration
/// leaves all agents at one node, in the same round, knowing the **exact**
/// network size `n`. That size then plays the role of the known upper bound
/// for [`Gossip`]: every agent derives the same genuinely universal
/// exploration sequence deterministically from `n` (the analogue of
/// Reingold's construction being a fixed function of `N`), so the
/// movement-encoded exchange proceeds exactly as in the known-bound case.
///
/// Like everything downstream of the unknown-bound algorithm, this is a
/// feasibility construction: the exploration sequence derived from `n`
/// uses the exhaustive certification, which caps `n` at
/// [`nochatter_graph::enumerate::MAX_EXHAUSTIVE_N`].
#[derive(Debug)]
pub struct GossipUnknownUpperBound {
    stage: UnknownComposedStage,
    payload: BitStr,
}

#[derive(Debug)]
// One instance per agent behavior, never stored in bulk: the size skew
// between the stages is irrelevant, boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum UnknownComposedStage {
    Gather(crate::unknown::GatherUnknownUpperBound),
    Chat(crate::unknown::UnknownReport, Gossip),
}

/// The result of the zero-knowledge gossip: the gathering report plus the
/// delivered transcript.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownGossipReport {
    /// The unknown-bound gathering result (leader, learned size,
    /// hypothesis index).
    pub gathering: crate::unknown::UnknownReport,
    /// The gossip outcome.
    pub outcome: GossipOutcome,
}

impl GossipUnknownUpperBound {
    /// Gathers with zero knowledge, then gossips `payload`.
    pub fn new(gather: crate::unknown::GatherUnknownUpperBound, payload: BitStr) -> Self {
        GossipUnknownUpperBound {
            stage: UnknownComposedStage::Gather(gather),
            payload,
        }
    }
}

impl Procedure for GossipUnknownUpperBound {
    type Output = UnknownGossipReport;

    fn poll(&mut self, obs: &Obs) -> Poll<UnknownGossipReport> {
        loop {
            match &mut self.stage {
                UnknownComposedStage::Gather(g) => match g.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(report) => {
                        // All agents learn the same exact size in the same
                        // round (Theorem 4.1) and derive the identical
                        // exploration sequence from it — a deterministic
                        // function of n, shared without communication.
                        let uxs = Arc::new(Uxs::exhaustive_universal(report.size, 0));
                        self.stage = UnknownComposedStage::Chat(
                            report,
                            Gossip::new(self.payload.clone(), uxs),
                        );
                    }
                },
                UnknownComposedStage::Chat(report, gossip) => match gossip.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(outcome) => {
                        return Poll::Complete(UnknownGossipReport {
                            gathering: *report,
                            outcome,
                        });
                    }
                },
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            UnknownComposedStage::Gather(g) => g.min_wait(),
            UnknownComposedStage::Chat(_, g) => g.min_wait(),
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        match &mut self.stage {
            UnknownComposedStage::Gather(g) => g.note_skipped(rounds),
            UnknownComposedStage::Chat(_, g) => g.note_skipped(rounds),
        }
    }
}
