//! Deterministic gathering, leader election and gossiping **without
//! chatter** — the algorithms of Bouchard, Dieudonné & Pelc, *Want to
//! Gather? No Need to Chatter!* (PODC 2020).
//!
//! Labeled mobile agents, starting from different nodes of an unknown
//! anonymous network at adversarially chosen times, must all meet at one
//! node and know it — while the only thing an agent can sense about its
//! companions is *how many* share its node (`CurCard`). No messages, no
//! label reading, no marks. This crate implements the paper's full stack:
//!
//! * [`Communicate`] — transmitting binary strings through movement alone
//!   (Algorithm 4, Lemma 3.1);
//! * [`GatherKnownUpperBound`] — gathering + leader election given an upper
//!   bound `N` on the network size, in time polynomial in `N` and the
//!   smallest label length (Algorithm 3, Theorem 3.1);
//! * [`GatherUnknownUpperBound`] — gathering + leader election + exact size
//!   learning with *no prior knowledge at all*, by enumerating hypothetical
//!   initial configurations (Algorithms 5–11, Theorem 4.1; exponential by
//!   design — a feasibility result);
//! * [`Gossip`] / [`GossipKnownUpperBound`] — every agent learns every
//!   agent's message (Algorithm 12, Theorem 5.1);
//! * the traditional-model baseline ([`CommMode::Talking`]) used to measure
//!   the price of silence.
//!
//! # Quickstart
//!
//! ```
//! use nochatter_core::{harness, CommMode, KnownSetup};
//! use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
//! use nochatter_sim::WakeSchedule;
//!
//! // Three agents on a 5-ring, knowing only that the network has at most
//! // 6 nodes.
//! let cfg = InitialConfiguration::new(
//!     generators::ring(5),
//!     vec![
//!         (Label::new(2).unwrap(), NodeId::new(0)),
//!         (Label::new(5).unwrap(), NodeId::new(2)),
//!         (Label::new(9).unwrap(), NodeId::new(3)),
//!     ],
//! )?;
//! let setup = KnownSetup::for_configuration(&cfg, 6, 42);
//! let outcome = harness::run_known(
//!     &cfg,
//!     &setup,
//!     CommMode::Silent,
//!     WakeSchedule::Staggered { gap: 11 },
//! )?;
//! let report = outcome.gathering().expect("all gathered, same node & round");
//! assert!(cfg.contains_label(report.leader.unwrap()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod communicate;
mod gossip;
mod known;
mod params;
mod slot;

pub mod harness;
pub mod unknown;

pub use codec::BitStr;
pub use communicate::{Communicate, CommunicateOutcome};
pub use gossip::{
    Gossip, GossipKnownUpperBound, GossipOutcome, GossipReport, GossipUnknownUpperBound,
    UnknownGossipReport,
};
pub use harness::KnownSetup;
pub use known::{CommMode, GatherKnownUpperBound};
pub use params::KnownParams;
pub use slot::{BehaviorSlot, SinkBehavior};
pub use unknown::GatherUnknownUpperBound;
