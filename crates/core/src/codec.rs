//! Binary strings and the prefix-free `code`/`decode` pair (paper §2,
//! Proposition 2.1).
//!
//! `code(s)` doubles every bit of `s` and appends the marker `01`:
//! `code(ε) = 01`, `code(101) = 11 00 11 01`. The three properties the
//! algorithms rely on (Prop. 2.1) are: codes have even length; inside a
//! code, `01` occurs at an odd (1-based) position only at the very end; and
//! no code is a prefix of another.

use std::fmt;

use nochatter_graph::Label;

/// An immutable-ish binary string over `{0, 1}`.
///
/// Ordering is lexicographic (`false < true`, prefixes sort first), which is
/// the order `Communicate` uses to select the transmitted string.
///
/// # Example
///
/// ```
/// use nochatter_core::BitStr;
/// use nochatter_graph::Label;
///
/// let x = BitStr::from_label(Label::new(5).unwrap()); // 101
/// let code = x.code();
/// assert_eq!(code.to_string(), "11001101");
/// assert_eq!(code.decode().unwrap(), x);
/// assert_eq!(code.decode().unwrap().to_label(), Label::new(5));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitStr {
    bits: Vec<bool>,
}

impl BitStr {
    /// The empty string `ε`.
    pub fn empty() -> Self {
        BitStr { bits: Vec::new() }
    }

    /// Wraps explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        BitStr { bits }
    }

    /// Parses from ASCII `'0'`/`'1'`; any other character yields `None`.
    pub fn parse(s: &str) -> Option<Self> {
        s.chars()
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect::<Option<Vec<bool>>>()
            .map(BitStr::from_bits)
    }

    /// The binary representation of a label (MSB first, no leading zeros).
    pub fn from_label(label: Label) -> Self {
        BitStr { bits: label.bits() }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the string is `ε`.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The `i`-th bit, **1-based** as in the paper (`s[1]` is the first).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or beyond the length.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i >= 1 && i <= self.bits.len(), "1-based index out of range");
        self.bits[i - 1]
    }

    /// The bits as a slice (0-based).
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// The substring `s[i, j]` (1-based, inclusive); empty if the range is
    /// invalid, as the paper stipulates.
    pub fn slice(&self, i: usize, j: usize) -> BitStr {
        if i > j || i == 0 || j > self.bits.len() {
            return BitStr::empty();
        }
        BitStr {
            bits: self.bits[i - 1..j].to_vec(),
        }
    }

    /// `code(self)`: every bit doubled, then `01`.
    pub fn code(&self) -> BitStr {
        let mut bits = Vec::with_capacity(2 * self.bits.len() + 2);
        for &b in &self.bits {
            bits.push(b);
            bits.push(b);
        }
        bits.push(false);
        bits.push(true);
        BitStr { bits }
    }

    /// `decode(self)`: the inverse of [`BitStr::code`]; `None` if `self` is
    /// not a valid code.
    pub fn decode(&self) -> Option<BitStr> {
        let n = self.bits.len();
        if n < 2 || !n.is_multiple_of(2) {
            return None;
        }
        if self.bits[n - 2] || !self.bits[n - 1] {
            return None; // must end in 01
        }
        let mut out = Vec::with_capacity(n / 2 - 1);
        for pair in self.bits[..n - 2].chunks(2) {
            if pair[0] != pair[1] {
                return None;
            }
            out.push(pair[0]);
        }
        Some(BitStr { bits: out })
    }

    /// Interprets the bits as the binary representation (MSB first) of a
    /// positive integer; `None` if empty, if there is a leading zero, or on
    /// overflow.
    pub fn to_label(&self) -> Option<Label> {
        if self.bits.is_empty() || !self.bits[0] || self.bits.len() > 64 {
            return None;
        }
        let mut v: u64 = 0;
        for &b in &self.bits {
            v = (v << 1) | u64::from(b);
        }
        Label::new(v)
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitStr) -> bool {
        other.bits.len() >= self.bits.len() && other.bits[..self.bits.len()] == self.bits[..]
    }

    /// Pads with 1-bits up to `len` (used to express `σ·1^{i-|σ|}`).
    pub fn padded_with_ones(&self, len: usize) -> BitStr {
        let mut bits = self.bits.clone();
        while bits.len() < len {
            bits.push(true);
        }
        BitStr { bits }
    }

    /// Finds the unique odd (1-based) position `z < len` with
    /// `self[z, z+1] = 01` and decodes the prefix `self[1, z+1]`, as
    /// Algorithm 3 lines 20–22 do to extract a label from the string
    /// returned by `Communicate`. Returns the decoded string if present and
    /// well-formed.
    pub fn extract_terminated_code(&self) -> Option<BitStr> {
        let n = self.bits.len();
        let mut z = 1;
        while z < n {
            if !self.bits[z - 1] && self.bits[z] {
                return self.slice(1, z + 1).decode();
            }
            z += 2;
        }
        None
    }
}

impl fmt::Display for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "ε");
        }
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitStr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> BitStr {
        BitStr::parse(s).unwrap()
    }

    #[test]
    fn code_of_empty_is_01() {
        assert_eq!(BitStr::empty().code(), bits("01"));
    }

    #[test]
    fn code_doubles_and_terminates() {
        assert_eq!(bits("101").code(), bits("11001101"));
        assert_eq!(bits("0").code(), bits("0001"));
    }

    #[test]
    fn decode_inverts_code() {
        for s in ["", "0", "1", "01", "110", "10101", "0000", "1111111"] {
            let b = bits(s);
            assert_eq!(b.code().decode(), Some(b));
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(bits("0").decode(), None); // odd length
        assert_eq!(bits("11").decode(), None); // no 01 terminator
        assert_eq!(bits("1001").decode(), None); // mismatched pair
        assert_eq!(BitStr::empty().decode(), None);
    }

    #[test]
    fn proposition_2_1_even_length() {
        for v in 1u64..200 {
            let c = BitStr::from_label(Label::new(v).unwrap()).code();
            assert_eq!(c.len() % 2, 0);
        }
    }

    #[test]
    fn proposition_2_1_odd_01_only_at_end() {
        for v in 1u64..200 {
            let c = BitStr::from_label(Label::new(v).unwrap()).code();
            let mut z = 1;
            while z < c.len() {
                let is_01 = !c.bit(z) && c.bit(z + 1);
                assert_eq!(is_01, z + 1 == c.len(), "v={v} z={z}");
                z += 2;
            }
        }
    }

    #[test]
    fn proposition_2_1_prefix_free() {
        let codes: Vec<BitStr> = (1u64..128)
            .map(|v| BitStr::from_label(Label::new(v).unwrap()).code())
            .collect();
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert!(!a.is_prefix_of(b), "code {i} prefixes code {j}");
                }
            }
        }
    }

    #[test]
    fn label_round_trip() {
        for v in 1u64..300 {
            let l = Label::new(v).unwrap();
            assert_eq!(BitStr::from_label(l).to_label(), Some(l));
        }
    }

    #[test]
    fn to_label_rejects_leading_zero_and_empty() {
        assert_eq!(bits("01").to_label(), None);
        assert_eq!(BitStr::empty().to_label(), None);
    }

    #[test]
    fn slice_is_one_based_inclusive_and_total() {
        let s = bits("10110");
        assert_eq!(s.slice(1, 3), bits("101"));
        assert_eq!(s.slice(4, 5), bits("10"));
        assert_eq!(s.slice(3, 2), BitStr::empty());
        assert_eq!(s.slice(0, 2), BitStr::empty());
        assert_eq!(s.slice(2, 9), BitStr::empty());
    }

    #[test]
    fn extract_terminated_code_finds_padded_codes() {
        // l = code(101) · 1^4, as Communicate would return for i = 12.
        let l = bits("101").code().padded_with_ones(12);
        assert_eq!(l.extract_terminated_code(), Some(bits("101")));
        // All-ones carries no code.
        assert_eq!(bits("111111").extract_terminated_code(), None);
    }

    #[test]
    fn lexicographic_order_matches_paper() {
        // Codes are compared lexicographically by Communicate; shorter
        // prefix-incomparable strings compare bitwise.
        assert!(bits("0001") < bits("0011"));
        assert!(bits("1100") < bits("1101"));
        // The lexicographically smallest code among a set belongs to the
        // agent Communicate elects — note this need NOT be the smallest
        // label: code(5) = 11001101 sorts before code(3) = 111101.
        let codes: Vec<BitStr> = [5u64, 3, 12]
            .iter()
            .map(|&v| BitStr::from_label(Label::new(v).unwrap()).code())
            .collect();
        let min = codes.iter().min().unwrap();
        assert_eq!(min, &BitStr::from_label(Label::new(5).unwrap()).code());
    }

    #[test]
    fn display_renders_bits() {
        assert_eq!(bits("0101").to_string(), "0101");
        assert_eq!(BitStr::empty().to_string(), "ε");
    }

    #[test]
    fn padding_never_shortens() {
        let s = bits("1100");
        assert_eq!(s.padded_with_ones(2), s);
        assert_eq!(s.padded_with_ones(6), bits("110011"));
    }
}
