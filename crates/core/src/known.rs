//! `GatherKnownUpperBound` (paper Algorithm 3): gathering and leader
//! election when agents know an upper bound `N` on the graph size.
//!
//! The algorithm proceeds in phases `i = 1, 2, 3, ...` after a wake-up
//! exploration (phase 0). In each phase a group of co-located agents:
//!
//! 1. waits `D_i` rounds, then runs `EXPLO(N)`, waits `T`, runs `EXPLO(N)`
//!    again — all interruptible the moment `CurCard` exceeds the group size
//!    `c` (two groups that can see each other merge here);
//! 2. if nothing was met, runs [`Communicate`] to learn the
//!    lexicographically smallest label code in the group (possible because
//!    unmerged groups are provably *invisible* to each other);
//! 3. runs `TZ(λ)` with the learned label for `D_i` rounds to break the
//!    invisibility, then a final `EXPLO(N)` — again interruptible;
//! 4. after a stabilization wait, declares gathering if its cardinality
//!    never grew and a leader λ was learned; otherwise starts phase `i+1`.
//!
//! Theorem 3.1: all agents declare in the same round at the same node with
//! the same leader λ (a team member's label), within time polynomial in `N`
//! and in the length `ℓ` of the smallest label.
//!
//! The same state machine, switched to [`CommMode::Talking`], implements
//! the *traditional-model baseline*: `Communicate` (cost `5i·T` rounds) is
//! replaced by an instantaneous exchange of co-located labels producing the
//! identical value — this isolates the price of silence measured by the
//! benchmarks.

use std::sync::Arc;

use nochatter_explore::Explo;
use nochatter_graph::Label;
use nochatter_rendezvous::Tz;
use nochatter_sim::proc::{ProcBehavior, Procedure, RunFor, WaitRounds};
use nochatter_sim::{Action, Declaration, Obs, Poll};

use crate::codec::BitStr;
use crate::communicate::Communicate;
use crate::params::KnownParams;

/// How a group learns the smallest co-located label in step 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommMode {
    /// The paper's weak model: movement-encoded [`Communicate`]
    /// (`5i·T(EXPLO(N))` rounds per phase).
    Silent,
    /// The traditional-model baseline: co-located labels are read
    /// instantaneously (0 rounds). Requires the engine to run with
    /// [`nochatter_sim::Sensing::Traditional`].
    Talking,
}

#[derive(Clone, Debug)]
enum Block1 {
    Wait1(WaitRounds),
    Explo1(Explo),
    Wait2(WaitRounds),
    Explo2(Explo),
}

#[derive(Clone, Debug)]
enum Block2 {
    Wait1(WaitRounds),
    Rendezvous(RunFor<Tz>),
    Wait2(WaitRounds),
    Walk(Explo),
}

#[derive(Clone, Debug)]
enum Stage {
    Phase0Explo(Explo),
    Phase0Wait(WaitRounds),
    /// Line 6: read `c` from the current observation, then enter block 1.
    PhaseStart,
    Block1(Block1),
    /// Line 16: wait for `D_{i+1}` unchanged-CurCard rounds.
    Stabilize1,
    Comm(Communicate),
    Block2(Block2),
    /// Line 31.
    Stabilize2,
    /// Line 34.
    FinalWait(WaitRounds),
}

/// Algorithm 3 as a [`Procedure`]; completes with the elected leader.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use nochatter_core::{GatherKnownUpperBound, KnownParams};
/// use nochatter_graph::{generators, Label};
///
/// let g = generators::ring(5);
/// let params = KnownParams::for_corpus(6, std::slice::from_ref(&g), 0);
/// let proc_ = GatherKnownUpperBound::silent(params, Label::new(7).unwrap());
/// let behavior = proc_.into_behavior(); // ready for Engine::add_agent
/// # let _ = behavior;
/// ```
#[derive(Clone, Debug)]
pub struct GatherKnownUpperBound {
    params: KnownParams,
    label: Label,
    mode: CommMode,
    /// Consecutive observations with unchanged `CurCard`, maintained across
    /// the whole run; lines 16/31 complete when it reaches `D_{i+1}`.
    streak: u64,
    last_card: Option<u32>,
    /// Current phase `i >= 1`.
    i: u32,
    /// Group cardinality read at the start of the phase (line 6).
    c: u32,
    /// The learned leader parameter (line 7: 0 = none).
    lambda: u64,
    stage: Stage,
}

impl GatherKnownUpperBound {
    /// The paper's algorithm in the weak model.
    pub fn silent(params: KnownParams, label: Label) -> Self {
        Self::with_mode(params, label, CommMode::Silent)
    }

    /// The traditional-model baseline (see [`CommMode::Talking`]).
    pub fn talking(params: KnownParams, label: Label) -> Self {
        Self::with_mode(params, label, CommMode::Talking)
    }

    /// Explicit-mode constructor.
    pub fn with_mode(params: KnownParams, label: Label, mode: CommMode) -> Self {
        let uxs = Arc::clone(params.uxs());
        GatherKnownUpperBound {
            params,
            label,
            mode,
            streak: 0,
            last_card: None,
            i: 1,
            c: 0,
            lambda: 0,
            stage: Stage::Phase0Explo(Explo::new(uxs)),
        }
    }

    /// Wraps into an engine behavior declaring the elected leader.
    pub fn into_behavior(self) -> ProcBehavior<Self, fn(Label) -> Declaration> {
        ProcBehavior::mapping(self, Declaration::with_leader)
    }

    /// Computes `Communicate`'s return string instantly from co-located
    /// labels — the talking baseline's replacement for step 2.
    fn talking_exchange(&self, obs: &Obs) -> BitStr {
        let peers = obs
            .peer_labels
            .as_ref()
            .expect("talking baseline requires Sensing::Traditional");
        let i = self.i as usize;
        peers
            .iter()
            .map(|&l| BitStr::from_label(l).code())
            .filter(|code| code.len() <= i)
            .min()
            .map(|sigma| sigma.padded_with_ones(i))
            .unwrap_or_else(|| BitStr::empty().padded_with_ones(i))
    }

    fn set_lambda_from(&mut self, l: &BitStr) {
        self.lambda = l
            .extract_terminated_code()
            .and_then(|x| x.to_label())
            .map(Label::value)
            .unwrap_or(0);
    }
}

impl Procedure for GatherKnownUpperBound {
    type Output = Label;

    fn poll(&mut self, obs: &Obs) -> Poll<Label> {
        // Maintain the CurCard streak (lines 16/31 anchor their waits at
        // CurCard's latest change, as seen across the agent's whole
        // observation history).
        match self.last_card {
            Some(c) if c == obs.cur_card => self.streak += 1,
            _ => {
                self.streak = 1;
                self.last_card = Some(obs.cur_card);
            }
        }

        loop {
            match &mut self.stage {
                Stage::Phase0Explo(e) => match e.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(_) => {
                        self.stage = Stage::Phase0Wait(WaitRounds::new(self.params.t_explo()));
                    }
                },
                Stage::Phase0Wait(w) => match w.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(()) => self.stage = Stage::PhaseStart,
                },
                Stage::PhaseStart => {
                    self.c = obs.cur_card;
                    self.lambda = 0;
                    self.stage =
                        Stage::Block1(Block1::Wait1(WaitRounds::new(self.params.d(self.i))));
                }
                Stage::Block1(b1) => {
                    // Line 8: interrupt the block as soon as CurCard > c.
                    if obs.cur_card > self.c {
                        self.stage = Stage::Stabilize1;
                        continue;
                    }
                    match b1 {
                        Block1::Wait1(w) => match w.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(()) => {
                                *b1 = Block1::Explo1(Explo::new(Arc::clone(self.params.uxs())));
                            }
                        },
                        Block1::Explo1(e) => match e.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(_) => {
                                *b1 = Block1::Wait2(WaitRounds::new(self.params.t_explo()));
                            }
                        },
                        Block1::Wait2(w) => match w.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(()) => {
                                *b1 = Block1::Explo2(Explo::new(Arc::clone(self.params.uxs())));
                            }
                        },
                        Block1::Explo2(e) => match e.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(_) => {
                                // Line 15 with the current observation: the
                                // interrupt check above already established
                                // CurCard <= c, so take the else branch
                                // (lines 17-33).
                                match self.mode {
                                    CommMode::Silent => {
                                        let s = BitStr::from_label(self.label).code();
                                        self.stage = Stage::Comm(Communicate::new(
                                            self.i,
                                            s,
                                            true,
                                            Arc::clone(self.params.uxs()),
                                        ));
                                    }
                                    CommMode::Talking => {
                                        let l = self.talking_exchange(obs);
                                        self.set_lambda_from(&l);
                                        self.stage = Stage::Block2(Block2::Wait1(WaitRounds::new(
                                            self.params.t_explo(),
                                        )));
                                    }
                                }
                            }
                        },
                    }
                }
                Stage::Stabilize1 | Stage::Stabilize2 => {
                    if self.streak >= self.params.d(self.i + 1) {
                        self.stage = Stage::FinalWait(WaitRounds::new(self.params.d(self.i + 1)));
                        continue;
                    }
                    return Poll::Yield(Action::Wait);
                }
                Stage::Comm(comm) => match comm.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(out) => {
                        // Lines 20-22.
                        self.set_lambda_from(&out.l);
                        self.stage =
                            Stage::Block2(Block2::Wait1(WaitRounds::new(self.params.t_explo())));
                    }
                },
                Stage::Block2(b2) => {
                    // Line 23: same interruption rule.
                    if obs.cur_card > self.c {
                        self.stage = Stage::Stabilize2;
                        continue;
                    }
                    match b2 {
                        Block2::Wait1(w) => match w.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(()) => {
                                *b2 = Block2::Rendezvous(RunFor::new(
                                    self.params.d(self.i),
                                    Tz::new(self.lambda, Arc::clone(self.params.uxs())),
                                ));
                            }
                        },
                        Block2::Rendezvous(r) => match r.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(_) => {
                                *b2 = Block2::Wait2(WaitRounds::new(self.params.t_explo()));
                            }
                        },
                        Block2::Wait2(w) => match w.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(()) => {
                                *b2 = Block2::Walk(Explo::new(Arc::clone(self.params.uxs())));
                            }
                        },
                        Block2::Walk(e) => match e.poll(obs) {
                            Poll::Yield(a) => return Poll::Yield(a),
                            Poll::Complete(_) => {
                                // Line 30 with CurCard <= c: no stabilization.
                                self.stage =
                                    Stage::FinalWait(WaitRounds::new(self.params.d(self.i + 1)));
                            }
                        },
                    }
                }
                Stage::FinalWait(w) => match w.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(()) => {
                        // Line 35.
                        if obs.cur_card == self.c && self.lambda != 0 {
                            let leader =
                                Label::new(self.lambda).expect("lambda != 0 was just checked");
                            return Poll::Complete(leader);
                        }
                        self.i += 1;
                        self.stage = Stage::PhaseStart;
                    }
                },
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::Phase0Wait(w) | Stage::FinalWait(w) => w.min_wait(),
            Stage::Block1(Block1::Wait1(w)) | Stage::Block1(Block1::Wait2(w)) => w.min_wait(),
            Stage::Block2(Block2::Wait1(w)) | Stage::Block2(Block2::Wait2(w)) => w.min_wait(),
            Stage::Block2(Block2::Rendezvous(r)) => r.min_wait(),
            Stage::Comm(c) => c.min_wait(),
            Stage::Stabilize1 | Stage::Stabilize2 => {
                let window = self.params.d(self.i + 1);
                window.saturating_sub(self.streak).saturating_sub(1)
            }
            _ => 0,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        // Identical observations: the streak keeps growing.
        self.streak += rounds;
        match &mut self.stage {
            Stage::Phase0Wait(w) | Stage::FinalWait(w) => w.note_skipped(rounds),
            Stage::Block1(Block1::Wait1(w)) | Stage::Block1(Block1::Wait2(w)) => {
                w.note_skipped(rounds)
            }
            Stage::Block2(Block2::Wait1(w)) | Stage::Block2(Block2::Wait2(w)) => {
                w.note_skipped(rounds)
            }
            Stage::Block2(Block2::Rendezvous(r)) => r.note_skipped(rounds),
            Stage::Comm(c) => c.note_skipped(rounds),
            Stage::Stabilize1 | Stage::Stabilize2 => {}
            _ => debug_assert_eq!(rounds, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_known, KnownSetup};
    use nochatter_graph::{generators, InitialConfiguration, NodeId};
    use nochatter_sim::WakeSchedule;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn config(graph: nochatter_graph::Graph, agents: &[(u64, u32)]) -> InitialConfiguration {
        InitialConfiguration::new(
            graph,
            agents
                .iter()
                .map(|&(l, v)| (label(l), NodeId::new(v)))
                .collect(),
        )
        .unwrap()
    }

    fn check(cfg: &InitialConfiguration, schedule: WakeSchedule) -> u64 {
        let setup = KnownSetup::for_configuration(cfg, cfg.size() as u32, 42);
        let outcome = run_known(cfg, &setup, CommMode::Silent, schedule).expect("run succeeds");
        let report = outcome
            .gathering()
            .unwrap_or_else(|e| panic!("gathering invalid: {e}"));
        assert!(report.leader.is_some(), "a leader must be elected");
        assert!(
            cfg.contains_label(report.leader.unwrap()),
            "leader must be a team member"
        );
        report.round
    }

    #[test]
    fn two_agents_on_an_edge() {
        let cfg = config(generators::path(2), &[(1, 0), (2, 1)]);
        check(&cfg, WakeSchedule::Simultaneous);
    }

    #[test]
    fn two_agents_on_a_ring_symmetric_ports() {
        // The classic hard case: a ring where port numbering gives no free
        // symmetry breaking; only the labels differ.
        let cfg = config(generators::ring(4), &[(2, 0), (3, 2)]);
        check(&cfg, WakeSchedule::Simultaneous);
    }

    #[test]
    fn three_agents_star() {
        let cfg = config(generators::star(5), &[(1, 1), (2, 3), (5, 4)]);
        check(&cfg, WakeSchedule::Simultaneous);
    }

    #[test]
    fn staggered_wakeup() {
        let cfg = config(generators::ring(5), &[(3, 0), (4, 2), (6, 4)]);
        check(&cfg, WakeSchedule::Staggered { gap: 17 });
    }

    #[test]
    fn first_only_wakeup() {
        // Only one agent is woken by the adversary; the rest wake on visit
        // during phase 0's exploration.
        let cfg = config(generators::ring(5), &[(3, 0), (4, 2), (6, 4)]);
        check(&cfg, WakeSchedule::FirstOnly);
    }

    #[test]
    fn full_team_on_complete_graph() {
        let cfg = config(generators::complete(4), &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        check(&cfg, WakeSchedule::Simultaneous);
    }

    #[test]
    fn adversarial_port_numbering() {
        let g = generators::with_shuffled_ports(&generators::grid(3, 2), 99);
        let cfg = config(g, &[(2, 0), (5, 3), (9, 5)]);
        check(&cfg, WakeSchedule::Simultaneous);
    }

    #[test]
    fn leader_is_smallest_communicated_label() {
        // With simultaneous start and identical phase progress, the elected
        // leader is the agent whose code is lexicographically smallest among
        // the final group — by construction of Communicate this is a real
        // team label; pin the invariant (not the specific winner, which the
        // paper does not promise).
        let cfg = config(generators::ring(6), &[(11, 0), (6, 2), (7, 4)]);
        check(&cfg, WakeSchedule::Simultaneous);
    }

    #[test]
    fn wake_skew_larger_than_explo_half() {
        // Adversary delays the second agent far beyond T/2; it is woken
        // earlier by the first agent's phase-0 exploration instead.
        let cfg = config(generators::path(4), &[(1, 0), (2, 3)]);
        let setup = KnownSetup::for_configuration(&cfg, 4, 7);
        let outcome = run_known(
            &cfg,
            &setup,
            CommMode::Silent,
            WakeSchedule::Explicit(vec![0, 1_000_000]),
        )
        .unwrap();
        outcome.gathering().expect("gathering must still succeed");
    }
}
