//! The `Communicate` function (paper Algorithm 4): transmitting a binary
//! string to co-located agents using nothing but movement and `CurCard`.
//!
//! A group of agents at one node runs `Communicate(i, s, bool)` in lockstep.
//! The execution proceeds in `i` *steps* of `5·T(EXPLO(N))` rounds each. In
//! step `j`, the participating agents whose string has bit 0 at position `j`
//! leave on an exploration (wait T, `EXPLO`, wait 3T) while everyone else
//! stays (wait 3T, `EXPLO`, wait T): the stay-behinds observe the dip in
//! `CurCard` and thereby *read* the bit. Per Lemma 3.1, as long as the
//! groups are mutually invisible (which Algorithm 3's phase structure
//! arranges), every member ends up with `l = σ·1^{i-|σ|}` where `σ` is the
//! lexicographically smallest transmitted string, and with `k` = the number
//! of agents whose string is `σ`.

use std::sync::Arc;

use nochatter_explore::{Explo, Uxs};
use nochatter_sim::proc::{Procedure, WaitRounds};
use nochatter_sim::{Obs, Poll};

use crate::codec::BitStr;

/// The return value `(l, k)` of `Communicate`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommunicateOutcome {
    /// The received string `l` (length `i`).
    pub l: BitStr,
    /// The multiplicity `k`: under Lemma 3.1's conditions, how many
    /// co-located agents transmitted the winning string.
    pub k: u32,
}

#[derive(Clone, Debug)]
enum Stage {
    /// Line 2: read `c` and decide participation on the first observation.
    Start,
    /// Lines 12/21: the wait before this step's `EXPLO`.
    PreWait(WaitRounds, bool),
    /// Lines 13/22: the step's `EXPLO`.
    Walk(Explo, bool),
    /// Lines 14/23: the wait after this step's `EXPLO`.
    PostWait(WaitRounds),
    /// Loop exhausted: report `(l, k)`.
    Finished,
}

/// Algorithm 4, as a [`Procedure`]. Lasts exactly `5 · i · T(EXPLO(N))`
/// rounds.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use nochatter_core::{BitStr, Communicate};
/// use nochatter_explore::Uxs;
///
/// let uxs = Arc::new(Uxs::from_steps(vec![1, 1]));
/// let s = BitStr::parse("01").unwrap().code();
/// let comm = Communicate::new(6, s, true, uxs);
/// assert_eq!(comm.duration(), 6 * 5 * 4);
/// ```
#[derive(Clone, Debug)]
pub struct Communicate {
    i: u32,
    s: BitStr,
    want: bool,
    uxs: Arc<Uxs>,
    t: u64,
    /// `c`: the group cardinality read on the first observation.
    c: u32,
    k: u32,
    l: BitStr,
    participate: bool,
    /// Current step `j`, 1-based.
    j: u32,
    stage: Stage,
}

impl Communicate {
    /// `Communicate(i, s, bool)` over the shared exploration sequence.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` or the sequence is empty.
    pub fn new(i: u32, s: BitStr, bool_param: bool, uxs: Arc<Uxs>) -> Self {
        assert!(i >= 1, "Communicate needs at least one step");
        assert!(!uxs.is_empty(), "EXPLO needs a non-empty sequence");
        Communicate {
            i,
            s,
            want: bool_param,
            t: Explo::duration(&uxs),
            uxs,
            c: 0,
            k: 1,
            l: BitStr::empty(),
            participate: false,
            j: 0,
            stage: Stage::Start,
        }
    }

    /// The exact duration in rounds: `5 · i · T(EXPLO(N))`.
    pub fn duration(&self) -> u64 {
        5 * u64::from(self.i) * self.t
    }

    /// Enters step `j` (already incremented), choosing the branch.
    fn enter_step(&mut self) -> Stage {
        let j = self.j as usize;
        let is_active = self.participate && j <= self.s.len() && !self.s.bit(j);
        let pre = if is_active { self.t } else { 3 * self.t };
        Stage::PreWait(WaitRounds::new(pre), is_active)
    }

    /// Finalizes step `j` after its post-wait (lines 15–18 / 24–31).
    fn finish_step(&mut self, is_active: bool, min_card: u32) {
        if is_active {
            self.l.push(false);
            if self.c > 1 {
                self.k = min_card;
            }
        } else {
            let c_prime = min_card;
            if self.c == 1 || c_prime == self.c {
                self.l.push(true);
            } else {
                self.l.push(false);
                self.participate = false;
                self.k = self.c - c_prime;
            }
        }
    }
}

impl Procedure for Communicate {
    type Output = CommunicateOutcome;

    fn poll(&mut self, obs: &Obs) -> Poll<CommunicateOutcome> {
        // `min_card` of the step's EXPLO, carried from Walk to PostWait.
        loop {
            match &mut self.stage {
                Stage::Start => {
                    self.c = obs.cur_card;
                    self.k = 1;
                    self.participate = self.want && self.s.len() as u32 <= self.i;
                    self.j = 1;
                    self.stage = self.enter_step();
                }
                Stage::PreWait(w, is_active) => {
                    let is_active = *is_active;
                    match w.poll(obs) {
                        Poll::Yield(a) => return Poll::Yield(a),
                        Poll::Complete(()) => {
                            self.stage = Stage::Walk(Explo::new(Arc::clone(&self.uxs)), is_active);
                        }
                    }
                }
                Stage::Walk(e, is_active) => {
                    let is_active = *is_active;
                    match e.poll(obs) {
                        Poll::Yield(a) => return Poll::Yield(a),
                        Poll::Complete(out) => {
                            let post = if is_active { 3 * self.t } else { self.t };
                            // Stash min_card in the wait stage via closure
                            // state: finalize now (the decision only uses
                            // quantities already observed; timing of the
                            // assignment within the step is immaterial).
                            self.finish_step(is_active, out.min_card);
                            self.stage = Stage::PostWait(WaitRounds::new(post));
                        }
                    }
                }
                Stage::PostWait(w) => match w.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(()) => {
                        if self.j == self.i {
                            self.stage = Stage::Finished;
                        } else {
                            self.j += 1;
                            self.stage = self.enter_step();
                        }
                    }
                },
                Stage::Finished => {
                    return Poll::Complete(CommunicateOutcome {
                        l: self.l.clone(),
                        k: self.k,
                    });
                }
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::PreWait(w, _) | Stage::PostWait(w) => w.min_wait(),
            _ => 0,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        match &mut self.stage {
            Stage::PreWait(w, _) | Stage::PostWait(w) => w.note_skipped(rounds),
            _ => debug_assert_eq!(rounds, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, Graph, Label, NodeId, Port};
    use nochatter_sim::proc::ProcBehavior;
    use nochatter_sim::{AgentBehavior, Declaration, Engine, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    /// Walks `approach` ports, then runs Communicate with the agent's own
    /// label code, then declares with the outcome stuffed into the
    /// declaration (leader = decoded winner, size = k).
    struct Member {
        approach: Vec<Port>,
        comm: Communicate,
        walked: usize,
        done: bool,
    }

    impl AgentBehavior for Member {
        fn on_round(&mut self, obs: &Obs) -> nochatter_sim::AgentAct {
            if self.done {
                return nochatter_sim::AgentAct::Wait;
            }
            if self.walked < self.approach.len() {
                let p = self.approach[self.walked];
                self.walked += 1;
                return nochatter_sim::AgentAct::TakePort(p);
            }
            match self.comm.poll(obs) {
                Poll::Yield(nochatter_sim::Action::Wait) => nochatter_sim::AgentAct::Wait,
                Poll::Yield(nochatter_sim::Action::TakePort(p)) => {
                    nochatter_sim::AgentAct::TakePort(p)
                }
                Poll::Complete(out) => {
                    self.done = true;
                    nochatter_sim::AgentAct::Declare(Declaration {
                        leader: out.l.extract_terminated_code().and_then(|d| d.to_label()),
                        size: Some(out.k),
                    })
                }
            }
        }
    }

    /// Gathers all agents at node 0 of a star, then runs Communicate with
    /// everyone present, asserting Lemma 3.1's conclusion. All agents start
    /// on leaves and walk to the hub simultaneously, so they start
    /// Communicate in the same round at the same node.
    fn run_group(labels: &[u64], i: u32, bools: &[bool]) -> Vec<(Option<Label>, u32)> {
        let n = labels.len() as u32 + 1;
        let g: Graph = generators::star(n);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let mut engine = Engine::new(&g);
        for (idx, (&lv, &b)) in labels.iter().zip(bools).enumerate() {
            let s = BitStr::from_label(label(lv)).code();
            engine.add_agent(
                label(lv),
                NodeId::new(idx as u32 + 1),
                Box::new(Member {
                    approach: vec![Port::new(0)],
                    comm: Communicate::new(i, s, b, Arc::clone(&uxs)),
                    walked: 0,
                    done: false,
                }),
            );
        }
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(10_000_000).unwrap();
        assert!(outcome.all_declared(), "Communicate must terminate");
        // All declarations in the same round (exact lockstep).
        let rounds: Vec<u64> = outcome
            .declarations
            .iter()
            .map(|(_, r)| r.unwrap().round)
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] == w[1]));
        outcome
            .declarations
            .iter()
            .map(|(_, r)| {
                let d = r.unwrap().declaration;
                (d.leader, d.size.unwrap())
            })
            .collect()
    }

    #[test]
    fn group_learns_lexicographically_smallest_code() {
        // Labels 5 (101), 3 (11), 12 (1100): codes are 11001101, 111101,
        // 1111000001; the lexicographically smallest is 5's (not the
        // smallest label — the paper promises *a* team label, not the
        // minimum).
        let i = 12;
        let results = run_group(&[5, 3, 12], i, &[true, true, true]);
        for (leader, k) in results {
            assert_eq!(leader, Some(label(5)));
            assert_eq!(k, 1);
        }
    }

    #[test]
    fn multiplicity_counts_equal_strings() {
        // Two agents transmit the same message string; pass the *message*
        // role through by giving both the same `s` (allowed: `s` need not be
        // the agent's label — gossiping relies on this).
        let g = generators::star(4);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let shared = BitStr::parse("10").unwrap().code();
        let other = BitStr::parse("11").unwrap().code();
        let mut engine = Engine::new(&g);
        for (idx, (lv, s)) in [
            (4u64, shared.clone()),
            (9, shared.clone()),
            (2, other.clone()),
        ]
        .into_iter()
        .enumerate()
        {
            engine.add_agent(
                label(lv),
                NodeId::new(idx as u32 + 1),
                Box::new(Member {
                    approach: vec![Port::new(0)],
                    comm: Communicate::new(8, s, true, Arc::clone(&uxs)),
                    walked: 0,
                    done: false,
                }),
            );
        }
        let outcome = engine.run(10_000_000).unwrap();
        assert!(outcome.all_declared());
        for (_, rec) in &outcome.declarations {
            let d = rec.unwrap().declaration;
            // Winner is decode(code(10)) = 2; two agents transmitted it.
            assert_eq!(d.leader, Some(label(2)));
            assert_eq!(d.size, Some(2));
        }
    }

    #[test]
    fn non_participants_receive_all_ones() {
        let i = 8;
        let results = run_group(&[5, 3], i, &[false, false]);
        for (leader, k) in results {
            assert_eq!(leader, None, "nobody transmitted, l must be 1^i");
            assert_eq!(k, 1);
        }
    }

    #[test]
    fn too_long_strings_do_not_participate() {
        // i = 4 but code(label 12) has 10 bits: only label 3 (code length 6
        // > 4!)... both exceed i, so l = 1^4. With i = 6, 3's code fits.
        let results = run_group(&[12, 3], 4, &[true, true]);
        for (leader, _) in results {
            assert_eq!(leader, None);
        }
        let results = run_group(&[12, 3], 6, &[true, true]);
        for (leader, k) in results {
            assert_eq!(leader, Some(label(3)));
            assert_eq!(k, 1);
        }
    }

    #[test]
    fn duration_is_5_i_t() {
        let g = generators::star(3);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let t = Explo::duration(&uxs);
        for i in [1u32, 3, 7] {
            let comm = Communicate::new(
                i,
                BitStr::from_label(label(5)).code(),
                true,
                Arc::clone(&uxs),
            );
            assert_eq!(comm.duration(), 5 * u64::from(i) * t);
        }
        // And the in-engine execution takes exactly that long: the Member
        // walks 1 round then communicates, so declaration round = 1 + 5iT.
        let i = 6;
        let results_round = {
            let mut engine = Engine::new(&g);
            for (idx, lv) in [5u64, 6].into_iter().enumerate() {
                engine.add_agent(
                    label(lv),
                    NodeId::new(idx as u32 + 1),
                    Box::new(Member {
                        approach: vec![Port::new(0)],
                        comm: Communicate::new(
                            i,
                            BitStr::from_label(label(lv)).code(),
                            true,
                            Arc::clone(&uxs),
                        ),
                        walked: 0,
                        done: false,
                    }),
                );
            }
            let outcome = engine.run(1_000_000).unwrap();
            assert!(outcome.all_declared());
            outcome.declarations[0].1.unwrap().round
        };
        assert_eq!(results_round, 1 + 5 * u64::from(i) * t);
    }

    #[test]
    fn solo_agent_reads_its_own_string() {
        // A single agent (c = 1): every step's else-branch sets l[j] = 1 via
        // the c == 1 clause... unless it participates and its bit is 0, in
        // which case l[j] = 0. Net effect: l = s padded with ones, k = 1.
        let g = generators::path(2);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let s = BitStr::from_label(label(5)).code(); // 11001101
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(5),
            NodeId::new(0),
            Box::new(Member {
                approach: vec![],
                comm: Communicate::new(10, s, true, Arc::clone(&uxs)),
                walked: 0,
                done: false,
            }),
        );
        engine.add_agent(
            label(9),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        // The second agent declares instantly and then idles in place; the
        // solo communicator's EXPLO passes through its node, which must not
        // corrupt the result (min_card at *some* foreign node is what
        // matters — here c == 1 so the c' logic is bypassed entirely).
        let outcome = engine.run(10_000_000).unwrap();
        assert!(outcome.all_declared());
        let d = outcome.declarations[0].1.unwrap().declaration;
        assert_eq!(d.leader, Some(label(5)));
        assert_eq!(d.size, Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        Communicate::new(0, BitStr::empty(), true, Arc::new(Uxs::from_steps(vec![1])));
    }
}
