//! `StarCheck` (paper Algorithm 9): the dancing protocol that verifies a
//! group consists of exactly the hypothesized team.
//!
//! The `k_h` agents, all at the central node `v` of degree `d`, take turns
//! (twice, in rank order) performing a *dance*: visiting each neighbor of
//! `v` and coming straight back, one neighbor per two rounds. While one
//! agent dances, the others hold still and check the cardinality rhythm:
//! `k_h - 1` at `v` in odd rounds (dancer away), `k_h` in even rounds
//! (dancer back); the dancer itself checks it is alone at each neighbor
//! (first pass) and that the group is whole whenever it returns. Any agent
//! out of step — an impostor, a missing dancer, a drop-in from another
//! hypothesis — breaks the rhythm and everyone's verdict turns false.
//! Lasts exactly `4·d·k_h` rounds.

use nochatter_graph::Port;
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Action, Obs, Poll};

/// Algorithm 9 as a [`Procedure`]; completes with the verdict `b`.
#[derive(Debug)]
pub struct StarCheck {
    k: u32,
    rank: u32,
    /// Degree of `v`, read on the first observation.
    d: Option<u32>,
    /// Poll offset `0 .. 4dk` (the `4dk`-th observation carries the final
    /// pending check and completes).
    o: u64,
    /// Whether this agent dances in the current slice (frozen at slice
    /// entry, since the second-pass dance condition consults `b` then).
    dancing: bool,
    b: bool,
}

impl StarCheck {
    /// A check for a team of `k` agents, executed by the agent of the given
    /// rank within the hypothesis configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= k` or `k == 0`.
    pub fn new(k: u32, rank: u32) -> Self {
        assert!(k > 0 && rank < k, "rank must index into the team");
        StarCheck {
            k,
            rank,
            d: None,
            o: 0,
            dancing: false,
            b: true,
        }
    }

    /// Whether this agent dances in slice `s` (`0..2k`): it is its rank's
    /// turn, and in the second pass only if its verdict still stands
    /// (Algorithm 9 line 7).
    fn dances_in(&self, s: u64) -> bool {
        let first_pass = s < u64::from(self.k);
        s % u64::from(self.k) == u64::from(self.rank) && (first_pass || self.b)
    }
}

impl Procedure for StarCheck {
    type Output = bool;

    fn poll(&mut self, obs: &Obs) -> Poll<bool> {
        let d = *self.d.get_or_insert(obs.degree);
        let two_d = u64::from(2 * d);
        let total = two_d * u64::from(2 * self.k);
        let w = self.o % two_d;
        if w == 0 {
            // Slice boundary: the previous slice's trailing checks ride on
            // this observation (everyone expects the full group at `v`),
            // and the new dance decision is frozen.
            if self.o >= 1 && obs.cur_card != self.k {
                self.b = false;
            }
            if self.o == total {
                return Poll::Complete(self.b);
            }
            self.dancing = self.dances_in(self.o / two_d);
        } else {
            let s = self.o / two_d;
            let first_pass = s < u64::from(self.k);
            if self.dancing {
                if w % 2 == 1 {
                    // At a neighbor: first pass checks solitude (line 11).
                    if first_pass && obs.cur_card != 1 {
                        self.b = false;
                    }
                } else if obs.cur_card != self.k {
                    // Back at v (line 15).
                    self.b = false;
                }
            } else {
                // Waiting: the rhythm check (line 22).
                let expect = if w % 2 == 1 { self.k - 1 } else { self.k };
                if obs.cur_card != expect {
                    self.b = false;
                }
            }
        }
        let action = if self.dancing {
            if w.is_multiple_of(2) {
                Action::TakePort(Port::new((w / 2) as u32))
            } else {
                Action::TakePort(
                    obs.entry_port
                        .expect("dancer moved out last round, entry port known"),
                )
            }
        } else {
            Action::Wait
        };
        self.o += 1;
        Poll::Yield(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, Graph, Label, NodeId};
    use nochatter_sim::proc::{FollowPath, ProcBehavior, WaitRounds};
    use nochatter_sim::{Declaration, Engine, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    /// Walk to the hub, then StarCheck; declare the verdict in `size`.
    struct HubChecker {
        walk: FollowPath,
        check: StarCheck,
        walking: bool,
    }

    impl Procedure for HubChecker {
        type Output = bool;
        fn poll(&mut self, obs: &Obs) -> Poll<bool> {
            if self.walking {
                match self.walk.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(()) => self.walking = false,
                }
            }
            self.check.poll(obs)
        }
    }

    fn run_checkers(
        g: &Graph,
        team: &[(u64, u32, Vec<u32>, u32)], // (label, start, walk, rank)
        k: u32,
        extras: Vec<(u64, u32, Box<dyn nochatter_sim::AgentBehavior>)>,
    ) -> Vec<bool> {
        let mut engine = Engine::new(g);
        let team_len = team.len();
        for (l, start, walk, rank) in team {
            engine.add_agent(
                label(*l),
                NodeId::new(*start),
                Box::new(ProcBehavior::mapping(
                    HubChecker {
                        walk: FollowPath::new(walk.iter().map(|&p| Port::new(p)).collect()),
                        check: StarCheck::new(k, *rank),
                        walking: true,
                    },
                    |ok| Declaration {
                        leader: None,
                        size: Some(u32::from(ok)),
                    },
                )),
            );
        }
        for (l, start, behavior) in extras {
            engine.add_agent(label(l), NodeId::new(start), behavior);
        }
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(1_000_000).unwrap();
        (0..team_len)
            .map(|idx| {
                let rec = outcome.declarations[idx].1.expect("checker must terminate");
                rec.declaration.size == Some(1)
            })
            .collect()
    }

    #[test]
    fn clean_team_passes() {
        // Three agents walk to the hub of a star and dance.
        let g = generators::star(4);
        let verdicts = run_checkers(
            &g,
            &[(1, 1, vec![0], 0), (2, 2, vec![0], 1), (3, 3, vec![0], 2)],
            3,
            vec![],
        );
        assert_eq!(verdicts, vec![true, true, true]);
    }

    #[test]
    fn parked_stranger_at_neighbor_is_detected() {
        // A fourth agent sits on one of the hub's neighbors: the dancers
        // find it during their neighbor visits (CurCard != 1 away from v).
        let g = generators::star(5);
        let verdicts = run_checkers(
            &g,
            &[(1, 1, vec![0], 0), (2, 2, vec![0], 1), (3, 3, vec![0], 2)],
            3,
            vec![(9, 4, Box::new(ProcBehavior::declaring(WaitRounds::new(0))))],
        );
        assert_eq!(verdicts, vec![false, false, false]);
    }

    #[test]
    fn stranger_at_the_hub_breaks_the_rhythm() {
        // A stranger waiting at the hub itself makes every cardinality
        // expectation off by one.
        let g = generators::star(5);
        let verdicts = run_checkers(
            &g,
            &[(1, 1, vec![0], 0), (2, 2, vec![0], 1)],
            2,
            vec![(
                9,
                4,
                Box::new(ProcBehavior::declaring(HubSitter { walked: false })),
            )],
        );
        assert_eq!(verdicts, vec![false, false]);
    }

    /// Walks one step to the hub and parks there forever (never declares
    /// within the test window — the test only reads the checkers).
    struct HubSitter {
        walked: bool,
    }
    impl Procedure for HubSitter {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> Poll<()> {
            if self.walked {
                Poll::Yield(Action::Wait)
            } else {
                self.walked = true;
                Poll::Yield(Action::TakePort(Port::new(0)))
            }
        }
    }

    #[test]
    fn duration_is_4dk() {
        let g = generators::star(4); // hub degree 3
        let mut engine = Engine::new(&g);
        for (l, start, rank) in [(1u64, 1u32, 0u32), (2, 2, 1)] {
            engine.add_agent(
                label(l),
                NodeId::new(start),
                Box::new(ProcBehavior::declaring(HubChecker {
                    walk: FollowPath::new(vec![Port::new(0)]),
                    check: StarCheck::new(2, rank),
                    walking: true,
                })),
            );
        }
        let outcome = engine.run(100_000).unwrap();
        assert!(outcome.all_declared());
        // 1 round of walking + 4 * d * k = 4 * 3 * 2 = 24 rounds of dancing.
        assert_eq!(outcome.declarations[0].1.unwrap().round, 1 + 24);
    }

    #[test]
    #[should_panic(expected = "rank must index")]
    fn bad_rank_panics() {
        StarCheck::new(2, 2);
    }

    #[test]
    fn missing_team_member_fails() {
        // k = 3 expected but only 2 agents show up: the waiter rhythm is
        // off from the start.
        let g = generators::star(4);
        let verdicts = run_checkers(&g, &[(1, 1, vec![0], 0), (2, 2, vec![0], 1)], 3, vec![]);
        assert_eq!(verdicts, vec![false, false]);
    }
}
