//! `BallTraversal` (paper Algorithm 7): the preprocessing walk of every
//! hypothesis.
//!
//! The agent follows **every** port sequence of length `r_ball(h)` over the
//! alphabet `{0..n_h-2}` from its start node, backtracking after each, with
//! a slow wait of `w_h` rounds before every single move. This (a) wakes
//! every dormant agent the main part could later disturb, and (b) returns
//! `false` the moment the agent stands on a node of degree `>= n_h` —
//! proof that the hypothesis is wrong. The slow waits are the paper's
//! *first scheme*: they make every pre-main-part move so sluggish that
//! agents testing hypothesis `h` can recognize (and not be confused by)
//! agents still working on other hypotheses.

use nochatter_explore::paths::Paths;
use nochatter_graph::Port;
use nochatter_sim::proc::{Procedure, WaitRounds};
use nochatter_sim::{Action, Obs, Poll};

use super::schedule::HypothesisSchedule;

#[derive(Debug)]
enum Stage {
    /// Deciding what to do at the current node (checks degree, port
    /// existence, path exhaustion).
    Decide,
    /// The slow wait before a forward move (the port to take afterwards).
    ForwardWait(WaitRounds, Port),
    /// The slow wait before a backtrack move.
    BackWait(WaitRounds, Port),
    Done(bool),
}

/// Algorithm 7 as a [`Procedure`]; completes with `false` iff a node of
/// degree `>= n_h` was stood upon.
#[derive(Debug)]
pub struct BallTraversal {
    n: u32,
    w: u64,
    paths: Paths,
    /// The current path being followed (owned copy; `Paths` reuses its
    /// buffer).
    current: Vec<u32>,
    /// Next index within `current` (0-based).
    i: usize,
    /// Entry ports of the moves made along the current path.
    entries: Vec<Port>,
    /// True while walking forward, false while backtracking.
    forward: bool,
    /// Whether the current path ended early (missing port).
    exhausted_paths: bool,
    stage: Stage,
    /// Set when a move was just yielded so the next observation's entry
    /// port must be recorded.
    pending_entry: bool,
}

impl BallTraversal {
    /// The traversal prescribed by the hypothesis schedule.
    pub fn new(hs: &HypothesisSchedule) -> Self {
        let mut paths = Paths::new(hs.alpha, hs.r_ball);
        let first = paths
            .next_path()
            .expect("alphabet is non-empty, at least one path exists")
            .to_vec();
        BallTraversal {
            n: hs.n,
            w: hs.w,
            paths,
            current: first,
            i: 0,
            entries: Vec::new(),
            forward: true,
            exhausted_paths: false,
            stage: Stage::Decide,
            pending_entry: false,
        }
    }
}

impl Procedure for BallTraversal {
    type Output = bool;

    fn poll(&mut self, obs: &Obs) -> Poll<bool> {
        if self.pending_entry {
            self.pending_entry = false;
            self.entries.push(
                obs.entry_port
                    .expect("moved last round, entry port is known"),
            );
        }
        loop {
            match &mut self.stage {
                Stage::Decide => {
                    if self.exhausted_paths {
                        self.stage = Stage::Done(true);
                        continue;
                    }
                    if self.forward {
                        // Algorithm 7 line 7: abort on a high-degree node.
                        if obs.degree >= self.n {
                            self.stage = Stage::Done(false);
                            continue;
                        }
                        if self.i >= self.current.len() || self.current[self.i] >= obs.degree {
                            // Path finished or port missing: backtrack what
                            // was walked.
                            self.forward = false;
                            continue;
                        }
                        let port = Port::new(self.current[self.i]);
                        self.i += 1;
                        self.stage = Stage::ForwardWait(WaitRounds::new(self.w), port);
                    } else if let Some(back) = self.entries.pop() {
                        self.stage = Stage::BackWait(WaitRounds::new(self.w), back);
                    } else {
                        // Back at the start: advance to the next path.
                        match self.paths.next_path() {
                            Some(p) => {
                                self.current.clear();
                                self.current.extend_from_slice(p);
                                self.i = 0;
                                self.forward = true;
                            }
                            None => self.exhausted_paths = true,
                        }
                    }
                }
                Stage::ForwardWait(wait, port) => {
                    let port = *port;
                    match wait.poll(obs) {
                        Poll::Yield(a) => return Poll::Yield(a),
                        Poll::Complete(()) => {
                            self.stage = Stage::Decide;
                            self.pending_entry = true;
                            return Poll::Yield(Action::TakePort(port));
                        }
                    }
                }
                Stage::BackWait(wait, port) => {
                    let port = *port;
                    match wait.poll(obs) {
                        Poll::Yield(a) => return Poll::Yield(a),
                        Poll::Complete(()) => {
                            self.stage = Stage::Decide;
                            // Backtrack moves do not re-record entries.
                            return Poll::Yield(Action::TakePort(port));
                        }
                    }
                }
                Stage::Done(b) => return Poll::Complete(*b),
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::ForwardWait(w, _) | Stage::BackWait(w, _) => w.min_wait(),
            _ => 0,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        match &mut self.stage {
            Stage::ForwardWait(w, _) | Stage::BackWait(w, _) => w.note_skipped(rounds),
            _ => debug_assert_eq!(rounds, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknown::enumeration::SliceEnumeration;
    use crate::unknown::schedule::UnknownSchedule;
    use nochatter_graph::{generators, Graph, InitialConfiguration, Label, NodeId};
    use nochatter_sim::proc::ProcBehavior;
    use nochatter_sim::{Declaration, Engine, TraceEvent, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn schedule_for(graph: Graph, k: usize) -> UnknownSchedule {
        let agents = (0..k)
            .map(|i| (label(i as u64 + 1), NodeId::new(i as u32)))
            .collect();
        let cfg = InitialConfiguration::new(graph, agents).unwrap();
        UnknownSchedule::new(SliceEnumeration::new(vec![cfg])).unwrap()
    }

    /// Runs a single BallTraversal on `graph` from `start`; returns
    /// (result, visited set, rounds).
    fn run_bt(
        graph: &Graph,
        start: NodeId,
        sched: &UnknownSchedule,
    ) -> (bool, std::collections::HashSet<NodeId>, u64) {
        let mut engine = Engine::new(graph);
        engine.add_agent(
            label(1),
            start,
            Box::new(ProcBehavior::mapping(
                BallTraversal::new(sched.hypothesis(1)),
                |ok| Declaration {
                    leader: None,
                    size: Some(u32::from(ok)),
                },
            )),
        );
        let other = graph.nodes().find(|&v| v != start).unwrap();
        engine.add_agent(
            label(2),
            other,
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        engine.record_trace(1_000_000);
        let outcome = engine.run(100_000_000).unwrap();
        assert!(outcome.all_declared(), "ball traversal must terminate");
        let rec = outcome.declarations[0].1.unwrap();
        let mut visited: std::collections::HashSet<NodeId> = std::iter::once(start).collect();
        for e in outcome.trace.unwrap().events() {
            if let TraceEvent::Move { agent, to, .. } = e {
                if *agent == label(1) {
                    visited.insert(*to);
                }
            }
        }
        (rec.declaration.size == Some(1), visited, rec.round)
    }

    #[test]
    fn visits_whole_ball_and_returns_true_when_degrees_fit() {
        // Hypothesis graph: 3-ring (n=3). Real graph: 3-ring (degrees 2 <=
        // n-1 = 2): traversal returns true and visits everything within the
        // ball radius — here the whole graph.
        let g = generators::ring(3);
        let sched = schedule_for(g.clone(), 2);
        let (ok, visited, rounds) = run_bt(&g, NodeId::new(0), &sched);
        assert!(ok);
        assert_eq!(visited.len(), 3);
        assert!(rounds <= sched.hypothesis(1).t_bt, "within the budget");
    }

    #[test]
    fn aborts_on_high_degree_node() {
        // Hypothesis: path(2) => n = 2, degree cap 1. Real graph: star(4)
        // whose center has degree 3: the traversal must return false.
        let sched = schedule_for(generators::path(2), 2);
        let g = generators::star(4);
        // Starting at a leaf (degree 1 < 2 is fine), the first step lands on
        // the center (degree 3 >= 2) and the next decision aborts.
        let (ok, _, _) = run_bt(&g, NodeId::new(1), &sched);
        assert!(!ok);
        // Starting at the center aborts before any move.
        let (ok, visited, rounds) = run_bt(&g, NodeId::new(0), &sched);
        assert!(!ok);
        assert_eq!(visited.len(), 1, "no move needed");
        assert_eq!(rounds, 0, "aborts on the first observation");
    }

    #[test]
    fn true_traversal_ends_where_it_started() {
        let g = generators::ring(3);
        let sched = schedule_for(g.clone(), 2);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(BallTraversal::new(
                sched.hypothesis(1),
            ))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        let outcome = engine.run(100_000_000).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(outcome.declarations[0].1.unwrap().node, NodeId::new(1));
    }

    #[test]
    fn every_move_is_preceded_by_the_slow_wait() {
        let g = generators::ring(3);
        let sched = schedule_for(g.clone(), 2);
        let w = sched.hypothesis(1).w;
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(BallTraversal::new(
                sched.hypothesis(1),
            ))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.record_trace(2_000_000);
        let outcome = engine.run(100_000_000).unwrap();
        let trace = outcome.trace.unwrap();
        let move_rounds: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Move { agent, round, .. } if *agent == label(1) => Some(*round),
                _ => None,
            })
            .collect();
        assert!(!move_rounds.is_empty());
        // First move happens after w waits; consecutive moves are >= w+1
        // rounds apart.
        assert!(move_rounds[0] >= w);
        for pair in move_rounds.windows(2) {
            assert!(
                pair[1] - pair[0] > w,
                "moves at {} and {} closer than the slow wait {w}",
                pair[0],
                pair[1]
            );
        }
    }
}
