//! `GatherUnknownUpperBound` (paper §4): gathering, leader election and
//! exact size learning with **no a priori knowledge about the network**.
//!
//! The agents share a fixed enumeration `Ω = (φ_1, φ_2, ...)` of initial
//! configurations and test the hypotheses "`φ_h` is the real configuration"
//! one by one (Algorithm 5). Hypothesis `h` (Algorithm 6) either convinces
//! every agent of the team that gathering is achieved — in which case they
//! all declare, with the smallest label of `φ_h` as leader and `n_h` as the
//! learned size — or consumes exactly `T_h` rounds for everyone, keeping
//! the team synchronized for hypothesis `h+1`.
//!
//! The two confusion-prevention schemes of §4.1 are realized exactly:
//! *slow waits* (`w_h` rounds before every pre-main-part move) let agents
//! outrun anyone still working on later hypotheses, and *ball traversals*
//! wake every agent whose execution could interfere before the sensitive
//! window (`StarCheck` → `EnsureCleanExploration` → `GraphSizeCheck`)
//! opens. The durations come from the [`UnknownSchedule`], the
//! calibrated counterpart of the paper's astronomically loose constants
//! (see `DESIGN.md` §3.4).
//!
//! The algorithm is exponential by design — the paper presents it as a
//! feasibility result — so runs are confined to small configuration
//! enumerations; the quiescence fast-forward of the engine makes the huge
//! waiting periods affordable.

mod ball;
mod ece;
mod enumeration;
mod gsc;
mod hypothesis;
mod mtcn;
mod oracle;
mod schedule;
mod starcheck;

use std::sync::Arc;

use nochatter_graph::{Graph, Label, NodeId};
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Action, Obs, Poll};

pub use ball::BallTraversal;
pub use ece::EnsureCleanExploration;
pub use enumeration::{ConfigEnumeration, ExhaustiveEnumeration, SliceEnumeration};
pub use gsc::{GraphSizeCheck, GscOutcome};
pub use hypothesis::{Hypothesis, HypothesisVerdict};
pub use mtcn::MoveToCentralNode;
pub use oracle::{EstMode, PositionTracker, SharedTracker};
pub use schedule::{
    paper_ball_budget, paper_slow_wait, HypothesisSchedule, ScheduleError, UnknownSchedule,
};
pub use starcheck::StarCheck;

/// Tunables for [`GatherUnknownUpperBound`]; the default is the faithful
/// algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct UnknownOptions {
    /// How `EST+` resolves dirty explorations (see [`EstMode`]).
    pub est_mode: EstMode,
    /// Ablation: disable the `EnsureCleanExploration` shield (Algorithm
    /// 10). Never set in the faithful algorithm; experiment A2 uses it to
    /// demonstrate the shield is load-bearing.
    pub disable_clean_exploration: bool,
}

/// The result of a full unknown-bound run: the engine outcome plus each
/// agent's report (insertion order).
pub type UnknownRunResult = (
    nochatter_sim::RunOutcome,
    Vec<(Label, Option<UnknownReport>)>,
);

/// What an agent knows when `GatherUnknownUpperBound` declares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnknownReport {
    /// The elected leader: the smallest label of the accepted hypothesis.
    pub leader: Label,
    /// The learned graph size `n_h` (Theorem 4.1: the exact size).
    pub size: u32,
    /// Which hypothesis was accepted.
    pub hypothesis: usize,
    /// Whether any `EST+` execution along the way was dirty (Lemma 4.10
    /// predicts never; surfaced for validation and ablations).
    pub est_dirty_observed: bool,
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one live hypothesis at a time; boxing buys nothing
enum Stage {
    Hyp(Hypothesis),
    /// The enumeration horizon was exhausted without success: park forever
    /// (the faithful algorithm would keep going — the horizon is a
    /// simulation artifact, and reaching it fails the run's round limit).
    Exhausted,
}

/// Algorithm 5 as a [`Procedure`]; completes with the [`UnknownReport`].
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use nochatter_core::unknown::{
///     EstMode, GatherUnknownUpperBound, SliceEnumeration, UnknownSchedule,
/// };
/// use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
///
/// let cfg = InitialConfiguration::new(
///     generators::path(2),
///     vec![
///         (Label::new(1).unwrap(), NodeId::new(0)),
///         (Label::new(2).unwrap(), NodeId::new(1)),
///     ],
/// )
/// .unwrap();
/// let omega = SliceEnumeration::new(vec![cfg.clone()]);
/// let schedule = Arc::new(UnknownSchedule::new(omega).unwrap());
/// let graph = cfg.graph_arc();
/// let agent = GatherUnknownUpperBound::new(
///     Label::new(1).unwrap(),
///     NodeId::new(0),
///     graph,
///     schedule,
///     EstMode::Conservative,
/// );
/// # let _ = agent;
/// ```
#[derive(Debug)]
pub struct GatherUnknownUpperBound {
    schedule: Arc<UnknownSchedule>,
    label: Label,
    tracker: SharedTracker,
    options: UnknownOptions,
    h: usize,
    dirty_any: bool,
    stage: Stage,
}

impl GatherUnknownUpperBound {
    /// An agent with the given label starting at `start` on the real
    /// `graph` (consumed only by the position oracle — see `DESIGN.md`
    /// §3.3), testing hypotheses against the shared schedule.
    pub fn new(
        label: Label,
        start: NodeId,
        graph: Arc<Graph>,
        schedule: Arc<UnknownSchedule>,
        mode: EstMode,
    ) -> Self {
        Self::with_options(
            label,
            start,
            graph,
            schedule,
            UnknownOptions {
                est_mode: mode,
                ..UnknownOptions::default()
            },
        )
    }

    /// Like [`GatherUnknownUpperBound::new`] with explicit
    /// [`UnknownOptions`].
    pub fn with_options(
        label: Label,
        start: NodeId,
        graph: Arc<Graph>,
        schedule: Arc<UnknownSchedule>,
        options: UnknownOptions,
    ) -> Self {
        let tracker = PositionTracker::new(graph, start);
        let first = Self::make_hypothesis(&schedule, 1, label, options, &tracker);
        GatherUnknownUpperBound {
            schedule,
            label,
            tracker,
            options,
            h: 1,
            dirty_any: false,
            stage: Stage::Hyp(first),
        }
    }

    fn make_hypothesis(
        schedule: &UnknownSchedule,
        h: usize,
        label: Label,
        options: UnknownOptions,
        tracker: &SharedTracker,
    ) -> Hypothesis {
        Hypothesis::with_shield(
            schedule.enumeration().get(h).clone(),
            schedule.hypothesis(h).clone(),
            label,
            options.est_mode,
            std::rc::Rc::clone(tracker),
            !options.disable_clean_exploration,
        )
    }
}

impl Procedure for GatherUnknownUpperBound {
    type Output = UnknownReport;

    fn poll(&mut self, obs: &Obs) -> Poll<UnknownReport> {
        loop {
            match &mut self.stage {
                Stage::Hyp(hyp) => match hyp.poll(obs) {
                    Poll::Yield(a) => {
                        // The position oracle replays every move this agent
                        // makes.
                        if let Action::TakePort(p) = a {
                            self.tracker.borrow_mut().apply(p);
                        }
                        return Poll::Yield(a);
                    }
                    Poll::Complete(HypothesisVerdict::True { dirty_est }) => {
                        self.dirty_any |= dirty_est;
                        let cfg = self.schedule.enumeration().get(self.h);
                        return Poll::Complete(UnknownReport {
                            leader: cfg.smallest_label(),
                            size: cfg.size() as u32,
                            hypothesis: self.h,
                            est_dirty_observed: self.dirty_any,
                        });
                    }
                    Poll::Complete(HypothesisVerdict::False { dirty_est }) => {
                        self.dirty_any |= dirty_est;
                        self.h += 1;
                        if self.h > self.schedule.horizon() {
                            self.stage = Stage::Exhausted;
                        } else {
                            self.stage = Stage::Hyp(Self::make_hypothesis(
                                &self.schedule,
                                self.h,
                                self.label,
                                self.options,
                                &self.tracker,
                            ));
                        }
                    }
                },
                Stage::Exhausted => return Poll::Yield(Action::Wait),
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::Hyp(h) => h.min_wait(),
            Stage::Exhausted => u64::MAX,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        if let Stage::Hyp(h) = &mut self.stage {
            h.note_skipped(rounds);
        }
    }
}

/// Runs `GatherUnknownUpperBound` for every agent of `cfg` against the
/// enumeration; returns the run outcome and each agent's report (insertion
/// order). The engine round limit is taken from the schedule.
///
/// # Errors
///
/// Propagates engine setup/protocol errors.
///
/// # Panics
///
/// Panics if the schedule cannot be built for the enumeration (durations
/// overflowing `u64` indicate an over-ambitious horizon).
pub fn run_unknown(
    cfg: &nochatter_graph::InitialConfiguration,
    omega: Arc<dyn ConfigEnumeration>,
    mode: EstMode,
    wake: nochatter_sim::WakeSchedule,
) -> Result<UnknownRunResult, nochatter_sim::SimError> {
    run_unknown_with_options(
        cfg,
        omega,
        UnknownOptions {
            est_mode: mode,
            ..UnknownOptions::default()
        },
        wake,
    )
}

/// [`run_unknown`] with explicit [`UnknownOptions`] (ablation harness).
///
/// # Errors
///
/// Propagates engine setup/protocol errors.
///
/// # Panics
///
/// Panics if the schedule cannot be built for the enumeration.
pub fn run_unknown_with_options(
    cfg: &nochatter_graph::InitialConfiguration,
    omega: Arc<dyn ConfigEnumeration>,
    options: UnknownOptions,
    wake: nochatter_sim::WakeSchedule,
) -> Result<UnknownRunResult, nochatter_sim::SimError> {
    use std::sync::Mutex;

    let schedule =
        Arc::new(UnknownSchedule::new(omega).expect("schedule must fit u64 for this horizon"));
    // The configuration owns its graph behind an `Arc`: the per-agent
    // position oracles share it with a pointer clone instead of copying
    // the graph once per run.
    let graph = cfg.graph_arc();
    let mut engine: nochatter_sim::Engine<'_, nochatter_sim::Static, crate::slot::BehaviorSlot> =
        nochatter_sim::Engine::with_parts(cfg.graph(), &nochatter_sim::Static);
    let sinks: Vec<(Label, Arc<Mutex<Option<UnknownReport>>>)> = cfg
        .agents()
        .iter()
        .map(|&(l, _)| (l, Arc::new(Mutex::new(None))))
        .collect();
    for (idx, &(label, start)) in cfg.agents().iter().enumerate() {
        let proc_ = GatherUnknownUpperBound::with_options(
            label,
            start,
            Arc::clone(&graph),
            Arc::clone(&schedule),
            options,
        );
        engine.add_agent(
            label,
            start,
            crate::slot::BehaviorSlot::unknown_gather(proc_, Arc::clone(&sinks[idx].1)),
        );
    }
    engine.set_wake_schedule(wake);
    let outcome = engine.run(schedule.round_limit())?;
    let reports = sinks
        .into_iter()
        .map(|(label, sink)| (label, *sink.lock().expect("sink poisoned")))
        .collect();
    Ok((outcome, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, InitialConfiguration};
    use nochatter_sim::WakeSchedule;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn cfg_path2(l1: u64, l2: u64) -> InitialConfiguration {
        InitialConfiguration::new(
            generators::path(2),
            vec![(label(l1), NodeId::new(0)), (label(l2), NodeId::new(1))],
        )
        .unwrap()
    }

    fn cfg_ring3(labels: &[(u64, u32)]) -> InitialConfiguration {
        InitialConfiguration::new(
            generators::ring(3),
            labels
                .iter()
                .map(|&(l, v)| (label(l), NodeId::new(v)))
                .collect(),
        )
        .unwrap()
    }

    fn check_success(
        cfg: &InitialConfiguration,
        omega: Arc<dyn ConfigEnumeration>,
        wake: WakeSchedule,
        expect_h: Option<usize>,
    ) {
        let (outcome, reports) =
            run_unknown(cfg, omega, EstMode::Conservative, wake).expect("run succeeds");
        let report = outcome
            .gathering()
            .unwrap_or_else(|e| panic!("gathering invalid: {e}"));
        assert_eq!(report.leader, Some(cfg.smallest_label()));
        assert_eq!(report.size, Some(cfg.size() as u32));
        for (agent, r) in &reports {
            let r = r.unwrap_or_else(|| panic!("agent {agent} has no report"));
            if let Some(h) = expect_h {
                assert_eq!(r.hypothesis, h, "accepted the wrong hypothesis");
            }
            assert!(
                !r.est_dirty_observed,
                "Lemma 4.10: every EST+ reached through the algorithm is clean"
            );
        }
    }

    #[test]
    fn true_first_hypothesis_two_nodes() {
        let cfg = cfg_path2(1, 2);
        let omega = SliceEnumeration::new(vec![cfg.clone()]);
        check_success(&cfg, omega, WakeSchedule::Simultaneous, Some(1));
    }

    #[test]
    fn wrong_labels_then_true_hypothesis() {
        // φ_1 has the wrong label set; φ_2 is the truth. The first
        // hypothesis must fail for everyone and the second must succeed.
        let cfg = cfg_path2(1, 2);
        let omega = SliceEnumeration::new(vec![cfg_path2(3, 4), cfg.clone()]);
        check_success(&cfg, omega, WakeSchedule::Simultaneous, Some(2));
    }

    #[test]
    fn wrong_size_then_true_hypothesis() {
        // φ_1 hypothesizes a 2-node world; the real network is a 3-ring.
        let cfg = cfg_ring3(&[(1, 0), (2, 2)]);
        let omega = SliceEnumeration::new(vec![cfg_path2(1, 2), cfg.clone()]);
        check_success(&cfg, omega, WakeSchedule::Simultaneous, Some(2));
    }

    #[test]
    fn swapped_positions_still_gather_correctly() {
        // φ_1 is the right graph and label set but a different placement.
        // The paper explicitly allows such a hypothesis to be accepted "by
        // chance" (§4.2): since size and labels match, whichever hypothesis
        // wins, the gathering itself must be correct — same node, same
        // round, real leader, true size. We assert exactly that and leave
        // the accepted index unconstrained.
        let cfg = cfg_ring3(&[(1, 0), (2, 2)]);
        let wrong = cfg_ring3(&[(1, 2), (2, 1)]);
        let omega = SliceEnumeration::new(vec![wrong, cfg.clone()]);
        check_success(&cfg, omega, WakeSchedule::Simultaneous, None);
    }

    #[test]
    fn staggered_wakeup_still_gathers() {
        let cfg = cfg_path2(1, 2);
        let omega = SliceEnumeration::new(vec![cfg_path2(2, 3), cfg.clone()]);
        check_success(&cfg, omega, WakeSchedule::Staggered { gap: 7 }, Some(2));
    }

    #[test]
    fn first_only_wakeup_three_agents() {
        let cfg = cfg_ring3(&[(1, 0), (2, 1), (3, 2)]);
        let omega = SliceEnumeration::new(vec![cfg.clone()]);
        check_success(&cfg, omega, WakeSchedule::FirstOnly, Some(1));
    }

    #[test]
    fn exhausted_enumeration_times_out_cleanly() {
        // Ω never contains the truth: nobody declares, the engine hits the
        // schedule-derived round limit, and the outcome reports it.
        let cfg = cfg_ring3(&[(1, 0), (2, 2)]);
        let omega = SliceEnumeration::new(vec![cfg_path2(1, 2)]);
        let (outcome, reports) = run_unknown(
            &cfg,
            omega,
            EstMode::Conservative,
            WakeSchedule::Simultaneous,
        )
        .expect("run completes");
        assert!(!outcome.all_declared());
        assert!(reports.iter().all(|(_, r)| r.is_none()));
    }
}
