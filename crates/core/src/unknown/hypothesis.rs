//! `Hypothesis` (paper Algorithm 6): one full test of "the initial
//! configuration is `φ_h`".
//!
//! First part (the optimistic path): `BallTraversal` (wake and scan the
//! neighborhood), wait `S_h` (let stragglers catch up to hypothesis `h`),
//! `MoveToCentralNode`, `StarCheck`, `EnsureCleanExploration`,
//! `GraphSizeCheck` — any failure short-circuits to the second part. A
//! `GraphSizeCheck` success makes the whole hypothesis succeed.
//!
//! Second part (the cleanup): retrace *every* entry port of the first part
//! in reverse, one slow (`w_h`-separated) move at a time — returning the
//! agent to its start node — then pad so the hypothesis consumes exactly
//! `T_h` rounds. The exact budget is what keeps all agents' hypothesis
//! clocks in lockstep (Lemma 4.5).

use nochatter_graph::{InitialConfiguration, Label, Port};
use nochatter_sim::proc::{Procedure, WaitRounds};
use nochatter_sim::{Action, Obs, Poll};

use super::ball::BallTraversal;
use super::ece::EnsureCleanExploration;
use super::gsc::GraphSizeCheck;
use super::mtcn::MoveToCentralNode;
use super::oracle::{EstMode, SharedTracker};
use super::schedule::HypothesisSchedule;
use super::starcheck::StarCheck;

/// How a hypothesis concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HypothesisVerdict {
    /// `Hypothesis(h)` returned true: gathering is achieved.
    True {
        /// Whether any `EST+` execution during this hypothesis was dirty.
        dirty_est: bool,
    },
    /// `Hypothesis(h)` returned false after exactly `T_h` rounds.
    False {
        /// Whether any `EST+` execution during this hypothesis was dirty.
        dirty_est: bool,
    },
}

#[derive(Debug)]
enum Stage {
    Ball(BallTraversal),
    /// Algorithm 6 line 4: wait `S_h`.
    Line4(WaitRounds),
    Mtcn(MoveToCentralNode),
    Star(StarCheck),
    Ece(EnsureCleanExploration),
    Gsc(GraphSizeCheck),
    /// The slow wait before the next unwind move.
    UnwindWait(WaitRounds, Port),
    /// Decide the next unwind step (or start padding).
    UnwindNext,
    /// Algorithm 6 line 22: pad to exactly `T_h`.
    Pad(WaitRounds),
}

/// Algorithm 6 as a [`Procedure`].
#[derive(Debug)]
pub struct Hypothesis {
    cfg: InitialConfiguration,
    hs: HypothesisSchedule,
    label: Label,
    mode: EstMode,
    /// Ablation switch: skip `EnsureCleanExploration` (never set by the
    /// faithful algorithm; exercised by experiment A2 to show the shield is
    /// load-bearing).
    skip_ece: bool,
    tracker: SharedTracker,
    /// Entry ports of every first-part move, in order of entrance
    /// (Algorithm 6 line 16).
    trail: Vec<Port>,
    pending_trail: bool,
    in_first_part: bool,
    /// Move instructions consumed so far within this hypothesis.
    rounds_spent: u64,
    dirty_est: bool,
    stage: Stage,
}

impl Hypothesis {
    /// A fresh test of hypothesis `φ_h` by the agent with the given label.
    pub fn new(
        cfg: InitialConfiguration,
        hs: HypothesisSchedule,
        label: Label,
        mode: EstMode,
        tracker: SharedTracker,
    ) -> Self {
        Self::with_shield(cfg, hs, label, mode, tracker, true)
    }

    /// Like [`Hypothesis::new`] but with the clean-exploration shield
    /// optionally disabled (`shield = false` skips Algorithm 10).
    pub fn with_shield(
        cfg: InitialConfiguration,
        hs: HypothesisSchedule,
        label: Label,
        mode: EstMode,
        tracker: SharedTracker,
        shield: bool,
    ) -> Self {
        let ball = BallTraversal::new(&hs);
        Hypothesis {
            cfg,
            hs,
            label,
            mode,
            skip_ece: !shield,
            tracker,
            trail: Vec::new(),
            pending_trail: false,
            in_first_part: true,
            rounds_spent: 0,
            dirty_est: false,
            stage: Stage::Ball(ball),
        }
    }

    /// The exact round budget `T_h` of this hypothesis.
    pub fn budget(&self) -> u64 {
        self.hs.t_h
    }

    fn emit(&mut self, action: Action) -> Poll<HypothesisVerdict> {
        self.rounds_spent += 1;
        if self.in_first_part {
            if let Action::TakePort(_) = action {
                self.pending_trail = true;
            }
        }
        Poll::Yield(action)
    }
}

impl Procedure for Hypothesis {
    type Output = HypothesisVerdict;

    fn poll(&mut self, obs: &Obs) -> Poll<HypothesisVerdict> {
        if self.pending_trail {
            self.pending_trail = false;
            self.trail.push(
                obs.entry_port
                    .expect("moved last round, entry port is known"),
            );
        }
        loop {
            match &mut self.stage {
                Stage::Ball(b) => match b.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(true) => {
                        self.stage = Stage::Line4(WaitRounds::new(self.hs.s));
                    }
                    Poll::Complete(false) => {
                        self.in_first_part = false;
                        self.stage = Stage::UnwindNext;
                    }
                },
                Stage::Line4(w) => match w.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(()) => {
                        self.stage =
                            Stage::Mtcn(MoveToCentralNode::new(&self.cfg, &self.hs, self.label));
                    }
                },
                Stage::Mtcn(m) => match m.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(true) => {
                        let rank = self
                            .cfg
                            .rank(self.label)
                            .expect("MoveToCentralNode succeeded, label is in φ_h");
                        self.stage = Stage::Star(StarCheck::new(self.hs.k, rank as u32));
                    }
                    Poll::Complete(false) => {
                        self.in_first_part = false;
                        self.stage = Stage::UnwindNext;
                    }
                },
                Stage::Star(s) => match s.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(true) => {
                        if self.skip_ece {
                            let rank = self
                                .cfg
                                .rank(self.label)
                                .expect("label is in φ_h past MoveToCentralNode");
                            self.stage = Stage::Gsc(GraphSizeCheck::new(
                                &self.hs,
                                rank as u32,
                                self.mode,
                                std::rc::Rc::clone(&self.tracker),
                            ));
                        } else {
                            self.stage = Stage::Ece(EnsureCleanExploration::new(&self.hs));
                        }
                    }
                    Poll::Complete(false) => {
                        self.in_first_part = false;
                        self.stage = Stage::UnwindNext;
                    }
                },
                Stage::Ece(e) => match e.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(true) => {
                        let rank = self
                            .cfg
                            .rank(self.label)
                            .expect("label is in φ_h past MoveToCentralNode");
                        self.stage = Stage::Gsc(GraphSizeCheck::new(
                            &self.hs,
                            rank as u32,
                            self.mode,
                            std::rc::Rc::clone(&self.tracker),
                        ));
                    }
                    Poll::Complete(false) => {
                        self.in_first_part = false;
                        self.stage = Stage::UnwindNext;
                    }
                },
                Stage::Gsc(g) => match g.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(out) => {
                        self.dirty_est |= out.dirty;
                        if out.b {
                            return Poll::Complete(HypothesisVerdict::True {
                                dirty_est: self.dirty_est,
                            });
                        }
                        self.in_first_part = false;
                        self.stage = Stage::UnwindNext;
                    }
                },
                Stage::UnwindNext => match self.trail.pop() {
                    Some(port) => {
                        self.stage = Stage::UnwindWait(WaitRounds::new(self.hs.w), port);
                    }
                    None => {
                        let remaining =
                            self.hs.t_h.checked_sub(self.rounds_spent).expect(
                                "hypothesis exceeded its budget T_h — schedule bound violated",
                            );
                        self.stage = Stage::Pad(WaitRounds::new(remaining));
                    }
                },
                Stage::UnwindWait(w, port) => {
                    let port = *port;
                    match w.poll(obs) {
                        Poll::Yield(a) => return self.emit(a),
                        Poll::Complete(()) => {
                            self.stage = Stage::UnwindNext;
                            return self.emit(Action::TakePort(port));
                        }
                    }
                }
                Stage::Pad(w) => match w.poll(obs) {
                    Poll::Yield(a) => return self.emit(a),
                    Poll::Complete(()) => {
                        debug_assert_eq!(self.rounds_spent, self.hs.t_h);
                        return Poll::Complete(HypothesisVerdict::False {
                            dirty_est: self.dirty_est,
                        });
                    }
                },
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::Ball(b) => b.min_wait(),
            Stage::Line4(w) | Stage::Pad(w) | Stage::UnwindWait(w, _) => w.min_wait(),
            Stage::Mtcn(m) => m.min_wait(),
            Stage::Gsc(g) => g.min_wait(),
            Stage::Star(_) | Stage::Ece(_) | Stage::UnwindNext => 0,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        self.rounds_spent += rounds;
        match &mut self.stage {
            Stage::Ball(b) => b.note_skipped(rounds),
            Stage::Line4(w) | Stage::Pad(w) | Stage::UnwindWait(w, _) => w.note_skipped(rounds),
            Stage::Mtcn(m) => m.note_skipped(rounds),
            Stage::Gsc(g) => g.note_skipped(rounds),
            Stage::Star(_) | Stage::Ece(_) | Stage::UnwindNext => {
                debug_assert_eq!(rounds, 0)
            }
        }
    }
}
