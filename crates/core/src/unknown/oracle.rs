//! The position-tracking oracle behind the `EST+` decision.
//!
//! The paper's `EST` (exploration with a stationary token, after
//! Chalopin–Das–Kosowski) constructs a map of the anonymous graph; the
//! unknown-bound algorithm only consumes its *boolean contract* — "did a
//! clean, complete exploration learn size exactly `n_h`?". We keep the
//! walk (movement, timing, observability) fully faithful and compute the
//! decision with a dead-reckoning oracle: the tracker holds the real graph
//! and the agent's true start node, and replays every move the agent makes,
//! so `EST+` can check coverage and cleanliness exactly (see `DESIGN.md`
//! §3.3 for why this preserves the paper's behaviour).
//!
//! The tracker is shared (`Rc<RefCell<_>>`) between the top-level procedure
//! (which records every move it yields) and the nested `EST+` (which reads
//! positions).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use nochatter_graph::{Graph, NodeId, Port};

/// Dead-reckons an agent's true position on the real graph.
#[derive(Debug)]
pub struct PositionTracker {
    graph: Arc<Graph>,
    at: NodeId,
}

/// Shared handle to a [`PositionTracker`].
pub type SharedTracker = Rc<RefCell<PositionTracker>>;

impl PositionTracker {
    /// A tracker for an agent starting at `start` on `graph`.
    pub fn new(graph: Arc<Graph>, start: NodeId) -> SharedTracker {
        Rc::new(RefCell::new(PositionTracker { graph, at: start }))
    }

    /// Records a move through `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist — the engine would reject the move
    /// too, so this indicates an algorithm bug.
    pub fn apply(&mut self, port: Port) {
        let (to, _) = self
            .graph
            .neighbor(self.at, port)
            .expect("tracker replayed a move through a nonexistent port");
        self.at = to;
    }

    /// The current true position.
    pub fn position(&self) -> NodeId {
        self.at
    }

    /// The real graph (used by `EST+` for coverage accounting only).
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }
}

/// How `EST+` resolves its decision when the exploration was *not* clean —
/// a situation Lemma 4.10 proves unreachable through the full algorithm,
/// but which the ablation harness provokes deliberately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EstMode {
    /// A dirty exploration returns `false` (a real map construction misled
    /// by spurious token sightings would fail to validate; this is the
    /// faithful conservative reading).
    #[default]
    Conservative,
    /// A dirty exploration *pretends it saw nothing wrong* and answers from
    /// coverage alone — the adversarial reading used by the ablation that
    /// demonstrates why `EnsureCleanExploration` is load-bearing.
    Adversarial,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::generators;

    #[test]
    fn tracker_replays_moves() {
        let g = Arc::new(generators::ring(5));
        let tracker = PositionTracker::new(Arc::clone(&g), NodeId::new(0));
        tracker.borrow_mut().apply(Port::new(1));
        tracker.borrow_mut().apply(Port::new(1));
        assert_eq!(tracker.borrow().position(), NodeId::new(2));
        tracker.borrow_mut().apply(Port::new(0));
        assert_eq!(tracker.borrow().position(), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "nonexistent port")]
    fn tracker_rejects_bad_port() {
        let g = Arc::new(generators::path(3));
        let tracker = PositionTracker::new(g, NodeId::new(0));
        tracker.borrow_mut().apply(Port::new(5));
    }
}
