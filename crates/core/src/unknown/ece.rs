//! `EnsureCleanExploration` (paper Algorithm 10): the double sweep that
//! guarantees the upcoming map-checking explorations will be clean.
//!
//! The whole group walks, in lockstep, **every** port sequence of length
//! `l_ece(h)` over the alphabet `{0..n_h-2}` from the central node —
//! twice. After every forward move the group checks `CurCard == k_h`:
//! meeting *anyone* else means the hypothesis may be polluted and the
//! function returns `false` immediately. Two sweeps are needed because a
//! slow foreign agent (whose every move is `w_h`-separated) can move at
//! most once during the whole window, so at least one sweep sees it parked.

use nochatter_explore::paths::Paths;
use nochatter_graph::Port;
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Action, Obs, Poll};

use super::schedule::HypothesisSchedule;

/// Algorithm 10 as a [`Procedure`]; completes with `false` as soon as a
/// foreign presence is observed, `true` after two undisturbed sweeps.
#[derive(Debug)]
pub struct EnsureCleanExploration {
    k: u32,
    sweep: u8,
    paths: Paths,
    current: Vec<u32>,
    /// Next index within the current path.
    i: usize,
    entries: Vec<Port>,
    forward: bool,
    /// A forward move was yielded: check cardinality and record the entry
    /// port on the next observation.
    pending_forward: bool,
    /// A backtrack move was yielded: nothing to check, nothing to record.
    done: bool,
}

impl EnsureCleanExploration {
    /// The sweep prescribed by the hypothesis schedule.
    pub fn new(hs: &HypothesisSchedule) -> Self {
        let mut paths = Paths::new(hs.alpha, hs.l_ece);
        let first = paths.next_path().expect("non-empty alphabet").to_vec();
        EnsureCleanExploration {
            k: hs.k,
            sweep: 1,
            paths,
            current: first,
            i: 0,
            entries: Vec::new(),
            forward: true,
            pending_forward: false,
            done: false,
        }
    }
}

impl Procedure for EnsureCleanExploration {
    type Output = bool;

    fn poll(&mut self, obs: &Obs) -> Poll<bool> {
        if self.pending_forward {
            self.pending_forward = false;
            // Algorithm 10 lines 10-12: bail out on any cardinality change.
            if obs.cur_card != self.k {
                return Poll::Complete(false);
            }
            self.entries.push(
                obs.entry_port
                    .expect("moved last round, entry port is known"),
            );
        }
        loop {
            if self.done {
                return Poll::Complete(true);
            }
            if self.forward {
                if self.i < self.current.len() && self.current[self.i] < obs.degree {
                    let port = Port::new(self.current[self.i]);
                    self.i += 1;
                    self.pending_forward = true;
                    return Poll::Yield(Action::TakePort(port));
                }
                // Path exhausted or port missing (line 6-7): backtrack.
                self.forward = false;
            } else if let Some(back) = self.entries.pop() {
                return Poll::Yield(Action::TakePort(back));
            } else {
                match self.paths.next_path() {
                    Some(p) => {
                        self.current.clear();
                        self.current.extend_from_slice(p);
                        self.i = 0;
                        self.forward = true;
                    }
                    None if self.sweep == 1 => {
                        self.sweep = 2;
                        self.paths.reset();
                        let first = self.paths.next_path().expect("non-empty alphabet").to_vec();
                        self.current = first;
                        self.i = 0;
                        self.forward = true;
                    }
                    None => {
                        self.done = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknown::enumeration::SliceEnumeration;
    use crate::unknown::schedule::UnknownSchedule;
    use nochatter_graph::{generators, Graph, InitialConfiguration, Label, NodeId};
    use nochatter_sim::proc::{FollowPath, ProcBehavior, WaitRounds};
    use nochatter_sim::{AgentBehavior, Declaration, Engine, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn ring3_schedule(k: usize) -> UnknownSchedule {
        let agents = (0..k)
            .map(|i| (label(i as u64 + 1), NodeId::new(i as u32)))
            .collect();
        let cfg = InitialConfiguration::new(generators::ring(3), agents).unwrap();
        UnknownSchedule::new(SliceEnumeration::new(vec![cfg])).unwrap()
    }

    /// Wait (to align with slower teammates), walk to the meeting node,
    /// then run ECE together — all team members must start the sweep in the
    /// same round, as `MoveToCentralNode` arranges in the full algorithm.
    struct Sweeper {
        pre_wait: u64,
        walk: FollowPath,
        ece: EnsureCleanExploration,
        walking: bool,
    }

    impl Procedure for Sweeper {
        type Output = bool;
        fn poll(&mut self, obs: &Obs) -> Poll<bool> {
            if self.pre_wait > 0 {
                self.pre_wait -= 1;
                return Poll::Yield(nochatter_sim::Action::Wait);
            }
            if self.walking {
                match self.walk.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(()) => self.walking = false,
                }
            }
            self.ece.poll(obs)
        }
    }

    fn run_sweep(
        g: &Graph,
        sched: &UnknownSchedule,
        team: &[(u64, u32, Vec<u32>)],
        extras: Vec<(u64, u32, Box<dyn AgentBehavior>)>,
    ) -> Vec<(bool, NodeId, u64)> {
        let mut engine = Engine::new(g);
        let team_len = team.len();
        let longest = team.iter().map(|(_, _, w)| w.len()).max().unwrap() as u64;
        for (l, start, walk) in team {
            engine.add_agent(
                label(*l),
                NodeId::new(*start),
                Box::new(ProcBehavior::mapping(
                    Sweeper {
                        pre_wait: longest - walk.len() as u64,
                        walk: FollowPath::new(walk.iter().map(|&p| Port::new(p)).collect()),
                        ece: EnsureCleanExploration::new(sched.hypothesis(1)),
                        walking: true,
                    },
                    |ok| Declaration {
                        leader: None,
                        size: Some(u32::from(ok)),
                    },
                )),
            );
        }
        for (l, start, behavior) in extras {
            engine.add_agent(label(l), NodeId::new(start), behavior);
        }
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(1_000_000).unwrap();
        (0..team_len)
            .map(|idx| {
                let rec = outcome.declarations[idx].1.expect("sweep terminates");
                (rec.declaration.size == Some(1), rec.node, rec.round)
            })
            .collect()
    }

    #[test]
    fn lone_pair_passes_and_returns_to_start() {
        let sched = ring3_schedule(2);
        let g = generators::ring(3);
        // Agent 2 walks one step (port 0 from node 1 reaches node 0) so both
        // sweep together from node 0.
        let results = run_sweep(&g, &sched, &[(1, 0, vec![]), (2, 1, vec![0])], vec![]);
        for (ok, node, _) in &results {
            assert!(*ok);
            assert_eq!(*node, NodeId::new(0), "sweep ends where it started");
        }
        // Lockstep: identical completion rounds.
        assert_eq!(results[0].2, results[1].2);
    }

    #[test]
    fn parked_stranger_is_found() {
        let sched = ring3_schedule(2);
        let g = generators::ring(3);
        let results = run_sweep(
            &g,
            &sched,
            &[(1, 0, vec![]), (2, 1, vec![0])],
            vec![(9, 2, Box::new(ProcBehavior::declaring(WaitRounds::new(0))))],
        );
        assert!(results.iter().all(|(ok, _, _)| !ok));
    }

    #[test]
    fn duration_fits_schedule_bound() {
        let sched = ring3_schedule(2);
        let g = generators::ring(3);
        let results = run_sweep(&g, &sched, &[(1, 0, vec![]), (2, 1, vec![0])], vec![]);
        // One approach round plus the sweep; must fit the schedule's bound.
        assert!(results[0].2 <= 1 + sched.hypothesis(1).dur_ece);
    }
}
