//! The calibrated duration schedule for `GatherUnknownUpperBound`.
//!
//! The paper pins down explicit constants — slow waits of
//! `7·m_h^{2·m_h^5}` rounds, ball radius `4h·m_h^5`, clean-exploration path
//! length `n_h^5 + 1`, hypothesis budget
//! `T_h = 8·m_h^{2m_h^5}·(3S_h + 2T(BallTraversal(h)))` — chosen as *loose
//! closed forms* for the analysis. The correctness proofs only use the
//! dominance inequalities these values satisfy (see `DESIGN.md` §3.4).
//! [`UnknownSchedule`] computes the smallest values satisfying the same
//! inequalities, by exact recursion over the worst-case durations of our
//! routines; [`paper_slow_wait`] and friends give the paper's formulas for
//! reference (they overflow `u128` for all but `n = 2`, which is precisely
//! why the calibrated schedule exists).
//!
//! Per hypothesis `h` (with `n_h`, `k_h`, `α_h = n_h - 1` the port
//! alphabet):
//!
//! | quantity | value | dominance requirement |
//! |---|---|---|
//! | `r_est`  | `n_h - 1` | EST+ paths reach every node when `n = n_h` |
//! | `t_est`  | `α^r_est · 2·r_est` | fixed EST+ exploration budget |
//! | `l_ece`  | `n_h` | ≥ EST+ stray and ≥ diameter when `n = n_h` |
//! | `sens`   | `dur(StarCheck) + dur(ECE) + dur(GSC)` bounds | Lemma 4.9 |
//! | `w`      | `max_{x<=h} sens(x)` | Lemmas 4.7/4.9 (slow moves) |
//! | `d_main` | `(n_h-1) + max(1, l_ece, r_est)` | Claim 4.1 (main-part stray) |
//! | `r_ball` | `d_main + max(d_main, d_prev) + 1` | Claim 4.1 (ball radius) |
//! | `t_bt`   | `α^r_ball · 2·r_ball · (w+1)` | Lemma 4.3 |
//! | `s`      | `t_bt + Σ_{i<h} t_i` | Lemmas 4.5/4.6 |
//! | `t_h`    | `(2+w) · FP_h` | Lemma 4.5 (exact phase budget) |

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use nochatter_explore::paths::Paths;

use super::enumeration::ConfigEnumeration;

/// Why a schedule could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A duration overflowed `u64` at hypothesis `h` — the run would be
    /// unsimulatable anyway; shorten the enumeration or shrink the
    /// configurations.
    Overflow {
        /// The hypothesis index at which arithmetic overflowed.
        h: usize,
    },
    /// The enumeration is empty.
    EmptyEnumeration,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Overflow { h } => {
                write!(f, "schedule duration overflowed u64 at hypothesis {h}")
            }
            ScheduleError::EmptyEnumeration => write!(f, "enumeration has no configurations"),
        }
    }
}

impl Error for ScheduleError {}

/// All per-hypothesis derived quantities; see the module-level
/// documentation above for the calibration constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HypothesisSchedule {
    /// `n_h`: the hypothetical graph size.
    pub n: u32,
    /// `k_h`: the hypothetical number of agents.
    pub k: u32,
    /// `α_h = n_h - 1`: the port alphabet size for path enumerations.
    pub alpha: u32,
    /// EST+ path length (`n_h - 1`).
    pub r_est: u32,
    /// `T(EST(n_h))`: the fixed budget of the EST+ exploration phase; the
    /// full EST+ lasts `2·t_est`.
    pub t_est: u64,
    /// `EnsureCleanExploration` path length.
    pub l_ece: u32,
    /// Worst-case duration of `StarCheck`.
    pub dur_sc: u64,
    /// Worst-case duration of `EnsureCleanExploration`.
    pub dur_ece: u64,
    /// Exact duration of `GraphSizeCheck` (`2·k_h·t_est`).
    pub dur_gsc: u64,
    /// The sensitive-window bound `dur_sc + dur_ece + dur_gsc`.
    pub sens: u64,
    /// The slow wait `w_h` inserted before every slow move.
    pub w: u64,
    /// Maximum distance from the phase start node reachable in the main
    /// part.
    pub d_main: u32,
    /// `BallTraversal` path length (the ball radius).
    pub r_ball: u32,
    /// Worst-case duration of `BallTraversal(h)`.
    pub t_bt: u64,
    /// `S_h`: `t_bt + Σ_{i<h} t_i`.
    pub s: u64,
    /// `T_h`: the exact round budget of `Hypothesis(h)`.
    pub t_h: u64,
}

/// The precomputed schedule over an enumeration prefix, shared by all
/// agents.
#[derive(Clone, Debug)]
pub struct UnknownSchedule {
    enumeration: Arc<dyn ConfigEnumeration>,
    per: Vec<HypothesisSchedule>,
}

impl UnknownSchedule {
    /// Computes the schedule for every hypothesis in the enumeration.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Overflow`] if any duration exceeds `u64` —
    /// unavoidable eventually (the algorithm is exponential by design); the
    /// horizon must be chosen so the true configuration appears before the
    /// blow-up.
    pub fn new(enumeration: Arc<dyn ConfigEnumeration>) -> Result<Self, ScheduleError> {
        if enumeration.is_empty() {
            return Err(ScheduleError::EmptyEnumeration);
        }
        let mut per: Vec<HypothesisSchedule> = Vec::with_capacity(enumeration.len());
        let mut sum_t: u64 = 0;
        let mut w_prev: u64 = 0;
        let mut d_prev: u32 = 0;
        for h in 1..=enumeration.len() {
            let cfg = enumeration.get(h);
            let hs = Self::for_hypothesis(
                cfg.size() as u32,
                cfg.agent_count() as u32,
                sum_t,
                w_prev,
                d_prev,
            )
            .ok_or(ScheduleError::Overflow { h })?;
            sum_t = sum_t
                .checked_add(hs.t_h)
                .ok_or(ScheduleError::Overflow { h })?;
            w_prev = hs.w;
            d_prev = d_prev.max(hs.r_ball).max(hs.d_main);
            per.push(hs);
        }
        Ok(UnknownSchedule { enumeration, per })
    }

    fn for_hypothesis(
        n: u32,
        k: u32,
        sum_t_before: u64,
        w_prev: u64,
        d_prev: u32,
    ) -> Option<HypothesisSchedule> {
        let alpha = n - 1;
        let r_est = n - 1;
        let t_est = Paths::count(alpha, r_est)?.checked_mul(2 * u64::from(r_est))?;
        let l_ece = n;
        let dur_sc = 4u64 * u64::from(n - 1) * u64::from(k);
        let dur_ece = 2u64
            .checked_mul(Paths::count(alpha, l_ece)?)?
            .checked_mul(2 * u64::from(l_ece))?;
        let dur_gsc = 2u64.checked_mul(u64::from(k))?.checked_mul(t_est)?;
        let sens = dur_sc.checked_add(dur_ece)?.checked_add(dur_gsc)?;
        let w = w_prev.max(sens);
        let d_main = (n - 1) + 1u32.max(l_ece).max(r_est);
        let r_ball = d_main + d_main.max(d_prev) + 1;
        let t_bt = Paths::count(alpha, r_ball)?
            .checked_mul(2 * u64::from(r_ball))?
            .checked_mul(w.checked_add(1)?)?;
        let s = t_bt.checked_add(sum_t_before)?;
        // First-part bound: ball traversal + line-4 wait + MoveToCentralNode
        // (path + two waiting windows of S+n) + the sensitive window.
        let fp = t_bt
            .checked_add(s)?
            .checked_add(u64::from(n - 1))?
            .checked_add(2u64.checked_mul(s.checked_add(u64::from(n))?)?)?
            .checked_add(sens)?;
        // Second part: each first-part move unwound with a slow wait, then
        // padding; (2 + w) · FP dominates FP + FP·(1 + w).
        let t_h = fp.checked_mul(w.checked_add(2)?)?;
        Some(HypothesisSchedule {
            n,
            k,
            alpha,
            r_est,
            t_est,
            l_ece,
            dur_sc,
            dur_ece,
            dur_gsc,
            sens,
            w,
            d_main,
            r_ball,
            t_bt,
            s,
            t_h,
        })
    }

    /// The enumeration this schedule was computed over.
    pub fn enumeration(&self) -> &Arc<dyn ConfigEnumeration> {
        &self.enumeration
    }

    /// How many hypotheses are scheduled.
    pub fn horizon(&self) -> usize {
        self.per.len()
    }

    /// The schedule of hypothesis `h` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn hypothesis(&self, h: usize) -> &HypothesisSchedule {
        assert!(h >= 1 && h <= self.per.len(), "hypothesis out of range");
        &self.per[h - 1]
    }

    /// A safe engine round limit: the sum of all hypothesis budgets plus
    /// slack for the staggered wake-ups.
    pub fn round_limit(&self) -> u64 {
        let total: u64 = self
            .per
            .iter()
            .fold(0u64, |acc, hs| acc.saturating_add(hs.t_h));
        total.saturating_mul(2).saturating_add(1_000)
    }
}

/// The paper's slow-wait formula `7·m^{2·m^5}` in `u128`; `None` on
/// overflow. For `m = 2` this is `7·2^64` — already beyond `u64`, which is
/// why the calibrated schedule exists.
pub fn paper_slow_wait(m: u32) -> Option<u128> {
    let exp = 2u128.checked_mul(u128::from(m).checked_pow(5)?)?;
    let exp32: u32 = exp.try_into().ok()?;
    u128::from(m).checked_pow(exp32)?.checked_mul(7)
}

/// The paper's ball-traversal budget `64·x·m^{7·x·m^5}` in `u128`; `None`
/// on overflow.
pub fn paper_ball_budget(x: u32, m: u32) -> Option<u128> {
    let exp = 7u128
        .checked_mul(u128::from(x))?
        .checked_mul(u128::from(m).checked_pow(5)?)?;
    let exp32: u32 = exp.try_into().ok()?;
    u128::from(m)
        .checked_pow(exp32)?
        .checked_mul(64)?
        .checked_mul(u128::from(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknown::enumeration::SliceEnumeration;
    use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};

    fn cfg(n: u32, labels: &[u64]) -> InitialConfiguration {
        let graph = if n == 2 {
            generators::path(2)
        } else {
            generators::ring(n)
        };
        InitialConfiguration::new(
            graph,
            labels
                .iter()
                .enumerate()
                .map(|(i, &l)| (Label::new(l).unwrap(), NodeId::new(i as u32)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn schedule_satisfies_dominance_inequalities() {
        let omega =
            SliceEnumeration::new(vec![cfg(2, &[1, 2]), cfg(3, &[1, 2]), cfg(3, &[1, 2, 3])]);
        let sched = UnknownSchedule::new(omega).unwrap();
        let mut sum_t = 0u64;
        for h in 1..=sched.horizon() {
            let hs = sched.hypothesis(h);
            // w_h dominates every sensitive window so far (Lemma 4.9).
            for x in 1..=h {
                assert!(hs.w >= sched.hypothesis(x).sens, "w({h}) < sens({x})");
            }
            // S_h = T_bt(h) + sum of previous budgets (Lemma 4.5).
            assert_eq!(hs.s, hs.t_bt + sum_t);
            // T_h dominates the first part plus the slow unwind.
            assert!(hs.t_h >= hs.t_bt + 3 * hs.s + hs.sens);
            // Ball radius covers main-part stray against anything earlier
            // (Claim 4.1).
            assert!(
                hs.r_ball > 2 * hs.d_main || hs.r_ball > hs.d_main + sched.hypothesis(1).r_ball
            );
            sum_t += hs.t_h;
        }
        // Monotonicity of the slow wait.
        for h in 2..=sched.horizon() {
            assert!(sched.hypothesis(h).w >= sched.hypothesis(h - 1).w);
        }
    }

    #[test]
    fn two_node_numbers_are_small() {
        let omega = SliceEnumeration::new(vec![cfg(2, &[1, 2])]);
        let sched = UnknownSchedule::new(omega).unwrap();
        let hs = sched.hypothesis(1);
        assert_eq!(hs.alpha, 1);
        assert_eq!(hs.t_est, 2); // single path of length 1, out and back
        assert_eq!(hs.dur_gsc, 8);
        assert!(
            hs.t_h < 1_000_000,
            "2-node hypothesis stays tiny: {}",
            hs.t_h
        );
    }

    #[test]
    fn calibrated_is_below_paper_values() {
        let omega = SliceEnumeration::new(vec![cfg(2, &[1, 2])]);
        let sched = UnknownSchedule::new(omega).unwrap();
        let hs = sched.hypothesis(1);
        let paper_w = paper_slow_wait(2).expect("7·2^64 fits u128");
        assert!(u128::from(hs.w) <= paper_w);
        // The paper's ball budget 64·x·m^{7xm^5} is 64·2^224 already for
        // m = 2 — beyond even u128, underlining why calibration is needed.
        assert_eq!(paper_ball_budget(1, 2), None);
        assert!(u128::from(hs.t_bt) <= paper_w, "calibrated budget is tiny");
    }

    #[test]
    fn paper_formulas_overflow_beyond_two() {
        // 7·3^486 vastly exceeds u128: the honest reason for calibration.
        assert_eq!(paper_slow_wait(3), None);
        assert!(paper_slow_wait(2).is_some());
    }

    #[test]
    fn empty_enumeration_rejected() {
        let omega = SliceEnumeration::new(vec![]);
        assert_eq!(
            UnknownSchedule::new(omega).unwrap_err(),
            ScheduleError::EmptyEnumeration
        );
    }

    #[test]
    fn round_limit_covers_all_budgets() {
        let omega = SliceEnumeration::new(vec![cfg(2, &[1, 2]), cfg(2, &[2, 1])]);
        let sched = UnknownSchedule::new(omega).unwrap();
        let total: u64 = (1..=2).map(|h| sched.hypothesis(h).t_h).sum();
        assert!(sched.round_limit() > total);
    }
}
