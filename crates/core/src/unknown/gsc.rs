//! `GraphSizeCheck` and `EST+` (paper Algorithm 11 and §4.2): is the real
//! network exactly as large as the hypothesis says?
//!
//! The `k_h` agents take turns: agent of rank `r` explores during slot `r`
//! (an `EST+` execution of exactly `2·T(EST(n_h))` rounds) while the
//! `k_h - 1` others hold still at the central node, *being* the stationary
//! token — the explorer "is with its token exactly in the rounds in which
//! `CurCard > 1`".
//!
//! Our `EST+` (see `DESIGN.md` §3.3) walks every port sequence of length
//! `n_h - 1` over `{0..n_h-2}` with backtracking — a leashed exploration
//! that covers the whole graph whenever the hypothesis size is right — and
//! resolves the paper's boolean contract with the position oracle: *true*
//! iff the walk was clean (token seen exactly at the token node), covered
//! the graph, and the true size equals `n_h`.

use nochatter_explore::paths::Paths;
use nochatter_graph::{NodeId, Port};
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Action, Obs, Poll};

use super::oracle::{EstMode, SharedTracker};
use super::schedule::HypothesisSchedule;

/// The verdict of one agent's `GraphSizeCheck`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GscOutcome {
    /// Algorithm 11's return value `b`.
    pub b: bool,
    /// Whether this agent's `EST+` execution violated cleanliness — the
    /// situation Lemma 4.10 proves unreachable; exposed so tests and the
    /// ablation harness can observe it.
    pub dirty: bool,
}

#[derive(Debug)]
struct EstWalk {
    paths: Paths,
    current: Vec<u32>,
    i: usize,
    entries: Vec<Port>,
    forward: bool,
    pending_entry: bool,
    done: bool,
}

impl EstWalk {
    fn new(alpha: u32, len: u32) -> Self {
        let mut paths = Paths::new(alpha, len);
        let first = paths.next_path().expect("non-empty alphabet").to_vec();
        EstWalk {
            paths,
            current: first,
            i: 0,
            entries: Vec::new(),
            forward: true,
            pending_entry: false,
            done: false,
        }
    }

    /// The next action of the walk (None once the enumeration is finished —
    /// the caller pads with waits).
    fn next_action(&mut self, obs: &Obs) -> Option<Action> {
        if self.pending_entry {
            self.pending_entry = false;
            self.entries.push(
                obs.entry_port
                    .expect("moved last round, entry port is known"),
            );
        }
        loop {
            if self.done {
                return None;
            }
            if self.forward {
                if self.i < self.current.len() && self.current[self.i] < obs.degree {
                    let port = Port::new(self.current[self.i]);
                    self.i += 1;
                    self.pending_entry = true;
                    return Some(Action::TakePort(port));
                }
                self.forward = false;
            } else if let Some(back) = self.entries.pop() {
                return Some(Action::TakePort(back));
            } else {
                match self.paths.next_path() {
                    Some(p) => {
                        self.current.clear();
                        self.current.extend_from_slice(p);
                        self.i = 0;
                        self.forward = true;
                    }
                    None => self.done = true,
                }
            }
        }
    }
}

/// Algorithm 11 as a [`Procedure`]; lasts exactly `2·k_h·T(EST(n_h))`
/// rounds and completes with this agent's [`GscOutcome`].
#[derive(Debug)]
pub struct GraphSizeCheck {
    k: u32,
    rank: u32,
    n_h: u32,
    t_est: u64,
    mode: EstMode,
    tracker: SharedTracker,
    /// The central node, recorded on the first observation.
    v: Option<NodeId>,
    /// Global tick within the procedure: `0 .. 2·k·t_est`.
    tick: u64,
    walk: Option<EstWalk>,
    visited: std::collections::HashSet<NodeId>,
    dirty: bool,
    alpha: u32,
    r_est: u32,
}

impl GraphSizeCheck {
    /// The check for the agent of the given rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= k_h`.
    pub fn new(hs: &HypothesisSchedule, rank: u32, mode: EstMode, tracker: SharedTracker) -> Self {
        assert!(rank < hs.k, "rank must index into the team");
        GraphSizeCheck {
            k: hs.k,
            rank,
            n_h: hs.n,
            t_est: hs.t_est,
            mode,
            tracker,
            v: None,
            tick: 0,
            walk: None,
            visited: std::collections::HashSet::new(),
            dirty: false,
            alpha: hs.alpha,
            r_est: hs.r_est,
        }
    }

    fn decide(&self) -> bool {
        let n_true = self.tracker.borrow().graph().node_count();
        let covered = self.visited.len() == n_true;
        let honest = !self.dirty && covered && n_true == self.n_h as usize;
        match self.mode {
            // A clean, complete exploration learns the exact size; anything
            // else fails validation.
            EstMode::Conservative => honest,
            // When clean, even an adversarial reconstruction is correct; a
            // *dirty* one has been misled by spurious token sightings and
            // believes the nodes it saw are the whole graph.
            EstMode::Adversarial => {
                if self.dirty {
                    self.visited.len() == self.n_h as usize
                } else {
                    honest
                }
            }
        }
    }
}

impl Procedure for GraphSizeCheck {
    type Output = GscOutcome;

    fn poll(&mut self, obs: &Obs) -> Poll<GscOutcome> {
        let v = *self
            .v
            .get_or_insert_with(|| self.tracker.borrow().position());
        let slot_len = 2 * self.t_est;
        let total = slot_len * u64::from(self.k);
        if self.tick >= total {
            return Poll::Complete(GscOutcome {
                b: self.decide(),
                dirty: self.dirty,
            });
        }
        let slot = self.tick / slot_len;
        let my_slot = slot == u64::from(self.rank);
        let action = if my_slot {
            // Cleanliness: "at the token node iff CurCard > 1", for every
            // round of this agent's EST+ window.
            let here = self.tracker.borrow().position();
            self.visited.insert(here);
            let at_v = here == v;
            let token = obs.cur_card > 1;
            if at_v != token {
                self.dirty = true;
            }
            let in_slot = self.tick % slot_len;
            if in_slot < self.t_est {
                let walk = self
                    .walk
                    .get_or_insert_with(|| EstWalk::new(self.alpha, self.r_est));
                walk.next_action(obs).unwrap_or(Action::Wait)
            } else {
                // The verification hold: parked on the token.
                Action::Wait
            }
        } else {
            // Being the token for somebody else's slot.
            Action::Wait
        };
        self.tick += 1;
        Poll::Yield(action)
    }

    fn min_wait(&self) -> u64 {
        // Promise waits only through stretches with no scheduled moves: the
        // remainder of a foreign slot, or of the hold half of our own slot.
        let slot_len = 2 * self.t_est;
        let total = slot_len * u64::from(self.k);
        if self.tick >= total {
            return 0;
        }
        let slot = self.tick / slot_len;
        let in_slot = self.tick % slot_len;
        let quiet_until = if slot == u64::from(self.rank) {
            if in_slot < self.t_est {
                return 0; // walking (or padding — not worth splitting)
            }
            (slot + 1) * slot_len
        } else {
            let my_start = u64::from(self.rank) * slot_len;
            if self.tick < my_start {
                my_start
            } else {
                total
            }
        };
        // The completion poll after `total` is not a wait.
        (quiet_until - self.tick)
            .min(total - self.tick)
            .saturating_sub(u64::from(quiet_until >= total))
    }

    fn note_skipped(&mut self, rounds: u64) {
        self.tick += rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknown::enumeration::SliceEnumeration;
    use crate::unknown::oracle::PositionTracker;
    use crate::unknown::schedule::UnknownSchedule;
    use nochatter_graph::{generators, Graph, InitialConfiguration, Label};
    use nochatter_sim::proc::{ProcBehavior, WaitRounds};
    use nochatter_sim::{AgentBehavior, Declaration, Engine, WakeSchedule};
    use std::sync::Arc;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn cfg(graph: Graph, k: usize) -> InitialConfiguration {
        let agents = (0..k)
            .map(|i| (label(i as u64 + 1), NodeId::new(i as u32)))
            .collect();
        InitialConfiguration::new(graph, agents).unwrap()
    }

    /// Waits (to align with slower teammates), walks to the meeting node,
    /// then runs GSC — so the whole team starts GSC in the same round, as
    /// `MoveToCentralNode` arranges in the full algorithm.
    struct SlotRunner {
        pre_wait: u64,
        walk: Vec<Port>,
        walked: usize,
        gsc: GraphSizeCheck,
        tracker: SharedTracker,
    }

    impl AgentBehavior for SlotRunner {
        fn on_round(&mut self, obs: &Obs) -> nochatter_sim::AgentAct {
            if self.pre_wait > 0 {
                self.pre_wait -= 1;
                return nochatter_sim::AgentAct::Wait;
            }
            if self.walked < self.walk.len() {
                let p = self.walk[self.walked];
                self.walked += 1;
                self.tracker.borrow_mut().apply(p);
                return nochatter_sim::AgentAct::TakePort(p);
            }
            match self.gsc.poll(obs) {
                Poll::Yield(Action::Wait) => nochatter_sim::AgentAct::Wait,
                Poll::Yield(Action::TakePort(p)) => {
                    self.tracker.borrow_mut().apply(p);
                    nochatter_sim::AgentAct::TakePort(p)
                }
                Poll::Complete(out) => nochatter_sim::AgentAct::Declare(Declaration {
                    leader: None,
                    size: Some(u32::from(out.b) + 2 * u32::from(out.dirty)),
                }),
            }
        }
    }

    /// Runs GSC with the whole team walking to node 0 first; returns
    /// (b, dirty, round) per agent.
    fn run_gsc(
        real: &Graph,
        hypo: &InitialConfiguration,
        extras: Vec<(u64, u32, Box<dyn AgentBehavior>)>,
    ) -> Vec<(bool, bool, u64)> {
        let sched = UnknownSchedule::new(SliceEnumeration::new(vec![hypo.clone()])).unwrap();
        let graph = Arc::new(real.clone());
        let mut engine = Engine::new(real);
        let k = hypo.agent_count();
        // Everyone must enter GSC in the same round: pad shorter approach
        // walks with waits up front.
        let walks: Vec<Vec<Port>> = (0..k)
            .map(|rank| {
                nochatter_graph::algo::lex_smallest_shortest_path(
                    real,
                    NodeId::new(rank as u32),
                    NodeId::new(0),
                )
            })
            .collect();
        let longest = walks.iter().map(Vec::len).max().unwrap() as u64;
        for (rank, &(l, _)) in hypo.agents().iter().enumerate() {
            let start = NodeId::new(rank as u32);
            let walk = walks[rank].clone();
            let tracker = PositionTracker::new(Arc::clone(&graph), start);
            engine.add_agent(
                l,
                start,
                Box::new(SlotRunner {
                    pre_wait: longest - walk.len() as u64,
                    walk,
                    walked: 0,
                    gsc: GraphSizeCheck::new(
                        sched.hypothesis(1),
                        rank as u32,
                        EstMode::Conservative,
                        Rc::clone(&tracker),
                    ),
                    tracker,
                }),
            );
        }
        for (l, start, behavior) in extras {
            engine.add_agent(label(l), NodeId::new(start), behavior);
        }
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(10_000_000).unwrap();
        (0..k)
            .map(|idx| {
                let rec = outcome.declarations[idx].1.expect("GSC must terminate");
                let code = rec.declaration.size.unwrap();
                (code & 1 == 1, code & 2 == 2, rec.round)
            })
            .collect()
    }

    use std::rc::Rc;

    #[test]
    fn correct_size_and_clean_run_passes() {
        // Hypothesis: 3-ring with 2 agents; real graph: the same 3-ring.
        // Both agents must report b = true, clean, in the same round.
        let g = generators::ring(3);
        let hypo = cfg(g.clone(), 2);
        let results = run_gsc(&g, &hypo, vec![]);
        let round = results[0].2;
        for (b, dirty, r) in results {
            assert!(b, "correct hypothesis must validate");
            assert!(!dirty, "exploration must be clean");
            assert_eq!(r, round, "slot padding keeps agents in lockstep");
        }
    }

    #[test]
    fn wrong_size_fails() {
        // Hypothesis says 3 nodes; the real ring has 6. The walk cannot
        // cover it; the verdict must be false for everyone.
        let hypo = cfg(generators::ring(3), 2);
        let real = generators::ring(6);
        let results = run_gsc(&real, &hypo, vec![]);
        assert!(results.iter().all(|&(b, _, _)| !b));
    }

    #[test]
    fn stranger_on_the_walk_dirties_the_exploration() {
        // A stray agent parked away from the token node is met mid-walk:
        // cleanliness is violated and the conservative verdict is false,
        // even though size and coverage would match.
        let g = generators::ring(3);
        let hypo = cfg(g.clone(), 2);
        let results = run_gsc(
            &g,
            &hypo,
            vec![(9, 2, Box::new(ProcBehavior::declaring(WaitRounds::new(0))))],
        );
        assert!(results.iter().any(|&(_, dirty, _)| dirty));
        assert!(results.iter().all(|&(b, _, _)| !b));
    }

    #[test]
    fn duration_is_2k_t_est() {
        let g = generators::ring(3);
        let hypo = cfg(g.clone(), 2);
        let sched = UnknownSchedule::new(SliceEnumeration::new(vec![hypo.clone()])).unwrap();
        let results = run_gsc(&g, &hypo, vec![]);
        // One alignment round (the longest approach walk) plus exactly
        // 2 * k * t_est rounds of slots.
        let expected = 1 + 2 * 2 * sched.hypothesis(1).t_est;
        assert_eq!(results[0].2, expected);
        assert_eq!(results[1].2, expected);
    }
}
