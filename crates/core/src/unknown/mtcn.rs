//! `MoveToCentralNode` (paper Algorithm 8): walk to where `φ_h` says the
//! smallest label starts, and wait for the full hypothetical team.
//!
//! An agent whose label is absent from `φ_h` fails immediately. Otherwise
//! it follows `path_h(L)` — the lexicographically smallest shortest path in
//! the *hypothetical* map — failing if a port is missing in the real
//! network. Arrived, it waits up to `S_h + n_h` rounds for `CurCard` to hit
//! `k_h`, then holds another `S_h + n_h` rounds and re-checks: only a group
//! of exactly the hypothesized size that stays intact passes.

use nochatter_graph::{InitialConfiguration, Label};
use nochatter_sim::proc::{Procedure, WaitRounds};
use nochatter_sim::{Action, Obs, Poll};

use super::schedule::HypothesisSchedule;

#[derive(Debug)]
enum Stage {
    /// Following `path_h(L)`; the index of the next port.
    Path(usize),
    /// Lines 11-15: bounded wait for `CurCard == k_h`.
    WaitForTeam(u64),
    /// Lines 16-20: the confirmation hold.
    Hold(WaitRounds),
    /// Final check on the observation after the hold.
    FinalCheck,
    Failed,
}

/// Algorithm 8 as a [`Procedure`]; completes with whether the agent is
/// confident it stands with exactly the hypothesized team at the central
/// node.
#[derive(Debug)]
pub struct MoveToCentralNode {
    path: Vec<nochatter_graph::Port>,
    k: u32,
    /// `S_h + n_h`, the two waiting windows.
    window: u64,
    stage: Stage,
}

impl MoveToCentralNode {
    /// The walk prescribed by `φ_h` for `label`.
    pub fn new(cfg: &InitialConfiguration, hs: &HypothesisSchedule, label: Label) -> Self {
        let stage = if cfg.contains_label(label) {
            Stage::Path(0)
        } else {
            // Line 3: no node labeled L in φ_h — fail without moving.
            Stage::Failed
        };
        MoveToCentralNode {
            path: cfg.path_to_central(label).unwrap_or_default(),
            k: cfg.agent_count() as u32,
            window: hs.s + u64::from(hs.n),
            stage,
        }
    }
}

impl Procedure for MoveToCentralNode {
    type Output = bool;

    fn poll(&mut self, obs: &Obs) -> Poll<bool> {
        loop {
            match &mut self.stage {
                Stage::Path(i) => {
                    if *i >= self.path.len() {
                        self.stage = Stage::WaitForTeam(0);
                        continue;
                    }
                    let port = self.path[*i];
                    if port.number() >= obs.degree {
                        // Line 6: the hypothetical path does not exist here.
                        self.stage = Stage::Failed;
                        continue;
                    }
                    *i += 1;
                    return Poll::Yield(Action::TakePort(port));
                }
                Stage::WaitForTeam(j) => {
                    if obs.cur_card == self.k {
                        self.stage = Stage::Hold(WaitRounds::new(self.window));
                        continue;
                    }
                    if *j >= self.window {
                        self.stage = Stage::Failed;
                        continue;
                    }
                    *j += 1;
                    return Poll::Yield(Action::Wait);
                }
                Stage::Hold(w) => match w.poll(obs) {
                    Poll::Yield(a) => return Poll::Yield(a),
                    Poll::Complete(()) => {
                        self.stage = Stage::FinalCheck;
                    }
                },
                Stage::FinalCheck => {
                    return Poll::Complete(obs.cur_card == self.k);
                }
                Stage::Failed => return Poll::Complete(false),
            }
        }
    }

    fn min_wait(&self) -> u64 {
        match &self.stage {
            Stage::Hold(w) => w.min_wait(),
            // WaitForTeam depends on CurCard: under identical observations
            // it keeps waiting until the budget runs out; the final
            // completion poll is not a wait.
            Stage::WaitForTeam(j) => self.window.saturating_sub(*j).saturating_sub(1),
            _ => 0,
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        match &mut self.stage {
            Stage::Hold(w) => w.note_skipped(rounds),
            Stage::WaitForTeam(j) => *j += rounds,
            _ => debug_assert_eq!(rounds, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknown::enumeration::SliceEnumeration;
    use crate::unknown::schedule::UnknownSchedule;
    use nochatter_graph::{generators, NodeId};
    use nochatter_sim::proc::ProcBehavior;
    use nochatter_sim::{Declaration, Engine, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn ring_cfg() -> InitialConfiguration {
        InitialConfiguration::new(
            generators::ring(3),
            vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(2))],
        )
        .unwrap()
    }

    fn run_pair(cfg: &InitialConfiguration, real: &nochatter_graph::Graph) -> Vec<(bool, NodeId)> {
        let sched = UnknownSchedule::new(SliceEnumeration::new(vec![cfg.clone()])).unwrap();
        let mut engine = Engine::new(real);
        for &(l, start) in cfg.agents() {
            engine.add_agent(
                l,
                start,
                Box::new(ProcBehavior::mapping(
                    MoveToCentralNode::new(cfg, sched.hypothesis(1), l),
                    |ok| Declaration {
                        leader: None,
                        size: Some(u32::from(ok)),
                    },
                )),
            );
        }
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(100_000_000).unwrap();
        assert!(outcome.all_declared());
        outcome
            .declarations
            .iter()
            .map(|(_, r)| {
                let rec = r.unwrap();
                (rec.declaration.size == Some(1), rec.node)
            })
            .collect()
    }

    #[test]
    fn true_hypothesis_gathers_team_at_central_node() {
        let cfg = ring_cfg();
        let results = run_pair(&cfg, &cfg.graph().clone());
        let central = cfg.central_node();
        for (ok, node) in results {
            assert!(ok, "both agents must confirm the team");
            assert_eq!(node, central);
        }
    }

    #[test]
    fn absent_label_fails_without_moving() {
        let cfg = ring_cfg();
        let sched = UnknownSchedule::new(SliceEnumeration::new(vec![cfg.clone()])).unwrap();
        let mut proc_ = MoveToCentralNode::new(&cfg, sched.hypothesis(1), label(99));
        let obs = Obs::synthetic(0, 2, 1, None);
        assert_eq!(proc_.poll(&obs), Poll::Complete(false));
    }

    #[test]
    fn missing_port_fails() {
        // Hypothesis: 3-ring (agent 2 walks 1 step). Real graph: path(3)
        // rearranged so the hypothesized port does not exist at a leaf.
        let cfg = ring_cfg();
        let real = generators::path(3);
        // Agent at node 2 of path(3) has degree 1; path_h(2) on the ring
        // starts with a port that may not exist, or the walk ends at the
        // wrong place and the team never shows: either way both fail.
        let results = run_pair(&cfg, &real);
        assert!(results.iter().any(|(ok, _)| !ok));
    }

    #[test]
    fn lone_agent_times_out() {
        // Real network has the two agents far apart on a bigger ring than
        // hypothesized; the central-node wait must expire, not hang.
        let cfg = ring_cfg();
        let real = generators::ring(6);
        let sched = UnknownSchedule::new(SliceEnumeration::new(vec![cfg.clone()])).unwrap();
        let mut engine = Engine::new(&real);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(
                MoveToCentralNode::new(&cfg, sched.hypothesis(1), label(1)),
                |ok| Declaration {
                    leader: None,
                    size: Some(u32::from(ok)),
                },
            )),
        );
        engine.add_agent(
            label(2),
            NodeId::new(3),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        let outcome = engine.run(100_000_000).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(
            outcome.declarations[0].1.unwrap().declaration.size,
            Some(0),
            "agent must give up after the bounded wait"
        );
    }
}
