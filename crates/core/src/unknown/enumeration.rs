//! Enumerations of initial configurations — the `Ω = (φ_1, φ_2, ...)` of
//! paper §4.2.
//!
//! The unknown-upper-bound algorithm tests hypotheses "the initial
//! configuration is `φ_h`" for `h = 1, 2, 3, ...` against a fixed recursive
//! enumeration of all initial configurations, shared by every agent. The
//! algorithm is agnostic to *which* enumeration is used; what matters is
//! that it is fixed, deterministic and eventually contains the true
//! configuration.
//!
//! Two implementations:
//!
//! * [`SliceEnumeration`] — an explicit finite prefix, which is what tests
//!   and benchmarks use so the true configuration sits at a controlled
//!   index (the faithful dovetailed enumeration puts interesting
//!   configurations astronomically deep, and the algorithm's running time
//!   is exponential in the index — see `DESIGN.md` §3.5);
//! * [`ExhaustiveEnumeration`] — a genuine enumeration of *every*
//!   configuration up to a size and label horizon, ordered by (size, graph,
//!   agents, labels), demonstrating the faithful construction.

use std::fmt;
use std::sync::Arc;

use nochatter_graph::{enumerate, InitialConfiguration, Label, NodeId};

/// A fixed, shared enumeration of initial configurations (1-based, as in
/// the paper).
pub trait ConfigEnumeration: fmt::Debug + Send + Sync {
    /// How many configurations are materialized. The paper's enumeration is
    /// infinite; a finite horizon simply bounds how many hypotheses can be
    /// processed (the algorithm must find the true configuration within the
    /// horizon).
    fn len(&self) -> usize;

    /// Whether the enumeration is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `h`-th configuration `φ_h`.
    ///
    /// # Panics
    ///
    /// Panics if `h == 0` or `h > len()`.
    fn get(&self, h: usize) -> &InitialConfiguration;
}

/// An explicit finite prefix of an enumeration.
#[derive(Clone, Debug)]
pub struct SliceEnumeration {
    configs: Vec<InitialConfiguration>,
}

impl SliceEnumeration {
    /// Wraps the given configurations in order.
    pub fn new(configs: Vec<InitialConfiguration>) -> Arc<Self> {
        Arc::new(SliceEnumeration { configs })
    }
}

impl ConfigEnumeration for SliceEnumeration {
    fn len(&self) -> usize {
        self.configs.len()
    }

    fn get(&self, h: usize) -> &InitialConfiguration {
        assert!(h >= 1 && h <= self.configs.len(), "hypothesis out of range");
        &self.configs[h - 1]
    }
}

/// The faithful enumeration: every initial configuration over every
/// connected port-labeled graph of size `2..=max_n`, every agent subset of
/// size `>= 2`, and every assignment of distinct labels from `1..=max_label`
/// — ordered by (size, graph index, start-node set, label assignment).
///
/// # Example
///
/// ```
/// use nochatter_core::unknown::{ConfigEnumeration, ExhaustiveEnumeration};
///
/// let omega = ExhaustiveEnumeration::new(2, 2);
/// // One 2-node graph, one node pair, labels {1,2} in 2 orders.
/// assert_eq!(omega.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ExhaustiveEnumeration {
    configs: Vec<InitialConfiguration>,
}

impl ExhaustiveEnumeration {
    /// Materializes the enumeration up to the given horizons.
    ///
    /// # Panics
    ///
    /// Panics if `max_n < 2`, `max_n` exceeds the exhaustive-enumeration
    /// cap, or `max_label < 2`.
    pub fn new(max_n: u32, max_label: u64) -> Arc<Self> {
        assert!(max_n >= 2, "configurations need at least 2 nodes");
        assert!(max_label >= 2, "need at least two distinct labels");
        let mut configs = Vec::new();
        for n in 2..=max_n {
            for graph in enumerate::connected_graphs(n) {
                for subset_mask in 1u32..(1 << n) {
                    let nodes: Vec<NodeId> = (0..n)
                        .filter(|&v| subset_mask >> v & 1 == 1)
                        .map(NodeId::new)
                        .collect();
                    if nodes.len() < 2 {
                        continue;
                    }
                    let mut assignment = vec![0u64; nodes.len()];
                    enumerate_labels(&mut assignment, 0, max_label, &mut |labels| {
                        let agents: Vec<(Label, NodeId)> = labels
                            .iter()
                            .zip(&nodes)
                            .map(|(&l, &v)| (Label::new(l).expect("positive"), v))
                            .collect();
                        configs.push(
                            InitialConfiguration::new(graph.clone(), agents)
                                .expect("constructed configuration is valid"),
                        );
                    });
                }
            }
        }
        Arc::new(ExhaustiveEnumeration { configs })
    }
}

/// Enumerates assignments of distinct labels `1..=max` to positions
/// `idx..`, in lexicographic order, invoking `f` on each complete one.
fn enumerate_labels(assignment: &mut Vec<u64>, idx: usize, max: u64, f: &mut impl FnMut(&[u64])) {
    if idx == assignment.len() {
        f(assignment);
        return;
    }
    for l in 1..=max {
        if assignment[..idx].contains(&l) {
            continue;
        }
        assignment[idx] = l;
        enumerate_labels(assignment, idx + 1, max, f);
    }
}

impl ConfigEnumeration for ExhaustiveEnumeration {
    fn len(&self) -> usize {
        self.configs.len()
    }

    fn get(&self, h: usize) -> &InitialConfiguration {
        assert!(h >= 1 && h <= self.configs.len(), "hypothesis out of range");
        &self.configs[h - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::generators;

    #[test]
    fn slice_is_one_based() {
        let cfg = InitialConfiguration::new(
            generators::path(2),
            vec![
                (Label::new(1).unwrap(), NodeId::new(0)),
                (Label::new(2).unwrap(), NodeId::new(1)),
            ],
        )
        .unwrap();
        let omega = SliceEnumeration::new(vec![cfg.clone()]);
        assert_eq!(omega.len(), 1);
        assert_eq!(omega.get(1), &cfg);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_zero_index() {
        let cfg = InitialConfiguration::new(
            generators::path(2),
            vec![
                (Label::new(1).unwrap(), NodeId::new(0)),
                (Label::new(2).unwrap(), NodeId::new(1)),
            ],
        )
        .unwrap();
        SliceEnumeration::new(vec![cfg]).get(0);
    }

    #[test]
    fn exhaustive_counts_two_nodes() {
        // n=2: 1 graph, 1 node pair, ordered label pairs from {1,2,3}:
        // 3 * 2 = 6 configurations.
        let omega = ExhaustiveEnumeration::new(2, 3);
        assert_eq!(omega.len(), 6);
        for h in 1..=omega.len() {
            assert_eq!(omega.get(h).size(), 2);
            assert_eq!(omega.get(h).agent_count(), 2);
        }
    }

    #[test]
    fn exhaustive_contains_given_configuration() {
        let omega = ExhaustiveEnumeration::new(3, 2);
        // Find a 3-ring configuration with labels {1,2}: must exist.
        let found = (1..=omega.len()).any(|h| {
            let c = omega.get(h);
            c.size() == 3 && c.graph().edge_count() == 3 && c.agent_count() == 2
        });
        assert!(found);
        // And all sizes 2..=3 appear.
        assert!((1..=omega.len()).any(|h| omega.get(h).size() == 2));
    }

    #[test]
    fn exhaustive_is_deterministic() {
        let a = ExhaustiveEnumeration::new(3, 2);
        let b = ExhaustiveEnumeration::new(3, 2);
        assert_eq!(a.len(), b.len());
        for h in 1..=a.len() {
            assert_eq!(a.get(h), b.get(h));
        }
    }
}
