//! Campaign-level determinism: a campaign run with 1 worker equals the
//! same campaign with N workers, byte for byte, over randomly drawn
//! campaign specifications.

use proptest::prelude::*;

use nochatter_core::CommMode;
use nochatter_graph::dynamic::{DynamicRing, SeededEdgeFailure};
use nochatter_graph::generators::Family;
use nochatter_lab::{run_campaign, Campaign, Matrix, PayloadScheme, ScenarioKind};
use nochatter_sim::{CrashPoint, FaultSpec, TopologySpec, WakeSchedule};

fn matrix_strategy() -> impl Strategy<Value = (Matrix, u64)> {
    (
        (
            proptest::collection::vec(0usize..6, 1..3),
            proptest::collection::vec(4u32..7, 1..3),
        ),
        0u64..3,
        (any::<bool>(), any::<bool>()),
        (any::<bool>(), any::<bool>()),
        1u64..3,
        any::<u64>(),
    )
        .prop_map(
            |((families, sizes), sched, (talking, dynamic), (gossip, faulty), reps, seed)| {
                let all = [
                    Family::Ring,
                    Family::Path,
                    Family::Star,
                    Family::Grid,
                    Family::RandomTree,
                    Family::RandomConnected,
                ];
                let mut fams: Vec<Family> = families.iter().map(|&i| all[i]).collect();
                fams.sort_by_key(|f| f.name());
                fams.dedup();
                let mut sizes = sizes;
                sizes.sort_unstable();
                sizes.dedup();
                let schedules = match sched {
                    0 => vec![WakeSchedule::Simultaneous],
                    1 => vec![WakeSchedule::FirstOnly],
                    _ => vec![
                        WakeSchedule::Simultaneous,
                        WakeSchedule::Staggered { gap: 4 },
                    ],
                };
                let modes = if talking {
                    vec![CommMode::Silent, CommMode::Talking]
                } else {
                    vec![CommMode::Silent]
                };
                let kinds = if gossip {
                    vec![
                        ScenarioKind::Gather,
                        ScenarioKind::Gossip(PayloadScheme::Uniform { len: 2 }),
                    ]
                } else {
                    vec![ScenarioKind::Gather]
                };
                let topologies = if dynamic {
                    vec![
                        TopologySpec::Static,
                        TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.2, seed: 7 }),
                        TopologySpec::Ring(DynamicRing { seed: 7 }),
                    ]
                } else {
                    vec![TopologySpec::Static]
                };
                let faults = if faulty {
                    vec![
                        FaultSpec::None,
                        FaultSpec::CrashAt(vec![CrashPoint {
                            label: nochatter_graph::Label::new(3).unwrap(),
                            round: 40,
                        }]),
                        FaultSpec::SeededCrash {
                            p: 0.001,
                            seed: 5,
                            max_crashes: 1,
                        },
                    ]
                } else {
                    vec![FaultSpec::None]
                };
                (
                    Matrix {
                        families: fams,
                        sizes,
                        teams: vec![vec![2, 3]],
                        schedules,
                        topologies,
                        faults,
                        modes,
                        kinds,
                        reps,
                        shuffled_ports: false,
                    },
                    seed,
                )
            },
        )
}

fn build(matrix: &Matrix, seed: u64) -> Campaign {
    matrix
        .campaign("prop", seed)
        .expect("drawn matrices are well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn one_worker_equals_many((matrix, seed) in matrix_strategy()) {
        // 1 worker runs inline on the caller's thread; 5 and 8 go through
        // the work-stealing scheduler with different chunk seeds and steal
        // schedules. All must agree byte for byte.
        let campaign = build(&matrix, seed);
        let one = run_campaign(&campaign, 1);
        for workers in [5, 8] {
            let many = run_campaign(&campaign, workers);
            prop_assert_eq!(&one.records, &many.records);
            prop_assert_eq!(one.to_json(), many.to_json());
            prop_assert_eq!(one.to_csv(), many.to_csv());
        }
    }

    #[test]
    fn rebuilding_the_campaign_changes_nothing((matrix, seed) in matrix_strategy()) {
        // The spec is the source of truth: expanding the same matrix twice
        // and running on different worker counts still agrees.
        let a = run_campaign(&build(&matrix, seed), 3);
        let b = run_campaign(&build(&matrix, seed), 2);
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
