//! Differential testing of the crash-fault scenario axis: the FR1 campaign
//! crashes `f ∈ {0, 1, 2}` agents mid-run and compares the silent
//! algorithm against the talking baseline on identical instances.
//!
//! Every faulty cell shares its derived seed — and with it the base ring
//! and the exploration setup — with a fault-free twin in the same report,
//! so these are comparisons of identical instances under different
//! adversaries. What the suite pins:
//!
//! * the fault-free control column is untouched by the new axis, byte for
//!   byte: the records of a faults-`[None]`-only campaign are identical to
//!   the fault-free records inside the full FR1 campaign;
//! * crash counts are surfaced in all three report formats, and only on
//!   faulty records (the same serialization rule that keeps the golden
//!   smoke report byte-identical);
//! * failures under the adversary are recorded as validation errors —
//!   never engine errors, never panics of the harness. The observed split
//!   is itself the finding: the talking baseline survives every FR1 crash
//!   cell (labels are read instantaneously, a dead body's label included),
//!   while the silent algorithm — whose termination rule waits for a
//!   `CurCard` that the dead body can no longer move — fails honestly.

use std::sync::OnceLock;

use nochatter_lab::{presets, run_campaign, CampaignReport, Matrix};
use nochatter_sim::FaultSpec;

fn fr1_report() -> &'static CampaignReport {
    static REPORT: OnceLock<CampaignReport> = OnceLock::new();
    REPORT.get_or_init(|| run_campaign(&presets::fr1_campaign(true), 0))
}

#[test]
fn fault_free_twins_are_byte_identical_to_a_fault_free_only_run() {
    // The same matrix with the fault axis collapsed to `None` must
    // reproduce the fault-free records of the full campaign exactly: the
    // axis adds cells, it never perturbs existing ones (seeds derive from
    // the fault-independent instance sub-key).
    let none_only = Matrix {
        faults: vec![FaultSpec::None],
        ..presets::fr1_matrix(true)
    }
    .campaign("fr1", presets::FR1_SEED)
    .expect("collapsed matrix is well-formed");
    let none_report = run_campaign(&none_only, 0);
    let full = fr1_report();
    let fault_free: Vec<_> = full
        .records
        .iter()
        .filter(|r| r.key.fault == "none")
        .cloned()
        .collect();
    assert_eq!(none_report.records, fault_free);
}

#[test]
fn fault_free_control_column_all_gathers() {
    for r in &fr1_report().records {
        if r.key.fault == "none" {
            assert!(r.ok, "fault-free control {} failed: {}", r.key, r.status);
            assert_eq!(r.crashed_agents, 0, "{} crashed without a fault", r.key);
        }
    }
}

#[test]
fn crashes_never_crash_the_harness_and_failures_are_validation_errors() {
    let report = fr1_report();
    let faulty: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.key.fault != "none")
        .collect();
    assert!(!faulty.is_empty(), "FR1 must contain faulty cells");
    for r in &faulty {
        // The adversary acted: exactly as many crashes as the spec lists.
        let expected = 1 + r.key.fault.matches('+').count() as u32;
        assert_eq!(r.crashed_agents, expected, "{}", r.key);
        // Failures are honest validation errors, never harness faults.
        assert!(
            !r.status.starts_with("engine error") && !r.status.starts_with("unsupported"),
            "{}: {}",
            r.key,
            r.status
        );
        if r.key.mode == "talking" {
            // The talking baseline reads labels instantaneously — a dead
            // body's label included — so its termination rule survives
            // every FR1 crash cell.
            assert!(r.ok, "talking cell {} failed: {}", r.key, r.status);
        } else {
            // The silent algorithm's termination waits for CurCard
            // stability that the dead body permanently poisons: on every
            // FR1 cell the survivors miss their own declaration. Pinning
            // the full split keeps the finding itself under test.
            assert!(!r.ok, "silent cell {} unexpectedly survived", r.key);
            assert!(
                r.status.contains("never declared"),
                "{}: {}",
                r.key,
                r.status
            );
        }
    }
}

#[test]
fn crash_counts_are_surfaced_in_the_reports() {
    let report = fr1_report();
    let json = report.to_json();
    // Faulty records carry the fault fields...
    assert!(json.contains("\"fault\": \"crash3@64\""));
    assert!(json.contains("\"crashed_agents\": 1"));
    assert!(json.contains("\"fault\": \"crash3@64+5@2048\""));
    // ...fault-free records keep the exact pre-fault shape (the rule that
    // keeps the golden smoke report byte-identical).
    for line in json.lines() {
        if line.contains("\"fault\": \"none\"") {
            panic!("fault-free records must not serialize a fault field: {line}");
        }
    }
    // The CSV carries the columns for every row.
    let header = report.to_csv();
    let header = header.lines().next().unwrap();
    assert!(header.contains(",fault,"));
    assert!(header.contains("crashed_agents"));
    // The trajectory aggregates the total.
    let total: u64 = report
        .records
        .iter()
        .map(|r| u64::from(r.crashed_agents))
        .sum();
    assert!(total > 0);
    assert!(report
        .trajectory_json()
        .contains(&format!("\"total_crashed_agents\": {total}")));
}

#[test]
fn faulty_cells_pair_with_their_fault_free_twins() {
    let report = fr1_report();
    let pairs = report.fault_pairs("crash3@64", "none");
    assert!(!pairs.is_empty());
    for (faulty, twin) in &pairs {
        assert_eq!(faulty.seed, twin.seed, "twins share the derived seed");
        assert_eq!(faulty.n_actual, twin.n_actual);
        assert_eq!(twin.crashed_agents, 0);
        // The talking baseline pays no measurable round penalty for the
        // crash on these cells (the body's label still reads instantly);
        // the structural fact worth pinning is just that both twins ran
        // the identical instance and the faulty one recorded its crash.
        assert_eq!(faulty.crashed_agents, 1);
    }
}

#[test]
fn faulty_campaigns_are_deterministic_across_worker_counts() {
    let campaign = presets::fr1_campaign(true);
    let one = run_campaign(&campaign, 1);
    let four = run_campaign(&campaign, 4);
    assert_eq!(one.records, four.records);
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.to_csv(), four.to_csv());
}
