//! Differential testing of the dynamic-graph scenario axis: the gathering
//! algorithm on 1-interval-connected dynamic rings (the DR1 campaign, à la
//! *Gathering in Dynamic Rings*, Di Luna et al.) against its static twins.
//!
//! Every dynamic cell shares its derived seed — and with it the base ring
//! and the exploration setup — with a static twin in the same report, so
//! these are comparisons of identical instances under different
//! adversaries. What the suite pins:
//!
//! * the static control column is untouched by the new axis (all cells
//!   gather, zero blocked moves);
//! * gathering **still succeeds** on dynamic rings where the adversary
//!   removes one edge per round — on every talking-mode cell and on a
//!   pinned set of silent-mode cells — and every dynamic cell pays a
//!   positive blocked-move count that the campaign report surfaces;
//! * where the silent algorithm does *not* survive the adversary, the
//!   failure is recorded honestly (a validation error, never a panic or an
//!   engine error) — the paper's timing-based meeting inference is built
//!   for static networks, and the campaign quantifies exactly where that
//!   assumption bites.

use nochatter_lab::{presets, run_campaign, CampaignReport};

fn dr1_report() -> CampaignReport {
    run_campaign(&presets::dr1_campaign(true), 0)
}

#[test]
fn static_twins_are_a_clean_control_column() {
    let report = dr1_report();
    for r in &report.records {
        if r.key.topo == "static" {
            assert!(r.ok, "static control {} failed: {}", r.key, r.status);
            assert_eq!(r.blocked_moves, 0, "{} blocked on a static ring", r.key);
        }
    }
}

#[test]
fn gathering_survives_the_dynamic_ring_adversary() {
    let report = dr1_report();
    let dynamic: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.key.topo.starts_with("dring"))
        .collect();
    assert!(!dynamic.is_empty(), "DR1 must contain dynamic-ring cells");
    let mut silent_ok = 0usize;
    for r in &dynamic {
        // The adversary removes one edge per round, so a full run cannot
        // avoid it: every dynamic cell must have paid blocked moves, and
        // the count must be surfaced in the record.
        assert!(r.blocked_moves > 0, "{} never hit the adversary", r.key);
        if r.key.mode == "talking" {
            // The talking baseline sees labels when agents meet, so its
            // meeting detection does not depend on exact phase timing:
            // it survives the adversary on every DR1 cell.
            assert!(r.ok, "talking cell {} failed: {}", r.key, r.status);
        } else if r.ok {
            silent_ok += 1;
            assert_eq!(r.status, "gathered");
        } else {
            // An honest failure: the run completed and validation named
            // the violated requirement. Never an engine error or a crash.
            assert!(
                !r.status.starts_with("engine error"),
                "{}: {}",
                r.key,
                r.status
            );
        }
    }
    // The silent algorithm — with EXPLO retrying blocked traversals —
    // still gathers on a substantial set of dynamic rings. Pinned floor
    // from the recorded run (7/8 silent cells at the quick sizes would be
    // flaky to pin exactly; at least one is a hard guarantee, and the
    // specific witness below is pinned in full).
    assert!(
        silent_ok >= 1,
        "no silent-mode cell gathered on the dynamic ring"
    );
    // The pinned witness: 3 agents on the 4-ring, first-only wake-up.
    let witness = report
        .record("ring/n4/t3.5.9/wfirst/dring@53710/silent/gather/r0")
        .expect("witness cell exists");
    assert!(
        witness.ok,
        "pinned witness stopped gathering: {}",
        witness.status
    );
    assert!(witness.blocked_moves > 0);
}

#[test]
fn blocked_moves_are_surfaced_in_the_reports() {
    let report = dr1_report();
    let json = report.to_json();
    // Dynamic records carry the dynamism fields...
    assert!(json.contains("\"topo\": \"dring@53710\""));
    assert!(json.contains("\"blocked_moves\": "));
    // ...static records keep the exact pre-dynamism shape (this is the
    // same rule that keeps the golden smoke report byte-identical).
    for line in json.lines() {
        if line.contains("\"topo\": \"static\"") {
            panic!("static records must not serialize a topo field: {line}");
        }
    }
    // The CSV carries the columns for every row.
    let csv = report.to_csv();
    assert!(csv.lines().next().unwrap().contains("topo"));
    assert!(csv.lines().next().unwrap().contains("blocked_moves"));
    // The trajectory aggregates the total.
    let total: u64 = report.records.iter().map(|r| r.blocked_moves).sum();
    assert!(total > 0);
    assert!(report
        .trajectory_json()
        .contains(&format!("\"total_blocked_moves\": {total}")));
}

#[test]
fn dynamic_cells_pair_with_their_static_twins() {
    let report = dr1_report();
    let pairs = report.topo_pairs("dring@53710", "static");
    assert!(!pairs.is_empty());
    for (dynamic, twin) in &pairs {
        assert_eq!(dynamic.seed, twin.seed, "twins share the derived seed");
        assert_eq!(dynamic.n_actual, twin.n_actual);
        assert_eq!(twin.blocked_moves, 0);
    }
    // Deliberately *no* round-count ordering here: a blocked EXPLO shifts
    // the phase alignment between agents, and (exactly as the
    // silent-vs-talking suite documents for the communication axis) the
    // shifted execution sometimes reaches the decisive meeting *earlier*
    // than the unperturbed one — per instance and even in aggregate over
    // the cells where both twins gather, since the silent survivors are a
    // biased sample. The robust differential facts are structural: same
    // seed, same base ring, blocked moves only under the adversary.
}

#[test]
fn dynamic_campaigns_are_deterministic_across_worker_counts() {
    let campaign = presets::dr1_campaign(true);
    let one = run_campaign(&campaign, 1);
    let four = run_campaign(&campaign, 4);
    assert_eq!(one.records, four.records);
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.to_csv(), four.to_csv());
}
