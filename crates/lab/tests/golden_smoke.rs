//! The CI smoke campaign against its checked-in golden report.
//!
//! CI runs the same campaign through the `experiments -- campaign --smoke`
//! CLI and diffs the file; this test enforces the identical contract from
//! inside the test suite, so a drift is caught by `cargo test` before it
//! ever reaches CI.

use nochatter_lab::{presets, run_campaign};

const GOLDEN: &str = include_str!("../golden/campaign_smoke.json");

#[test]
fn smoke_campaign_matches_golden_json() {
    let report = run_campaign(&presets::smoke_campaign(), 4);
    let got = report.to_json();
    assert_eq!(
        got, GOLDEN,
        "smoke campaign drifted from crates/lab/golden/campaign_smoke.json; \
         if the change is intentional, regenerate the golden file with \
         `cargo run -p nochatter-bench --release --bin experiments -- \
         campaign --smoke --out <dir>` and copy <dir>/smoke.json over it"
    );
}

#[test]
fn smoke_campaign_is_all_ok() {
    let report = run_campaign(&presets::smoke_campaign(), 2);
    assert_eq!(report.ok_count(), report.records.len());
    assert_eq!(report.records.len(), 8);
}
