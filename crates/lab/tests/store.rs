//! The content-addressed result store, end to end: golden fingerprint
//! pins (so silent drift fails loudly), the byte-identity contract
//! between uncached, cold-cache and warm-cache campaign runs, the
//! corruption ladder (truncation, bit flips, stale headers, dying-writer
//! garbage — all misses, never errors, never a changed report), resume
//! semantics after a simulated kill, and the hunt's cross-preset cache
//! reuse.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use nochatter_core::CommMode;
use nochatter_graph::generators::Family;
use nochatter_lab::presets::{self, hunt_smoke_spec, hunt_spec};
use nochatter_lab::{
    engine_fingerprint, raw_fingerprint, run_campaign, run_campaign_cached, run_search,
    run_search_cached, scenario_fingerprint, Campaign, CampaignReport, Matrix, Store,
    STORE_FORMAT_VERSION,
};

/// A fresh, empty cache directory under the OS temp dir (no tempdir
/// crate offline). Each test uses its own name so they can run in
/// parallel.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nochatter-store-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn log_path(dir: &Path) -> PathBuf {
    dir.join(format!("store-v{STORE_FORMAT_VERSION}.log"))
}

/// Runs `campaign` against a store opened on `dir`, returning the report
/// and the store's lifetime stats for that run.
fn run_cached(campaign: &Campaign, workers: usize, dir: &Path) -> (CampaignReport, Store) {
    let store = Store::open(dir).expect("cache dir is writable");
    let report = run_campaign_cached(campaign, workers, Some(&store));
    (report, store)
}

fn small_campaign() -> Campaign {
    Matrix {
        families: vec![Family::Ring, Family::Path],
        sizes: vec![4, 5],
        teams: vec![vec![2, 3]],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
    .campaign("store-it", 9)
    .expect("matrix is well-formed")
}

// ---------------------------------------------------------------------------
// Golden fingerprint pins
// ---------------------------------------------------------------------------

/// The raw fingerprint combinator is pinned byte for byte: any change to
/// the FNV constants, the field order or the separators silently
/// invalidates (or worse, silently *shares*) every cache on disk, so
/// drift must fail a test, not a user.
#[test]
fn raw_fingerprint_is_pinned() {
    assert_eq!(
        raw_fingerprint("ring/n4/t2.3/wsimul/silent/gather/r0", 7, 1, 0xDEAD, 0xBEEF),
        0xa896_c418_0925_dcf5
    );
}

/// The behavioral engine fingerprint is pinned. This is the loud-drift
/// tripwire the issue asks for: if the engine's observable semantics
/// change (rounds, moves, traces of the probe scenarios), this value
/// changes, this test fails, and the committer bumps the pin knowingly —
/// at which point every existing cache correctly misses.
#[test]
fn engine_fingerprint_is_pinned() {
    assert_eq!(STORE_FORMAT_VERSION, 2);
    // Pinned under the default sparse round loop; the dense loop
    // (`NOCHATTER_DENSE_LOOP=1`) fingerprints differently by design —
    // the probes' `polled_agent_rounds` differ — so the two modes can
    // never share cache entries.
    assert_eq!(engine_fingerprint(), 0x00bb_a0fc_75ed_a404);
}

/// A full scenario fingerprint (key + seed + content + versions) is
/// pinned on a fixed smoke-campaign cell.
#[test]
fn scenario_fingerprint_is_pinned() {
    let campaign = presets::smoke_campaign();
    let s = &campaign.scenarios()[0];
    assert_eq!(s.key.canonical(), "path/n4/t2.3/wfirst/silent/gather/r0");
    assert_eq!(scenario_fingerprint(s), 0xdd25_ad03_fe9d_da01);
}

// ---------------------------------------------------------------------------
// Cold / warm byte identity and resume
// ---------------------------------------------------------------------------

/// The core contract: uncached, cold-cache and warm-cache runs produce
/// byte-identical JSON and CSV; the cold run misses everything, the warm
/// run hits everything and executes nothing.
#[test]
fn cold_then_warm_runs_are_byte_identical_and_fully_cached() {
    let campaign = small_campaign();
    let dir = fresh_dir("cold-warm");
    let baseline = run_campaign(&campaign, 2);
    assert!(baseline.cache.is_none());

    let (cold, cold_store) = run_cached(&campaign, 2, &dir);
    let cold_cache = cold.cache.expect("cached runs carry cache stats");
    assert_eq!(cold_cache.hits, 0);
    assert_eq!(cold_cache.misses, campaign.len() as u64);
    assert_eq!(cold.to_json(), baseline.to_json());
    assert_eq!(cold.to_csv(), baseline.to_csv());
    assert_eq!(cold_store.stats().write_errors, 0);

    let (warm, warm_store) = run_cached(&campaign, 3, &dir);
    let warm_cache = warm.cache.expect("cached runs carry cache stats");
    assert_eq!(warm_cache.misses, 0);
    assert_eq!(warm_cache.hits, campaign.len() as u64);
    assert_eq!(warm.to_json(), baseline.to_json());
    assert_eq!(warm.to_csv(), baseline.to_csv());
    assert_eq!(warm_store.stats().corrupt_entries, 0);

    let _ = fs::remove_dir_all(&dir);
}

/// Killing a campaign mid-run leaves a prefix of entries behind; the
/// next run resumes from them. Simulated by truncating the log at an
/// arbitrary byte offset — harsher than a real kill, which only ever
/// loses a partial tail entry.
#[test]
fn a_killed_run_resumes_from_the_surviving_prefix() {
    let campaign = small_campaign();
    let dir = fresh_dir("resume");
    let baseline = run_campaign(&campaign, 1);
    let (_, _) = run_cached(&campaign, 2, &dir);

    // "Kill" the writer mid-entry: keep roughly the first half of the log.
    let log = log_path(&dir);
    let bytes = fs::read(&log).expect("log exists after a cached run");
    fs::write(&log, &bytes[..bytes.len() / 2]).expect("truncate");

    let (resumed, _) = run_cached(&campaign, 2, &dir);
    let cache = resumed.cache.expect("cached runs carry cache stats");
    assert!(cache.hits >= 1, "a prefix of entries must survive");
    assert!(cache.misses >= 1, "the lost tail must re-execute");
    assert_eq!(resumed.to_json(), baseline.to_json());

    // The resumed run wrote the missing records back: fully warm now.
    let (healed, _) = run_cached(&campaign, 1, &dir);
    assert_eq!(healed.cache.expect("cache stats").misses, 0);
    assert_eq!(healed.to_json(), baseline.to_json());

    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Corruption ladder: every failure mode degrades to misses
// ---------------------------------------------------------------------------

/// A truncated log (partial tail entry) degrades the tail to misses and
/// leaves the campaign result unchanged.
#[test]
fn a_truncated_log_degrades_to_misses() {
    let campaign = small_campaign();
    let dir = fresh_dir("truncated");
    let baseline = run_campaign(&campaign, 1);
    run_cached(&campaign, 2, &dir);

    let log = log_path(&dir);
    let bytes = fs::read(&log).expect("log exists");
    fs::write(&log, &bytes[..bytes.len() - 5]).expect("truncate");

    let (report, store) = run_cached(&campaign, 2, &dir);
    let cache = report.cache.expect("cache stats");
    assert!(cache.misses >= 1, "the truncated entry is a miss");
    assert!(store.stats().corrupt_entries >= 1);
    assert_eq!(report.to_json(), baseline.to_json());
    assert_eq!(report.to_csv(), baseline.to_csv());

    let _ = fs::remove_dir_all(&dir);
}

/// A bit flip inside an entry's payload fails the checksum: that entry
/// becomes a miss, later entries are recovered by magic resync, and the
/// campaign result is unchanged.
#[test]
fn a_bit_flipped_entry_is_a_miss_not_an_error() {
    let campaign = small_campaign();
    let dir = fresh_dir("bitflip");
    let baseline = run_campaign(&campaign, 1);
    run_cached(&campaign, 2, &dir);

    let log = log_path(&dir);
    let mut bytes = fs::read(&log).expect("log exists");
    // 12-byte file header + 24-byte entry header + 6: inside the first
    // entry's payload.
    bytes[42] ^= 0x40;
    fs::write(&log, &bytes).expect("rewrite");

    let (report, store) = run_cached(&campaign, 2, &dir);
    let cache = report.cache.expect("cache stats");
    assert!(cache.misses >= 1, "the flipped entry is a miss");
    assert!(
        cache.hits >= 1,
        "entries after the corrupt one are recovered by resync"
    );
    assert!(store.stats().corrupt_entries >= 1);
    assert_eq!(report.to_json(), baseline.to_json());

    let _ = fs::remove_dir_all(&dir);
}

/// A log whose header carries a stale (or mangled) format version is
/// never read: the store restarts it afresh and every lookup misses —
/// exactly as if `STORE_FORMAT_VERSION` had been bumped under an old
/// cache directory.
#[test]
fn a_stale_format_version_restarts_the_log() {
    let campaign = small_campaign();
    let dir = fresh_dir("stale-version");
    let baseline = run_campaign(&campaign, 1);
    run_cached(&campaign, 2, &dir);

    let log = log_path(&dir);
    let mut bytes = fs::read(&log).expect("log exists");
    // Mangle the version field of the 12-byte header.
    bytes[8] ^= 0xFF;
    fs::write(&log, &bytes).expect("rewrite");

    let (report, _) = run_cached(&campaign, 2, &dir);
    let cache = report.cache.expect("cache stats");
    assert_eq!(cache.hits, 0, "a stale-format log is all misses");
    assert_eq!(cache.misses, campaign.len() as u64);
    assert_eq!(report.to_json(), baseline.to_json());

    // The restarted log was re-populated by write-through.
    let (warm, _) = run_cached(&campaign, 1, &dir);
    assert_eq!(warm.cache.expect("cache stats").misses, 0);

    let _ = fs::remove_dir_all(&dir);
}

/// Leftovers of a dying concurrent writer — a partial garbage tail
/// followed by a duplicated whole entry — are skipped (garbage) or
/// harmlessly re-indexed (duplicate): all real entries still hit and the
/// report is unchanged.
#[test]
fn concurrent_writer_leftovers_degrade_gracefully() {
    let campaign = small_campaign();
    let dir = fresh_dir("leftovers");
    let baseline = run_campaign(&campaign, 1);
    run_cached(&campaign, 2, &dir);

    let log = log_path(&dir);
    let mut bytes = fs::read(&log).expect("log exists");
    // Duplicate the first whole entry (entry header at offset 12, its
    // payload length at offset 12 + 12), preceded by torn-write garbage.
    let payload_len = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes")) as usize;
    let first_entry = bytes[12..12 + 24 + payload_len].to_vec();
    bytes.extend_from_slice(b"torn write from a dying process");
    bytes.extend_from_slice(&first_entry);
    fs::write(&log, &bytes).expect("rewrite");

    let (report, store) = run_cached(&campaign, 2, &dir);
    let cache = report.cache.expect("cache stats");
    assert_eq!(cache.misses, 0, "garbage and duplicates cost no hits");
    assert_eq!(cache.hits, campaign.len() as u64);
    assert!(store.stats().corrupt_entries >= 1, "the garbage is counted");
    assert_eq!(report.to_json(), baseline.to_json());

    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property: byte identity over random matrices, seeds and worker counts
// ---------------------------------------------------------------------------

fn matrix_strategy() -> impl Strategy<Value = (Matrix, u64)> {
    (
        proptest::collection::vec(0usize..4, 1..3),
        proptest::collection::vec(4u32..6, 1..3),
        any::<bool>(),
        1u64..3,
        any::<u64>(),
    )
        .prop_map(|(families, sizes, talking, reps, seed)| {
            let all = [Family::Ring, Family::Path, Family::Star, Family::Grid];
            let mut fams: Vec<Family> = families.iter().map(|&i| all[i]).collect();
            fams.sort_by_key(|f| f.name());
            fams.dedup();
            let mut sizes = sizes;
            sizes.sort_unstable();
            sizes.dedup();
            let modes = if talking {
                vec![CommMode::Silent, CommMode::Talking]
            } else {
                vec![CommMode::Silent]
            };
            (
                Matrix {
                    families: fams,
                    sizes,
                    teams: vec![vec![2, 3]],
                    modes,
                    reps,
                    ..Matrix::new()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// For any drawn matrix, seed and worker count: the uncached run, the
    /// cold-cache run and the warm-cache run agree byte for byte, and the
    /// warm run is all hits.
    #[test]
    fn cache_state_never_changes_report_bytes(
        (matrix, seed) in matrix_strategy(),
        cold_workers in 1usize..5,
        warm_workers in 1usize..5,
    ) {
        let campaign = matrix.campaign("prop-store", seed)
            .expect("drawn matrices are well-formed");
        let dir = fresh_dir(&format!("prop-{seed:x}-{}", campaign.len()));

        let plain = run_campaign(&campaign, 2);
        let (cold, _) = run_cached(&campaign, cold_workers, &dir);
        let (warm, _) = run_cached(&campaign, warm_workers, &dir);

        prop_assert_eq!(cold.cache.expect("stats").misses, campaign.len() as u64);
        prop_assert_eq!(warm.cache.expect("stats").misses, 0);
        prop_assert_eq!(warm.cache.expect("stats").hits, campaign.len() as u64);
        prop_assert_eq!(&plain.records, &cold.records);
        prop_assert_eq!(&plain.records, &warm.records);
        prop_assert_eq!(plain.to_json(), cold.to_json());
        prop_assert_eq!(plain.to_json(), warm.to_json());
        prop_assert_eq!(plain.to_csv(), cold.to_csv());
        prop_assert_eq!(plain.to_csv(), warm.to_csv());

        let _ = fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Hunt caching
// ---------------------------------------------------------------------------

/// The hunt is cache-transparent: an uncached search, a cold-cache search
/// and a warm-cache search produce byte-identical reports, and the warm
/// search re-evaluates nothing (every candidate on the deterministic
/// greedy walk hits).
#[test]
fn hunt_reports_are_identical_across_cache_states() {
    let spec = hunt_smoke_spec();
    let dir = fresh_dir("hunt-warm");
    let plain = run_search(&spec, 2);
    assert!(plain.cache.is_none());

    let store = Store::open(&dir).expect("cache dir is writable");
    let cold = run_search_cached(&spec, 2, Some(&store));
    let warm = run_search_cached(&spec, 3, Some(&store));

    assert_eq!(plain.to_json(), cold.to_json());
    assert_eq!(plain.to_json(), warm.to_json());
    let warm_cache = warm.cache.expect("cached searches carry cache stats");
    assert_eq!(warm_cache.misses, 0, "a warm hunt executes nothing");
    assert!(warm_cache.hits >= spec.budget);

    let _ = fs::remove_dir_all(&dir);
}

/// Hunt presets share the cache across presets: the quick hunt's ring-4
/// and ring-5 team-[2,3] instances are the smoke hunt's instances under
/// the same seed, so after a smoke hunt the quick hunt starts with hits
/// (at least each shared instance's baseline cell and walk prefix).
#[test]
fn hunt_presets_share_cache_entries() {
    let dir = fresh_dir("hunt-cross");
    let store = Store::open(&dir).expect("cache dir is writable");
    run_search_cached(&hunt_smoke_spec(), 2, Some(&store));

    let quick = run_search_cached(&hunt_spec(true), 2, Some(&store));
    let cache = quick.cache.expect("cached searches carry cache stats");
    assert!(
        cache.hits >= 2,
        "the shared instances' baseline cells must hit cross-preset, got {} hits",
        cache.hits
    );

    // And the quick report itself is unperturbed by the foreign entries.
    let plain = run_search(&hunt_spec(true), 2);
    assert_eq!(plain.to_json(), quick.to_json());

    let _ = fs::remove_dir_all(&dir);
}
