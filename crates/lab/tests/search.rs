//! The adversary-search harness's external contracts:
//!
//! 1. **Witness replay.** Any witness the search emits is an ordinary
//!    [`Scenario`] — replaying it through the solo `execute_scenario`
//!    path reproduces the search-side record bit for bit (counters and
//!    trace digest included), over randomly drawn instances, adversary
//!    spaces and budgets.
//! 2. **Worker-count determinism.** The search report (JSON and CSV) is
//!    byte-identical for any worker count — the property the CI smoke
//!    step diffs.
//! 3. **Fork-mode determinism.** Checkpoint-forked evaluation and
//!    from-scratch evaluation produce byte-identical reports over
//!    randomly drawn spaces — the other property CI diffs — and the
//!    forked path demonstrably engages on the hunt presets.
//! 4. **The falsifier falsifies.** The hunt presets find at least one
//!    instance where silent gathering genuinely fails.

use proptest::prelude::*;

use nochatter_graph::generators::Family;
use nochatter_graph::Label;
use nochatter_lab::presets::{hunt_smoke_spec, hunt_space, hunt_spec};
use nochatter_lab::{
    execute_scenario, run_search, run_search_with, scenario_seed, spread, AdversarySpace,
    Objective, Scenario, ScenarioKey, ScenarioKind, SearchSpec,
};
use nochatter_sim::{ScriptedRing, TopologySpec, WakeSchedule};

/// A drawn search problem: one instance plus a small adversary space.
#[derive(Debug, Clone)]
struct Drawn {
    family: usize,
    n: u32,
    three_agents: bool,
    wake_choices: Vec<u64>,
    crash_choices: Vec<u64>,
    edge_slots: usize,
    budget: u64,
    seed: u64,
    objective_failure: bool,
}

fn drawn() -> impl Strategy<Value = Drawn> {
    // The vendored proptest shim has no `prop_oneof!`; draw indices into
    // fixed choice tables instead.
    const WAKE: [u64; 5] = [0, 1, 4, 17, u64::MAX];
    const CRASH: [u64; 4] = [u64::MAX, 8, 32, 256];
    (
        (0usize..3, 4u32..7, any::<bool>()),
        proptest::collection::vec(0usize..WAKE.len(), 1..4),
        proptest::collection::vec(0usize..CRASH.len(), 1..4),
        (0usize..3, 1u64..14),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                (family, n, three_agents),
                wake_idx,
                crash_idx,
                (edge_slots, budget),
                seed,
                objective_failure,
            )| Drawn {
                family,
                n,
                three_agents,
                wake_choices: wake_idx.iter().map(|&i| WAKE[i]).collect(),
                crash_choices: crash_idx.iter().map(|&i| CRASH[i]).collect(),
                edge_slots,
                budget,
                seed,
                objective_failure,
            },
        )
}

/// Builds the drawn instance and space. The space pins agent 0's wake to
/// round 0 and never crashes agent 0, mirroring the hunt presets; the
/// remaining axes use the drawn choice lists verbatim.
fn build(d: &Drawn) -> (Scenario, AdversarySpace) {
    let families = [Family::Ring, Family::Path, Family::Star];
    let family = families[d.family];
    let team: Vec<u64> = if d.three_agents {
        vec![2, 3, 9]
    } else {
        vec![2, 3]
    };
    let key = ScenarioKey {
        family: family.name().into(),
        n: d.n,
        team: team.clone(),
        wake: "simul".into(),
        topo: "static".into(),
        fault: "none".into(),
        mode: "silent".into(),
        variant: "gather".into(),
        rep: 0,
    };
    let cfg = spread(family.instantiate(d.n, scenario_seed(d.seed, &key)), &team).unwrap();
    let labels: Vec<Label> = cfg.labels().collect();
    let mut wake_choices = d.wake_choices.clone();
    if !wake_choices.contains(&0) {
        wake_choices.push(0);
    }
    let space = AdversarySpace {
        wake_offsets: labels
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i == 0 {
                    vec![0]
                } else {
                    wake_choices.clone()
                }
            })
            .collect(),
        crash_rounds: labels
            .iter()
            .skip(1)
            .map(|&l| (l, d.crash_choices.clone()))
            .collect(),
        edge_script: if nochatter_graph::dynamic::is_cycle(cfg.graph()) {
            (0..d.edge_slots)
                .map(|_| {
                    let mut choices = vec![ScriptedRing::KEEP_ALL];
                    choices.extend(0..cfg.graph().edge_count() as u32);
                    choices
                })
                .collect()
        } else {
            Vec::new()
        },
    };
    let scenario = Scenario {
        seed: scenario_seed(d.seed, &key),
        key,
        cfg,
        mode: nochatter_core::CommMode::Silent,
        schedule: WakeSchedule::Simultaneous,
        topo: TopologySpec::Static,
        fault: nochatter_sim::FaultSpec::None,
        kind: ScenarioKind::Gather,
    };
    (scenario, space)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn witnesses_replay_bitwise_through_the_solo_path(d in drawn()) {
        let (base, space) = build(&d);
        let spec = SearchSpec {
            name: "replay".into(),
            seed: d.seed,
            budget: d.budget,
            objective: if d.objective_failure {
                Objective::Failure
            } else {
                Objective::SlowGather
            },
            instances: vec![(base, space)],
        };
        let report = run_search(&spec, 2);
        prop_assert_eq!(report.outcomes.len(), 1);
        let outcome = &report.outcomes[0];
        prop_assert!(outcome.evaluations >= 1);
        prop_assert!(outcome.evaluations <= d.budget);
        // The witness is a plain scenario: the batched search-side record
        // and a fresh solo execution must agree on every field, trace
        // digest included.
        let replayed = execute_scenario(&outcome.witness);
        prop_assert_eq!(&replayed, &outcome.record);
        // The witness key is the record's key: the replay recipe a report
        // reader reconstructs is exactly what was measured.
        prop_assert_eq!(
            outcome.witness.key.canonical(),
            outcome.record.key.canonical()
        );
        prop_assert_eq!(
            &outcome.instance,
            &outcome.witness.key.instance_canonical()
        );
    }

    #[test]
    fn forked_evaluation_is_bitwise_equivalent_to_from_scratch(d in drawn()) {
        let (base, space) = build(&d);
        let spec = SearchSpec {
            name: "fork-mode".into(),
            seed: d.seed,
            budget: d.budget,
            objective: if d.objective_failure {
                Objective::Failure
            } else {
                Objective::SlowGather
            },
            instances: vec![(base, space)],
        };
        let forked = run_search_with(&spec, 2, None, true);
        let scratch = run_search_with(&spec, 2, None, false);
        // The walk, the witnesses and both deterministic reports must not
        // betray how candidates were executed — byte for byte, over
        // arbitrary wake/crash/edge-script spaces.
        prop_assert_eq!(forked.to_json(), scratch.to_json());
        prop_assert_eq!(forked.to_csv(), scratch.to_csv());
        prop_assert_eq!(scratch.total_forked_evals(), 0);
        prop_assert_eq!(scratch.total_ladder_rounds(), 0);
        for (f, s) in forked.outcomes.iter().zip(&scratch.outcomes) {
            prop_assert_eq!(&f.record, &s.record);
            prop_assert_eq!(&f.witness.key.canonical(), &s.witness.key.canonical());
        }
    }
}

#[test]
fn search_reports_are_byte_identical_across_worker_counts() {
    let spec = hunt_smoke_spec();
    let one = run_search(&spec, 1);
    let json = one.to_json();
    let csv = one.to_csv();
    for workers in [2, 4, 8] {
        let many = run_search(&spec, workers);
        assert_eq!(json, many.to_json(), "workers = {workers}");
        assert_eq!(csv, many.to_csv(), "workers = {workers}");
    }
}

#[test]
fn the_smoke_hunt_forks_and_is_report_blind_to_it() {
    let spec = hunt_smoke_spec();
    let forked = run_search_with(&spec, 2, None, true);
    let scratch = run_search_with(&spec, 2, None, false);
    assert_eq!(forked.to_json(), scratch.to_json());
    assert_eq!(forked.to_csv(), scratch.to_csv());
    // Non-vacuity at preset scale: the hunt's deep crash rounds (16, 64,
    // 512) must actually ride the ladder or the terminal short-circuit,
    // and the net executed work must drop, ladder cost included.
    assert!(
        forked.total_forked_evals() > 0,
        "the smoke hunt never forked an evaluation"
    );
    assert!(
        forked.total_executed_rounds() < scratch.total_executed_rounds(),
        "forking must execute strictly fewer engine iterations \
         (forked {} vs from-scratch {})",
        forked.total_executed_rounds(),
        scratch.total_executed_rounds()
    );
}

#[test]
fn the_smoke_hunt_finds_a_silent_failure() {
    let report = run_search(&hunt_smoke_spec(), 4);
    assert!(
        report.failure_count() >= 1,
        "the crash/edge axes must break silent gathering somewhere; \
         witnesses: {:?}",
        report
            .outcomes
            .iter()
            .map(|o| (o.record.key.canonical(), o.record.status.clone()))
            .collect::<Vec<_>>()
    );
    for outcome in &report.outcomes {
        // Every witness replays — the smoke report's records are honest.
        assert_eq!(execute_scenario(&outcome.witness), outcome.record);
    }
}

#[test]
fn hunt_quick_attacks_the_dr1_fr1_instance_space() {
    let spec = hunt_spec(true);
    let instances: Vec<&str> = spec
        .instances
        .iter()
        .map(|(s, _)| s.key.family.as_str())
        .collect();
    assert!(instances.iter().all(|&f| f == "ring"));
    // Budget sanity: the search cannot exceed its budget even when the
    // space is much larger.
    for (_, space) in &spec.instances {
        assert!(space.candidates() > u128::from(spec.budget));
    }
}

#[test]
fn hunt_space_matches_the_instance_shape() {
    let cfg = spread(Family::Ring.instantiate(5, 1), &[3, 5, 9]).unwrap();
    let space = hunt_space(&cfg);
    assert_eq!(space.wake_offsets.len(), 3);
    assert_eq!(space.crash_rounds.len(), 2);
    assert_eq!(space.edge_script.len(), 2);
    assert_eq!(space.dims(), 7);
}
