//! Declarative campaign specifications and their expansion into scenarios.

use std::error::Error;
use std::fmt;

use nochatter_core::unknown::EstMode;
use nochatter_core::{BitStr, CommMode};
use nochatter_graph::generators::Family;
use nochatter_graph::rng::derive_seed;
use nochatter_graph::{InitialConfiguration, Label, NodeId};
use nochatter_sim::{FaultSpec, TopologySpec, WakeSchedule};

use crate::record::{fnv_bytes, ScenarioKey};

/// Salt separating per-scenario seed derivation from other consumers of the
/// campaign seed (graph instantiation uses its own salts inside
/// [`Family::instantiate`]).
const SALT_SCENARIO: u64 = 0x5EED;

/// How gossip payloads are assigned to a team (deterministically, so the
/// scenario stays declarative).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadScheme {
    /// Every agent sends the all-ones message of this length.
    Uniform {
        /// Message length in bits (0 = empty message).
        len: usize,
    },
    /// The agent at sorted-label index `i` sends an alternating-bit message
    /// of length `i` (index 0 sends the empty message).
    Ramp,
}

impl PayloadScheme {
    /// The per-agent `(label, message)` assignment for `cfg`'s team.
    pub fn payloads(&self, cfg: &InitialConfiguration) -> Vec<(Label, BitStr)> {
        cfg.agents()
            .iter()
            .enumerate()
            .map(|(i, &(label, _))| {
                let bits = match *self {
                    PayloadScheme::Uniform { len } => vec![true; len],
                    PayloadScheme::Ramp => (0..i).map(|b| b % 2 == 0).collect(),
                };
                (label, BitStr::from_bits(bits))
            })
            .collect()
    }

    fn name(&self) -> String {
        match *self {
            PayloadScheme::Uniform { len } => format!("u{len}"),
            PayloadScheme::Ramp => "ramp".into(),
        }
    }
}

/// Which algorithm a scenario exercises.
#[derive(Clone, Debug)]
pub enum ScenarioKind {
    /// `GatherKnownUpperBound` (silent or talking per the scenario mode).
    Gather,
    /// Gather-then-gossip with the given payload assignment.
    Gossip(PayloadScheme),
    /// `GatherUnknownUpperBound` against an enumeration consisting of the
    /// given decoy hypotheses followed by the truth (the scenario's own
    /// configuration). Weak-model only (the runner rejects talking-mode
    /// cells), and the scenario seed is unused: the algorithm's schedule
    /// is fully determined by the enumeration.
    Unknown {
        /// Wrong hypotheses enumerated before the truth.
        decoys: Vec<InitialConfiguration>,
        /// How a dirty `EST+` exploration resolves (the faithful algorithm
        /// uses [`EstMode::Conservative`]).
        est_mode: EstMode,
    },
}

impl ScenarioKind {
    /// The short variant name used in scenario keys and reports.
    pub fn variant_name(&self) -> String {
        match self {
            ScenarioKind::Gather => "gather".into(),
            ScenarioKind::Gossip(scheme) => format!("gossip-{}", scheme.name()),
            ScenarioKind::Unknown { decoys, .. } => format!("unknown@{}", decoys.len() + 1),
        }
    }
}

/// The short name of a wake schedule, for scenario keys.
pub fn wake_name(schedule: &WakeSchedule) -> String {
    match schedule {
        WakeSchedule::Simultaneous => "simul".into(),
        WakeSchedule::FirstOnly => "first".into(),
        WakeSchedule::Staggered { gap } => format!("stag{gap}"),
        WakeSchedule::Explicit(rounds) => format!(
            "explicit{}",
            rounds
                .iter()
                .map(|r| if *r == u64::MAX {
                    "x".into()
                } else {
                    r.to_string()
                })
                .collect::<Vec<_>>()
                .join(".")
        ),
        _ => "other".into(),
    }
}

/// One fully-specified run: a configuration, a mode, a schedule, an
/// algorithm variant, and a derived seed. Plain data — scenarios are safe
/// to share across worker threads.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The scenario's identity within its campaign.
    pub key: ScenarioKey,
    /// The network and start positions.
    pub cfg: InitialConfiguration,
    /// Silent (weak sensing) or talking (traditional sensing).
    pub mode: CommMode,
    /// The adversary's wake schedule.
    pub schedule: WakeSchedule,
    /// The round-varying topology ([`TopologySpec::Static`] for the
    /// paper's model). An execution axis: a dynamic cell shares its seed
    /// and base graph with its static twin.
    pub topo: TopologySpec,
    /// The crash-fault adversary ([`FaultSpec::None`] for the paper's
    /// model). An execution axis: a faulty cell shares its seed and base
    /// graph with its fault-free twin.
    pub fault: FaultSpec,
    /// The algorithm under test.
    pub kind: ScenarioKind,
    /// Seed derived from the campaign seed and the key.
    pub seed: u64,
}

/// A malformed campaign specification.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The matrix (or scenario list) expands to nothing.
    Empty,
    /// Two scenarios share a key (canonical form attached).
    DuplicateKey(String),
    /// A team contains the label 0 (invalid labels are rejected before a
    /// configuration is attempted; duplicate labels surface as
    /// [`CampaignError::BadCell`]).
    BadTeam(Vec<u64>),
    /// A configuration could not be built for a matrix cell (duplicate
    /// labels, more agents than nodes, ...).
    BadCell(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Empty => write!(f, "campaign expands to zero scenarios"),
            CampaignError::DuplicateKey(key) => write!(f, "duplicate scenario key: {key}"),
            CampaignError::BadTeam(team) => write!(f, "invalid team {team:?}"),
            CampaignError::BadCell(cell) => write!(f, "cannot build configuration for {cell}"),
        }
    }
}

impl Error for CampaignError {}

/// A named, seeded, expanded set of scenarios, sorted by key.
///
/// Build one from a [`Matrix`] (the cartesian-product path) or from an
/// explicit scenario list ([`Campaign::from_scenarios`], used by the
/// unknown-bound tables whose hypotheses aren't family-driven).
#[derive(Clone, Debug)]
pub struct Campaign {
    name: String,
    seed: u64,
    scenarios: Vec<Scenario>,
}

impl Campaign {
    /// Wraps explicit scenarios: derives each scenario's seed from the
    /// campaign seed and its key, sorts by key, and rejects duplicates.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Empty`] or [`CampaignError::DuplicateKey`].
    pub fn from_scenarios(
        name: impl Into<String>,
        seed: u64,
        mut scenarios: Vec<Scenario>,
    ) -> Result<Self, CampaignError> {
        if scenarios.is_empty() {
            return Err(CampaignError::Empty);
        }
        for s in &mut scenarios {
            s.seed = scenario_seed(seed, &s.key);
        }
        scenarios.sort_by(|a, b| a.key.cmp(&b.key));
        for w in scenarios.windows(2) {
            if w[0].key == w[1].key {
                return Err(CampaignError::DuplicateKey(w[0].key.canonical()));
            }
        }
        Ok(Campaign {
            name: name.into(),
            seed,
            scenarios,
        })
    }

    /// The campaign's name (used for report file names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The campaign-level master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scenarios, in key order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the campaign is empty (never true for a built campaign).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// Derives the per-scenario seed from the campaign seed and the key's
/// *instance* sub-key ([`ScenarioKey::instance_canonical`]: family, size,
/// team, repetition — deliberately excluding the execution axes).
///
/// Key-based (not index-based), so extending a campaign with new axes
/// never reshuffles the seeds of existing cells. Instance-based (not
/// full-key-based), so cells that differ only in wake schedule, sensing
/// mode or algorithm variant share one seed — and with it the same
/// random-family graph and the same derived exploration setup. That
/// sharing is what makes differential comparisons (silent vs talking,
/// gossip vs its gathering baseline) comparisons of *identical
/// configurations* rather than of two different random instances.
pub fn scenario_seed(campaign_seed: u64, key: &ScenarioKey) -> u64 {
    derive_seed(
        campaign_seed,
        &[
            SALT_SCENARIO,
            fnv_bytes(key.instance_canonical().as_bytes()),
        ],
    )
}

/// Spreads the team's agents evenly over the graph's nodes (the same
/// placement rule the original bench tables used).
///
/// # Errors
///
/// [`CampaignError::BadTeam`] for invalid labels,
/// [`CampaignError::BadCell`] if the configuration is rejected (e.g. more
/// agents than nodes).
pub fn spread(
    graph: nochatter_graph::Graph,
    team: &[u64],
) -> Result<InitialConfiguration, CampaignError> {
    let n = graph.node_count();
    let agents = team
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            Label::new(l)
                .map(|label| (label, NodeId::new((i * n / team.len()) as u32)))
                .ok_or_else(|| CampaignError::BadTeam(team.to_vec()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    InitialConfiguration::new(graph, agents)
        .map_err(|e| CampaignError::BadCell(format!("team {team:?}: {e}")))
}

/// The cartesian scenario matrix: graph family × size × team × wake
/// schedule × dynamism × fault adversary × sensing mode × algorithm
/// variant × seed repetition.
///
/// Cells a family cannot realize (more agents than nodes) are skipped
/// silently, mirroring the original sweep tables; so are cells whose
/// topology cannot run over the instantiated graph (a
/// [`TopologySpec::Ring`] over anything but a cycle), which lets one
/// matrix cross the dynamic-ring adversary with a family list that
/// includes non-rings, and cells whose fault spec targets a label outside
/// the team, which lets one matrix cross per-label crash lists with
/// several teams.
///
/// # Example
///
/// ```
/// use nochatter_graph::generators::Family;
/// use nochatter_lab::{Matrix, ScenarioKind};
/// use nochatter_sim::WakeSchedule;
///
/// let campaign = Matrix {
///     families: vec![Family::Ring, Family::Path],
///     sizes: vec![4, 6],
///     teams: vec![vec![2, 3]],
///     schedules: vec![WakeSchedule::Simultaneous],
///     ..Matrix::new()
/// }
/// .campaign("doc", 42)?;
/// assert_eq!(campaign.len(), 4);
/// # Ok::<(), nochatter_lab::CampaignError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Matrix {
    /// Graph families to sweep.
    pub families: Vec<Family>,
    /// Requested sizes (families may round up).
    pub sizes: Vec<u32>,
    /// Teams of agent labels.
    pub teams: Vec<Vec<u64>>,
    /// Wake schedules.
    pub schedules: Vec<WakeSchedule>,
    /// Round-varying topologies (the dynamism axis).
    pub topologies: Vec<TopologySpec>,
    /// Crash-fault adversaries (the fault axis).
    pub faults: Vec<FaultSpec>,
    /// Sensing/communication modes.
    pub modes: Vec<CommMode>,
    /// Algorithm variants.
    pub kinds: Vec<ScenarioKind>,
    /// Seed repetitions per cell (each rep derives a fresh scenario seed,
    /// and with it fresh random-family instances).
    pub reps: u64,
    /// Renumber every node's ports by a seeded adversary.
    pub shuffled_ports: bool,
}

impl Matrix {
    /// A minimal matrix: silent gathering, simultaneous wake, one rep.
    /// Fill in `families`, `sizes` and `teams` (all empty by default).
    pub fn new() -> Self {
        Matrix {
            families: Vec::new(),
            sizes: Vec::new(),
            teams: Vec::new(),
            schedules: vec![WakeSchedule::Simultaneous],
            topologies: vec![TopologySpec::Static],
            faults: vec![FaultSpec::None],
            modes: vec![CommMode::Silent],
            kinds: vec![ScenarioKind::Gather],
            reps: 1,
            shuffled_ports: false,
        }
    }

    /// Expands the matrix into a [`Campaign`] under the given master seed.
    ///
    /// Expansion is deterministic: scenarios are keyed by their cell
    /// coordinates, seeded from `(campaign_seed, key)`, and sorted by key.
    ///
    /// # Errors
    ///
    /// See [`CampaignError`]; an invalid team or an unbuildable non-skipped
    /// cell rejects the whole campaign.
    pub fn campaign(
        &self,
        name: impl Into<String>,
        campaign_seed: u64,
    ) -> Result<Campaign, CampaignError> {
        let mut scenarios = Vec::new();
        for &family in &self.families {
            for &n in &self.sizes {
                for team in &self.teams {
                    if team.len() > n as usize {
                        continue; // the cell cannot host the team
                    }
                    for rep in 0..self.reps {
                        // The seed (and with it the instance) depends only
                        // on the instance sub-key — family, size, team,
                        // rep — so one configuration serves every
                        // execution-axis cell instead of being regenerated
                        // and revalidated per schedule × mode × variant.
                        // `from_scenarios` sorts by key, so expansion
                        // order is immaterial.
                        let instance_key = ScenarioKey {
                            family: family.name().into(),
                            n,
                            team: team.clone(),
                            wake: String::new(),
                            topo: String::new(),
                            fault: String::new(),
                            mode: String::new(),
                            variant: String::new(),
                            rep,
                        };
                        let seed = scenario_seed(campaign_seed, &instance_key);
                        let graph = if self.shuffled_ports {
                            family.instantiate_shuffled(n, seed)
                        } else {
                            family.instantiate(n, seed)
                        };
                        let cfg = spread(graph, team)?;
                        let team_labels: Vec<nochatter_graph::Label> = cfg.labels().collect();
                        for schedule in &self.schedules {
                            for topo in &self.topologies {
                                if !topo.compatible_with(cfg.graph()) {
                                    continue; // e.g. a dynamic ring over a non-cycle
                                }
                                for fault in &self.faults {
                                    if !fault.compatible_with(&team_labels) {
                                        continue; // a crash list naming a label outside this team
                                    }
                                    for &mode in &self.modes {
                                        for kind in &self.kinds {
                                            scenarios.push(Scenario {
                                                key: ScenarioKey {
                                                    wake: wake_name(schedule),
                                                    topo: topo.short_name(),
                                                    fault: fault.short_name(),
                                                    mode: mode_name(mode).into(),
                                                    variant: kind.variant_name(),
                                                    ..instance_key.clone()
                                                },
                                                cfg: cfg.clone(),
                                                mode,
                                                schedule: schedule.clone(),
                                                topo: topo.clone(),
                                                fault: fault.clone(),
                                                kind: kind.clone(),
                                                seed,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Campaign::from_scenarios(name, campaign_seed, scenarios)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::new()
    }
}

/// The report name of a [`CommMode`].
pub fn mode_name(mode: CommMode) -> &'static str {
    match mode {
        CommMode::Silent => "silent",
        CommMode::Talking => "talking",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> Matrix {
        Matrix {
            families: vec![Family::Ring, Family::Path],
            sizes: vec![4, 6],
            teams: vec![vec![2, 3], vec![3, 5, 9]],
            schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
            ..Matrix::new()
        }
    }

    #[test]
    fn expansion_counts_and_orders() {
        let c = small_matrix().campaign("t", 1).unwrap();
        // 2 families × 2 sizes × 2 teams × 2 schedules.
        assert_eq!(c.len(), 16);
        let keys: Vec<String> = c.scenarios().iter().map(|s| s.key.canonical()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "scenarios must be in key order");
        assert!(keys[0].starts_with("path/"), "path sorts before ring");
    }

    #[test]
    fn oversized_teams_are_skipped() {
        let c = Matrix {
            families: vec![Family::Ring],
            sizes: vec![3],
            teams: vec![vec![2, 3], vec![1, 2, 3, 4]],
            ..Matrix::new()
        }
        .campaign("t", 1)
        .unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn seeds_are_key_stable() {
        let base = small_matrix().campaign("t", 9).unwrap();
        // Adding a new axis value must not change existing cells' seeds.
        let mut extended = small_matrix();
        extended.sizes.push(8);
        let extended = extended.campaign("t", 9).unwrap();
        for s in base.scenarios() {
            let twin = extended
                .scenarios()
                .iter()
                .find(|e| e.key == s.key)
                .expect("existing cell survives extension");
            assert_eq!(twin.seed, s.seed);
            assert_eq!(twin.cfg, s.cfg);
        }
    }

    #[test]
    fn execution_axes_share_one_instance() {
        // Silent/talking (and gather/gossip, and different schedules) cells
        // of the same family × size × team × rep must run on the identical
        // configuration with the identical seed — the differential
        // contract. Random families are the acid test: a seed difference
        // would produce a different graph outright.
        let c = Matrix {
            families: vec![Family::RandomConnected],
            sizes: vec![8],
            teams: vec![vec![2, 3]],
            schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
            modes: vec![CommMode::Silent, CommMode::Talking],
            kinds: vec![
                ScenarioKind::Gather,
                ScenarioKind::Gossip(PayloadScheme::Uniform { len: 2 }),
            ],
            ..Matrix::new()
        }
        .campaign("t", 4)
        .unwrap();
        assert_eq!(c.len(), 8);
        let first = &c.scenarios()[0];
        for s in c.scenarios() {
            assert_eq!(s.seed, first.seed, "{} diverged", s.key);
            assert_eq!(s.cfg, first.cfg, "{} runs a different instance", s.key);
        }
    }

    #[test]
    fn reps_derive_fresh_random_instances() {
        let c = Matrix {
            families: vec![Family::RandomConnected],
            sizes: vec![8],
            teams: vec![vec![2, 3]],
            reps: 3,
            ..Matrix::new()
        }
        .campaign("t", 5)
        .unwrap();
        assert_eq!(c.len(), 3);
        assert!(
            c.scenarios().windows(2).any(|w| w[0].cfg != w[1].cfg),
            "reps must sweep distinct random graphs"
        );
    }

    #[test]
    fn bad_team_is_rejected() {
        let err = Matrix {
            families: vec![Family::Ring],
            sizes: vec![4],
            teams: vec![vec![0, 3]],
            ..Matrix::new()
        }
        .campaign("t", 1)
        .unwrap_err();
        assert!(matches!(err, CampaignError::BadTeam(_)));
    }

    #[test]
    fn empty_matrix_is_rejected() {
        let err = Matrix::new().campaign("t", 1).unwrap_err();
        assert_eq!(err, CampaignError::Empty);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let c = small_matrix().campaign("t", 1).unwrap();
        let mut scenarios = c.scenarios().to_vec();
        scenarios.push(scenarios[0].clone());
        let err = Campaign::from_scenarios("t", 1, scenarios).unwrap_err();
        assert!(matches!(err, CampaignError::DuplicateKey(_)));
    }

    #[test]
    fn shuffled_ports_change_numbering_not_topology() {
        let plain = Matrix {
            families: vec![Family::Complete],
            sizes: vec![5],
            teams: vec![vec![2, 3]],
            ..Matrix::new()
        };
        let shuffled = Matrix {
            shuffled_ports: true,
            ..plain.clone()
        };
        let p = plain.campaign("t", 3).unwrap();
        let s = shuffled.campaign("t", 3).unwrap();
        assert_eq!(
            p.scenarios()[0].cfg.size(),
            s.scenarios()[0].cfg.size(),
            "same topology size"
        );
        assert_ne!(
            p.scenarios()[0].cfg,
            s.scenarios()[0].cfg,
            "port numbering must differ"
        );
    }

    #[test]
    fn payload_schemes_are_deterministic() {
        let cfg = spread(Family::Ring.instantiate(5, 1), &[2, 3, 9]).unwrap();
        let uniform = PayloadScheme::Uniform { len: 3 }.payloads(&cfg);
        assert!(uniform.iter().all(|(_, m)| m.len() == 3));
        let ramp = PayloadScheme::Ramp.payloads(&cfg);
        let lens: Vec<usize> = ramp.iter().map(|(_, m)| m.len()).collect();
        assert_eq!(lens, vec![0, 1, 2]);
    }

    #[test]
    fn campaign_error_messages_render() {
        assert!(CampaignError::Empty.to_string().contains("zero"));
        assert!(CampaignError::BadTeam(vec![0]).to_string().contains("[0]"));
    }
}
