//! # nochatter-lab
//!
//! Declarative scenario campaigns for the *Want to Gather? No Need to
//! Chatter!* reproduction: describe a cartesian matrix of graph family ×
//! size × team × wake schedule × dynamism (round-varying topology) ×
//! sensing mode × algorithm variant × seed repetition, shard it across a
//! worker pool, and collect structured per-scenario records into
//! deterministic JSON/CSV reports.
//!
//! Three properties make the subsystem useful beyond convenience:
//!
//! * **Reproducibility regardless of parallelism.** Every scenario's RNG
//!   seed derives from the campaign seed and the scenario key's *instance
//!   sub-key* (not its index or its worker), and records are collected in
//!   key order — so a 1-worker run and an 8-worker run produce
//!   byte-identical reports, and golden files diff cleanly in CI. Cells
//!   differing only in execution axes (wake, dynamism, mode, variant)
//!   share one seed, hence one graph instance and one exploration setup.
//! * **One execution path.** Scenarios run through
//!   `nochatter_core::harness::run_scenario` (and its gossip/unknown
//!   siblings), the same entry point the bench tables, the differential
//!   tests and the examples use.
//! * **Differential testing for free.** Because silent and talking runs of
//!   the same cell differ only in the `mode` axis, asserting the paper's
//!   "polynomial price of silence" is a lookup over a report, not a
//!   bespoke harness.
//!
//! # Example
//!
//! ```
//! use nochatter_graph::generators::Family;
//! use nochatter_lab::{run_campaign, Matrix};
//! use nochatter_core::CommMode;
//!
//! let campaign = Matrix {
//!     families: vec![Family::Ring, Family::Grid],
//!     sizes: vec![4, 6],
//!     teams: vec![vec![2, 3]],
//!     modes: vec![CommMode::Silent, CommMode::Talking],
//!     ..Matrix::new()
//! }
//! .campaign("doc", 7)?;
//! let report = run_campaign(&campaign, 2);
//! assert_eq!(report.ok_count(), campaign.len());
//! println!("{}", report.to_json());
//! # Ok::<(), nochatter_lab::CampaignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod record;
mod report;
mod runner;
mod sched;
mod search;
mod store;

pub mod presets;

pub use campaign::{
    mode_name, scenario_seed, spread, wake_name, Campaign, CampaignError, Matrix, PayloadScheme,
    Scenario, ScenarioKind,
};
pub use record::{trace_digest, RunRecord, ScenarioKey};
pub use report::{CampaignArtifacts, CampaignReport};
pub use runner::{
    default_workers, execute_scenario, execute_scenario_with_scratch, run_campaign,
    run_campaign_cached,
};
pub use search::{
    run_search, run_search_cached, run_search_with, AdversarySpace, Objective, SearchArtifacts,
    SearchOutcome, SearchReport, SearchSpec,
};
pub use store::{
    engine_fingerprint, raw_fingerprint, scenario_fingerprint, CacheStats, Store, StoreStats,
    STORE_FORMAT_VERSION,
};
