//! The adversary-search harness: a budgeted falsifier that hunts
//! worst-case scenarios instead of sweeping an oblivious grid.
//!
//! The campaign runner evaluates a fixed matrix of adversaries; this
//! module turns the same machinery into an *optimizer*. An
//! [`AdversarySpace`] declares, per instance, the discrete choices the
//! adversary controls — one wake offset per agent, one crash round per
//! crashable agent, one removed edge per script slot of a
//! [`ScriptedRing`](nochatter_sim::ScriptedRing) — and the search walks
//! that space with seeded random sampling plus greedy one-mutation local
//! search, maximizing an [`Objective`] (make the algorithm fail, or make
//! it slow). The best candidate found becomes the instance's *witness*:
//! a fully replayable [`Scenario`] whose key names the exact adversary.
//!
//! Three design rules keep the falsifier honest:
//!
//! * **Every candidate is a pure-function-of-round spec.** The search
//!   only ever emits `WakeSchedule::Explicit`, `FaultSpec::CrashAt` and
//!   `TopologySpec::Scripted` — declarative adversaries the engine
//!   resolves before the run, so determinism and the quiescence
//!   fast-forward survive, and any witness replays bit for bit through
//!   the ordinary solo [`execute_scenario`](crate::execute_scenario)
//!   path.
//! * **Candidates share their prefixes.** Candidates of one instance
//!   share the base configuration and seed, and a one-mutation neighbor
//!   of the incumbent runs *identically* to it up to a spec-derived
//!   *divergence round*. With forking on (the default), the search keeps
//!   a bounded checkpoint ladder along the incumbent's trajectory and
//!   resumes each candidate from the deepest sound rung — or clones the
//!   incumbent's outcome outright when the candidate diverges only after
//!   the run already ended — instead of replaying the shared prefix.
//!   With forking off (`NOCHATTER_NO_FORK`, `--no-fork`), batches flow
//!   through `run_scenario_batch_with_scratch` unchanged.
//! * **Determinism at any worker count, fork mode and cache state.** The
//!   per-instance search is sequential and seeded from the instance's
//!   derived seed; instances shard over the work-stealing scheduler with
//!   index-ordered result slots; forked and from-scratch evaluation are
//!   bitwise interchangeable. Same spec + budget ⇒ byte-identical
//!   [`SearchReport`] JSON and CSV for any worker count, with forking on
//!   or off, cold or warm.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nochatter_core::harness::{self, GatherScenario, ScenarioCheckpoint, ScenarioRun};
use nochatter_core::KnownSetup;
use nochatter_graph::rng::derive_seed;
use nochatter_graph::Label;
use nochatter_sim::{
    CrashPoint, EngineScratch, FaultSpec, RunOutcome, ScriptedRing, TopologySpec, WakeSchedule,
};

use crate::campaign::{wake_name, Scenario};
use crate::record::RunRecord;
use crate::report::{
    csv_escape, json_escape, opt_rate, record_csv_row, record_json_object, RECORD_CSV_COLUMNS,
};
use crate::runner;
use crate::sched;
use crate::store::{CacheStats, Store};

/// Salt separating the search's candidate-sampling stream from every other
/// consumer of a scenario seed.
const SALT_SEARCH: u64 = 0x5EA2C4;

/// How many random candidates a stuck search draws per kick (once the
/// incumbent's whole one-mutation neighborhood has been evaluated).
const KICK: usize = 8;

/// Checkpoint-ladder capacity per instance: when a ladder outgrows this,
/// every other rung is dropped and the capture stride doubles (dyadic
/// thinning), so memory stays bounded while coverage stays roughly
/// geometric along the incumbent's trajectory.
const LADDER_CAPACITY: usize = 24;

/// Initial ladder stride: executed engine iterations between captured
/// rungs. Doubles on every thinning pass.
const LADDER_STRIDE: u64 = 8;

/// What the falsifier maximizes, per instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Objective {
    /// Hunt outright failures: a candidate whose run executes but does
    /// not meet the gathering criterion beats every success; among
    /// failures (and among successes) more rounds rank higher. The
    /// default falsifier objective.
    Failure,
    /// Hunt slow gatherings: maximize rounds-to-gather over candidates
    /// that still succeed (failures score zero — this objective measures
    /// the adversary's *delay* power, not its kill power).
    SlowGather,
}

impl Objective {
    /// The short name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Failure => "failure",
            Objective::SlowGather => "slow-gather",
        }
    }

    /// Scores a candidate's record: a lexicographic `(rank, rounds)` pair
    /// (bigger is worse for the algorithm, i.e. better for the
    /// adversary). Records that never truly executed — preflight
    /// rejections, engine errors, panics — score `(0, 0)` under either
    /// objective: an adversary that crashes the harness has falsified
    /// nothing.
    pub fn score(self, record: &RunRecord) -> (u64, u64) {
        let executed = !(record.status.starts_with("unsupported")
            || record.status.starts_with("engine error")
            || record.status.starts_with("panic"));
        match self {
            Objective::Failure => {
                if !executed {
                    (0, 0)
                } else if record.ok {
                    (1, record.rounds)
                } else {
                    (2, record.rounds)
                }
            }
            Objective::SlowGather => {
                if executed && record.ok {
                    (1, record.rounds)
                } else {
                    (0, 0)
                }
            }
        }
    }
}

/// The discrete adversary choices of one instance, axis by axis.
///
/// A genotype is one `u32` choice index per axis, in axis order: first the
/// wake axes, then the crash axes, then the edge-script axes. Every axis
/// must offer at least one choice; an axis the space does not want to
/// perturb simply lists its single base value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarySpace {
    /// Per-agent wake-offset choice lists, in the configuration's agent
    /// order (`u64::MAX` = never woken by the adversary, visit-only).
    /// Offsets are relative: decoding subtracts the smallest finite
    /// offset so some agent always wakes at round 0. Empty = keep the
    /// base scenario's schedule.
    pub wake_offsets: Vec<Vec<u64>>,
    /// Per-label crash-round choice lists (`u64::MAX` = never crash).
    /// Labels must be team members.
    pub crash_rounds: Vec<(Label, Vec<u64>)>,
    /// Per-slot edge-removal choice lists for a [`ScriptedRing`] script
    /// ([`ScriptedRing::KEEP_ALL`] = remove nothing that slot). Non-empty
    /// only over cycle base graphs. All-`KEEP_ALL` decodes to the static
    /// topology, so the unperturbed twin is part of the space.
    pub edge_script: Vec<Vec<u32>>,
}

impl AdversarySpace {
    /// The number of genotype axes.
    pub fn dims(&self) -> usize {
        self.wake_offsets.len() + self.crash_rounds.len() + self.edge_script.len()
    }

    /// The number of choices on axis `d` (axis order: wake, crash, edges).
    fn choices(&self, d: usize) -> usize {
        let w = self.wake_offsets.len();
        let c = self.crash_rounds.len();
        if d < w {
            self.wake_offsets[d].len()
        } else if d < w + c {
            self.crash_rounds[d - w].1.len()
        } else {
            self.edge_script[d - w - c].len()
        }
    }

    /// The total number of distinct genotypes (an upper bound on distinct
    /// candidates: wake normalization and the all-`KEEP_ALL` collapse make
    /// some genotypes decode identically).
    pub fn candidates(&self) -> u128 {
        (0..self.dims()).map(|d| self.choices(d) as u128).product()
    }

    /// Decodes a genotype into a concrete candidate scenario over `base`'s
    /// instance: same configuration, same derived seed, same algorithm —
    /// only the adversary axes (and with them the key) change.
    pub fn decode(&self, base: &Scenario, genotype: &[u32]) -> Scenario {
        assert_eq!(genotype.len(), self.dims(), "genotype covers every axis");
        let mut g = genotype.iter().map(|&c| c as usize);
        let schedule = if self.wake_offsets.is_empty() {
            base.schedule.clone()
        } else {
            let mut offsets: Vec<u64> = self
                .wake_offsets
                .iter()
                .map(|choices| choices[g.next().expect("wake axis present")])
                .collect();
            // Time is measured from the first wake-up, so the schedule is
            // only meaningful up to a shift: anchor the earliest finite
            // offset at round 0 (the engine rejects schedules without one).
            match offsets.iter().copied().filter(|&o| o != u64::MAX).min() {
                Some(min) => {
                    for o in &mut offsets {
                        if *o != u64::MAX {
                            *o -= min;
                        }
                    }
                    WakeSchedule::Explicit(offsets)
                }
                // Nobody self-wakes: not a runnable schedule; keep the
                // base one (the candidate collapses onto another point).
                None => base.schedule.clone(),
            }
        };
        let points: Vec<CrashPoint> = self
            .crash_rounds
            .iter()
            .map(|&(label, ref choices)| (label, choices[g.next().expect("crash axis present")]))
            .filter(|&(_, round)| round != u64::MAX)
            .map(|(label, round)| CrashPoint { label, round })
            .collect();
        let fault = if points.is_empty() {
            FaultSpec::None
        } else {
            FaultSpec::CrashAt(points)
        };
        let script: Vec<u32> = self
            .edge_script
            .iter()
            .map(|choices| choices[g.next().expect("edge axis present")])
            .collect();
        let topo = if script.iter().all(|&e| e == ScriptedRing::KEEP_ALL) {
            TopologySpec::Static
        } else {
            TopologySpec::Scripted(ScriptedRing { script })
        };
        let mut key = base.key.clone();
        key.wake = wake_name(&schedule);
        key.topo = topo.short_name();
        key.fault = fault.short_name();
        Scenario {
            key,
            cfg: base.cfg.clone(),
            mode: base.mode,
            schedule,
            topo,
            fault,
            kind: base.kind.clone(),
            seed: base.seed,
        }
    }
}

/// A declarative search: which instances to attack, with what adversary
/// space, under what objective and budget.
#[derive(Clone, Debug)]
pub struct SearchSpec {
    /// Search name (also the report file stem).
    pub name: String,
    /// The master seed the base scenarios were derived under (recorded in
    /// the report; candidate sampling streams derive from each instance's
    /// own scenario seed).
    pub seed: u64,
    /// Candidate evaluations per instance (the incumbent's first
    /// evaluation included). `0` behaves like `1`: the unperturbed
    /// baseline is still evaluated and recorded as the witness, with
    /// zero mutations tried.
    pub budget: u64,
    /// What the adversary maximizes.
    pub objective: Objective,
    /// The instances under attack: each base scenario (the unperturbed
    /// cell) paired with its adversary space.
    pub instances: Vec<(Scenario, AdversarySpace)>,
}

/// The best adversary one instance's search found.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The instance sub-key (`family/n…/t…/r…`) of the attacked cell.
    pub instance: String,
    /// Candidate evaluations actually spent (≤ budget; less only when the
    /// space was exhausted early).
    pub evaluations: u64,
    /// How many times a strictly better candidate replaced the incumbent.
    pub improvements: u64,
    /// The witness's objective score (`(rank, rounds)`, lexicographic).
    pub score: (u64, u64),
    /// The winning candidate, fully replayable: running this scenario
    /// through [`execute_scenario`](crate::execute_scenario) reproduces
    /// [`SearchOutcome::record`] bit for bit.
    pub witness: Scenario,
    /// The witness's measured record (key = the replayable witness key).
    pub record: RunRecord,
    /// How many of this instance's evaluations resumed from a checkpoint
    /// instead of replaying the shared prefix from scratch (0 with forking
    /// off). An execution fact: surfaced only in the trajectory artifact
    /// and the CLI summary, never in the deterministic JSON/CSV reports.
    pub forked_evals: u64,
    /// Engine iterations the resumed prefixes (and terminal
    /// short-circuits) skipped, gross — the ladder's build cost is in
    /// [`SearchOutcome::ladder_executed_rounds`], so net savings are
    /// `checkpoint_executed_rounds_saved - ladder_executed_rounds`. An
    /// execution fact, excluded from the deterministic reports.
    pub checkpoint_executed_rounds_saved: u64,
    /// Engine iterations spent building and extending the incumbent's
    /// checkpoint ladder (work forking adds that from-scratch evaluation
    /// would not do). An execution fact, excluded from the deterministic
    /// reports.
    pub ladder_executed_rounds: u64,
    /// Engine iterations actually executed across every evaluation of this
    /// instance: with forking off, the full per-run iteration counts; with
    /// forking on, resumed prefixes are excluded and ladder work included.
    /// Cache hits execute nothing. The honest per-instance work measure —
    /// byte-identical reports can hide arbitrarily different amounts of
    /// it, which is exactly why it lives outside them.
    pub executed_rounds: u64,
}

impl SearchOutcome {
    /// Whether the witness actually falsifies the algorithm: its run
    /// executed and did not meet the gathering criterion.
    pub fn is_failure(&self) -> bool {
        Objective::Failure.score(&self.record).0 == 2
    }
}

/// The collected result of one adversary search.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Search name (also the report file stem).
    pub name: String,
    /// The master seed of the spec.
    pub seed: u64,
    /// Candidate evaluations per instance.
    pub budget: u64,
    /// What the adversary maximized.
    pub objective: Objective,
    /// One outcome per instance, in spec order.
    pub outcomes: Vec<SearchOutcome>,
    /// How many worker threads executed the search (not serialized into
    /// the deterministic reports).
    pub workers: usize,
    /// Wall-clock duration of the search (not serialized into the
    /// deterministic reports).
    pub wall: Duration,
    /// Candidate-evaluation cache hit/miss counts when the search ran
    /// against a result store (`None` with caching off; not serialized
    /// into the deterministic reports).
    pub cache: Option<CacheStats>,
}

impl SearchReport {
    /// How many instances ended with a genuine failure witness.
    pub fn failure_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failure()).count()
    }

    /// Total candidate evaluations across all instances.
    pub fn total_evaluations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.evaluations).sum()
    }

    /// Total evaluations that resumed from a checkpoint instead of
    /// replaying the shared prefix (0 with forking off).
    pub fn total_forked_evals(&self) -> u64 {
        self.outcomes.iter().map(|o| o.forked_evals).sum()
    }

    /// Total engine iterations the resumed prefixes skipped, gross (the
    /// ladder's build cost is [`SearchReport::total_ladder_rounds`]).
    pub fn total_rounds_saved(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.checkpoint_executed_rounds_saved)
            .sum()
    }

    /// Total engine iterations spent building checkpoint ladders.
    pub fn total_ladder_rounds(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ladder_executed_rounds).sum()
    }

    /// Total engine iterations actually executed across every evaluation
    /// (resumed prefixes excluded, ladder work included) — the honest
    /// measure of simulation work the search performed.
    pub fn total_executed_rounds(&self) -> u64 {
        self.outcomes.iter().map(|o| o.executed_rounds).sum()
    }

    /// Engine iterations executed per candidate evaluation — the
    /// hardware-independent cost figure the forked path drives down.
    /// `None` when nothing was evaluated.
    pub fn executed_rounds_per_evaluation(&self) -> Option<f64> {
        let evals = self.total_evaluations();
        (evals > 0).then(|| self.total_executed_rounds() as f64 / evals as f64)
    }

    /// Candidate evaluations per wall-clock second, or `None` when the
    /// wall clock was too coarse to divide by (under one microsecond —
    /// an honest report declines instead of flooring and inflating).
    pub fn evaluations_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs >= 1e-6).then(|| self.total_evaluations() as f64 / secs)
    }

    /// The deterministic JSON report: search identity plus one witness
    /// object per instance, in spec order. Identical for any worker
    /// count (wall-clock time and worker count are excluded). Each
    /// witness's `record` object has the exact shape of a campaign
    /// record, so the two report kinds diff against each other cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"search\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"objective\": \"{}\",", self.objective.name());
        let _ = writeln!(out, "  \"instance_count\": {},", self.outcomes.len());
        let _ = writeln!(out, "  \"failure_count\": {},", self.failure_count());
        let _ = writeln!(
            out,
            "  \"total_evaluations\": {},",
            self.total_evaluations()
        );
        let _ = writeln!(out, "  \"witnesses\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 < self.outcomes.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"instance\": \"{}\", \"evaluations\": {}, \"improvements\": {}, \
                 \"score\": [{}, {}], \"record\": {}}}{}",
                json_escape(&o.instance),
                o.evaluations,
                o.improvements,
                o.score.0,
                o.score.1,
                record_json_object(&o.record),
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// The deterministic CSV report: the search columns followed by the
    /// witness record under the campaign record columns.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "instance,evaluations,improvements,score_rank,score_rounds,{RECORD_CSV_COLUMNS}\n"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                csv_escape(&o.instance),
                o.evaluations,
                o.improvements,
                o.score.0,
                o.score.1,
                record_csv_row(&o.record)
            );
        }
        out
    }

    /// The `BENCH_search.json` trajectory artifact: search-level aggregates
    /// plus the run's execution facts — wall-clock time, worker count,
    /// cache stats and the incremental-evaluation counters. Unlike
    /// [`SearchReport::to_json`], this file intentionally records *how*
    /// the search executed, so it differs across machines, worker counts
    /// and fork modes while the deterministic reports stay byte-identical.
    pub fn trajectory_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"search\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"objective\": \"{}\",", self.objective.name());
        let _ = writeln!(out, "  \"instance_count\": {},", self.outcomes.len());
        let _ = writeln!(out, "  \"failure_count\": {},", self.failure_count());
        let _ = writeln!(
            out,
            "  \"total_evaluations\": {},",
            self.total_evaluations()
        );
        let _ = writeln!(out, "  \"forked_evals\": {},", self.total_forked_evals());
        let _ = writeln!(
            out,
            "  \"checkpoint_executed_rounds_saved\": {},",
            self.total_rounds_saved()
        );
        let _ = writeln!(
            out,
            "  \"ladder_executed_rounds\": {},",
            self.total_ladder_rounds()
        );
        let _ = writeln!(
            out,
            "  \"total_executed_rounds\": {},",
            self.total_executed_rounds()
        );
        let _ = writeln!(
            out,
            "  \"executed_rounds_per_evaluation\": {},",
            opt_rate(self.executed_rounds_per_evaluation())
        );
        // Cache fields appear only on cached runs, mirroring the campaign
        // trajectory's shape rules.
        if let Some(cache) = self.cache {
            let _ = writeln!(out, "  \"cache_hits\": {},", cache.hits);
            let _ = writeln!(out, "  \"cache_misses\": {},", cache.misses);
        }
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"wall_ms\": {},", self.wall.as_millis());
        let _ = writeln!(
            out,
            "  \"evaluations_per_sec\": {}",
            opt_rate(self.evaluations_per_sec())
        );
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes `<dir>/<name>.json`, `<dir>/<name>.csv` and
    /// `<dir>/BENCH_search.json`, creating `dir` if needed; returns the
    /// three paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self, dir: &Path) -> io::Result<SearchArtifacts> {
        std::fs::create_dir_all(dir)?;
        let artifacts = SearchArtifacts {
            json: dir.join(format!("{}.json", self.name)),
            csv: dir.join(format!("{}.csv", self.name)),
            trajectory: dir.join("BENCH_search.json"),
        };
        std::fs::write(&artifacts.json, self.to_json())?;
        std::fs::write(&artifacts.csv, self.to_csv())?;
        std::fs::write(&artifacts.trajectory, self.trajectory_json())?;
        Ok(artifacts)
    }
}

/// Where [`SearchReport::write_files`] put its three artifacts.
#[derive(Clone, Debug)]
pub struct SearchArtifacts {
    /// The deterministic per-witness JSON report.
    pub json: PathBuf,
    /// The deterministic per-witness CSV report.
    pub csv: PathBuf,
    /// The `BENCH_search.json` trajectory summary (execution facts).
    pub trajectory: PathBuf,
}

/// Runs the search of every instance of `spec` on `workers` threads
/// (0 = one per available core) and collects the outcomes in spec order.
///
/// The report is bit-for-bit identical for any worker count: each
/// instance's search is sequential and seeded from its own derived seed,
/// and outcomes land in index-ordered result slots regardless of which
/// worker ran them. An instance whose search panics yields a zero-score
/// outcome with a `"panic: ..."` record instead of aborting the hunt.
pub fn run_search(spec: &SearchSpec, workers: usize) -> SearchReport {
    run_search_cached(spec, workers, None)
}

/// [`run_search`] against an optional result store: every candidate a
/// search evaluates is an ordinary [`Scenario`] with a fully replayable
/// key, so its record caches exactly like a campaign cell — a warm
/// re-run of the same spec serves the whole walk from the store, and the
/// per-instance baseline cell (genotype zero) hits across presets that
/// share instances. Cached and engine-produced records are bitwise
/// identical, so the walk — and with it the deterministic reports — is
/// unchanged by the cache state.
pub fn run_search_cached(spec: &SearchSpec, workers: usize, store: Option<&Store>) -> SearchReport {
    run_search_with(spec, workers, store, fork_default())
}

/// Whether forked (checkpoint-resumed) evaluation is on by default:
/// yes, unless the `NOCHATTER_NO_FORK` environment variable is set — the
/// CI escape hatch behind the fork-on/off byte-identity check.
fn fork_default() -> bool {
    std::env::var_os("NOCHATTER_NO_FORK").is_none()
}

/// [`run_search_cached`] with explicit control over forked evaluation.
///
/// With `fork` on, each instance's search keeps a bounded ladder of
/// checkpoints along its incumbent's trajectory and evaluates candidates
/// by resuming from the deepest checkpoint at or below their *divergence
/// round* — the first round at which the candidate's adversary spec could
/// make the engine behave differently — instead of replaying the shared
/// prefix from scratch. The walk, the witnesses and the deterministic
/// JSON/CSV reports are **byte-identical** either way (pinned by tests and
/// a CI diff); only the execution-fact counters
/// ([`SearchOutcome::forked_evals`] and friends) and the wall clock
/// change.
pub fn run_search_with(
    spec: &SearchSpec,
    workers: usize,
    store: Option<&Store>,
    fork: bool,
) -> SearchReport {
    let workers = if workers == 0 {
        runner::default_workers()
    } else {
        workers
    }
    .min(spec.instances.len().max(1));
    let start = Instant::now();
    let stats_before = store.map(|s| s.stats());
    let outcomes = sched::run_sharded(
        spec.instances.len(),
        workers,
        |i, scratch| {
            let (base, space) = &spec.instances[i];
            search_instance(
                base,
                space,
                spec.objective,
                spec.budget,
                scratch,
                store,
                fork,
            )
        },
        |i, message| {
            let base = &spec.instances[i].0;
            SearchOutcome {
                instance: base.key.instance_canonical(),
                evaluations: 0,
                improvements: 0,
                score: (0, 0),
                witness: base.clone(),
                record: runner::panic_record(base, &message),
                forked_evals: 0,
                checkpoint_executed_rounds_saved: 0,
                ladder_executed_rounds: 0,
                executed_rounds: 0,
            }
        },
    );
    let cache = match (store, stats_before) {
        (Some(s), Some(before)) => {
            let after = s.stats();
            Some(CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            })
        }
        _ => None,
    };
    SearchReport {
        name: spec.name.clone(),
        seed: spec.seed,
        budget: spec.budget,
        objective: spec.objective,
        outcomes,
        workers,
        wall: start.elapsed(),
        cache,
    }
}

/// The sequential per-instance search: greedy one-mutation local search
/// around the incumbent, with seeded random kicks once the neighborhood
/// is exhausted. Deterministic given `(base.seed, space, budget)` — the
/// `fork` flag changes execution strategy (and the execution-fact
/// counters), never the walk or the records.
#[allow(clippy::too_many_arguments)]
fn search_instance(
    base: &Scenario,
    space: &AdversarySpace,
    objective: Objective,
    budget: u64,
    scratch: &mut EngineScratch,
    store: Option<&Store>,
    fork: bool,
) -> SearchOutcome {
    let dims = space.dims();
    for d in 0..dims {
        assert!(space.choices(d) > 0, "adversary axis {d} offers no choice");
    }
    let stream = derive_seed(base.seed, &[SALT_SEARCH]);
    // Dedup on the *decoded* adversary (wake normalization and the
    // all-KEEP_ALL collapse map several genotypes onto one candidate).
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let axis_key = |s: &Scenario| format!("{}|{}|{}", s.key.wake, s.key.topo, s.key.fault);

    let mut counters = EvalCounters::default();
    let mut incumbent = vec![0u32; dims];
    let first = space.decode(base, &incumbent);
    seen.insert(axis_key(&first));
    // The baseline is a batch of one: nothing to share a prefix with yet.
    let first_record = evaluate(
        std::slice::from_ref(&first),
        scratch,
        store,
        None,
        &mut counters,
    )
    .pop()
    .expect("one candidate, one record");
    let mut evaluations = 1u64;
    let mut improvements = 0u64;
    let mut best = (objective.score(&first_record), first, first_record);
    let mut draws = 0u64;

    // A degenerate space (one candidate) or a ≤1 budget has nothing to
    // mutate: the baseline *is* the witness. Returning here instead of
    // entering the loop keeps `hunt --budget 0` and single-point spaces
    // from burning hundreds of kick draws that can only dedup away.
    if budget <= 1 || space.candidates() == 1 {
        return SearchOutcome {
            instance: base.key.instance_canonical(),
            evaluations,
            improvements,
            score: best.0,
            witness: best.1,
            record: best.2,
            forked_evals: counters.forked,
            checkpoint_executed_rounds_saved: counters.saved,
            ladder_executed_rounds: counters.ladder,
            executed_rounds: counters.executed,
        };
    }
    let mut fork_state = fork.then(|| ForkState::new(base));

    while evaluations < budget {
        let remaining = (budget - evaluations) as usize;
        // The incumbent's one-mutation neighborhood, in axis/choice order,
        // truncated at the remaining budget.
        let mut batch: Vec<(Vec<u32>, Scenario)> = Vec::new();
        'neighborhood: for d in 0..dims {
            for choice in 0..space.choices(d) as u32 {
                if choice == incumbent[d] {
                    continue;
                }
                let mut genotype = incumbent.clone();
                genotype[d] = choice;
                let candidate = space.decode(base, &genotype);
                if seen.insert(axis_key(&candidate)) {
                    batch.push((genotype, candidate));
                    if batch.len() == remaining {
                        break 'neighborhood;
                    }
                }
            }
        }
        if batch.is_empty() {
            // Neighborhood exhausted: kick to seeded random genotypes.
            let want = KICK.min(remaining);
            let mut attempts = 0usize;
            while batch.len() < want && attempts < 64 * KICK {
                attempts += 1;
                let genotype: Vec<u32> = (0..dims)
                    .map(|d| {
                        (derive_seed(stream, &[draws, d as u64]) % space.choices(d) as u64) as u32
                    })
                    .collect();
                draws += 1;
                let candidate = space.decode(base, &genotype);
                if seen.insert(axis_key(&candidate)) {
                    batch.push((genotype, candidate));
                }
            }
            if batch.is_empty() {
                break; // the whole reachable space is evaluated
            }
        }
        let candidates: Vec<Scenario> = batch.iter().map(|(_, c)| c.clone()).collect();
        let records = evaluate(
            &candidates,
            scratch,
            store,
            fork_state.as_mut().map(|state| (state, &best.1)),
            &mut counters,
        );
        evaluations += records.len() as u64;
        for ((genotype, candidate), record) in batch.into_iter().zip(records) {
            let score = objective.score(&record);
            // Strictly-greater only: ties keep the earlier candidate, so
            // the walk (and the witness) is deterministic.
            if score > best.0 {
                best = (score, candidate, record);
                incumbent = genotype;
                improvements += 1;
            }
        }
    }

    SearchOutcome {
        instance: base.key.instance_canonical(),
        evaluations,
        improvements,
        score: best.0,
        witness: best.1,
        record: best.2,
        forked_evals: counters.forked,
        checkpoint_executed_rounds_saved: counters.saved,
        ladder_executed_rounds: counters.ladder,
        executed_rounds: counters.executed,
    }
}

/// Execution-fact tallies of one instance's search (see the matching
/// [`SearchOutcome`] fields).
#[derive(Default)]
struct EvalCounters {
    forked: u64,
    saved: u64,
    ladder: u64,
    executed: u64,
}

/// The candidate [`GatherScenario`] of a decoded [`Scenario`] — the exact
/// shape the batch path builds, so the solo forked path measures the same
/// run.
fn gather_scenario(s: &Scenario) -> GatherScenario<'_> {
    GatherScenario {
        cfg: &s.cfg,
        mode: s.mode,
        schedule: s.schedule.clone(),
        topo: s.topo.clone(),
        fault: s.fault.clone(),
        seed: s.seed,
        trace_capacity: Some(runner::TRACE_CAPACITY),
    }
}

/// The crash adversary as a per-label first-crash-round map, when the
/// spec is declarative enough to compare round by round (`None` and
/// `CrashAt` are; a seeded adversary is not).
fn crash_map(fault: &FaultSpec) -> Option<BTreeMap<Label, u64>> {
    match fault {
        FaultSpec::None => Some(BTreeMap::new()),
        FaultSpec::CrashAt(points) => {
            let mut map = BTreeMap::new();
            for p in points {
                let round = map.entry(p.label).or_insert(u64::MAX);
                *round = (*round).min(p.round);
            }
            Some(map)
        }
        _ => None,
    }
}

/// The last round through which `candidate`'s run is guaranteed bitwise
/// identical to `incumbent`'s — so any checkpoint of the incumbent's run
/// at a round at or below it may soundly seed the candidate's.
///
/// The rule is deliberately conservative, axis by axis (the result is the
/// minimum over all contributions; `u64::MAX` when the specs are
/// identical):
///
/// * **Wake and crash rounds** consult the *fast-forward*: the engine's
///   quiescence skip at round `r` takes future wake/crash rounds into
///   its minimum, so a value differing between the two specs can change
///   skip decisions strictly before it fires. A pair differing as
///   `a ≠ b` therefore contributes `min(a, b) − 1`, not `min(a, b)`.
/// * **Edge-script slots** are never consulted by the fast-forward and a
///   slot `s` first steers round `s`, so a differing slot contributes
///   `s` itself. A scripted ring against the static topology diverges at
///   the first slot that actually removes an edge.
/// * **Shape mismatches** (different schedule variants, a seeded crash
///   adversary, unequal script lengths, an exotic topology) contribute
///   `0`: forking is then simply not attempted rather than reasoned
///   about.
fn divergence_round(incumbent: &Scenario, candidate: &Scenario) -> u64 {
    let mut div = u64::MAX;
    match (&incumbent.schedule, &candidate.schedule) {
        (a, b) if a == b => {}
        (WakeSchedule::Explicit(a), WakeSchedule::Explicit(b)) if a.len() == b.len() => {
            for (&x, &y) in a.iter().zip(b) {
                if x != y {
                    div = div.min(x.min(y).saturating_sub(1));
                }
            }
        }
        _ => return 0,
    }
    match (crash_map(&incumbent.fault), crash_map(&candidate.fault)) {
        (Some(a), Some(b)) => {
            for label in a.keys().chain(b.keys()) {
                let x = a.get(label).copied().unwrap_or(u64::MAX);
                let y = b.get(label).copied().unwrap_or(u64::MAX);
                if x != y {
                    div = div.min(x.min(y).saturating_sub(1));
                }
            }
        }
        _ => {
            if incumbent.fault != candidate.fault {
                return 0;
            }
        }
    }
    let script = |topo: &TopologySpec| match topo {
        TopologySpec::Static => Some(Vec::new()),
        TopologySpec::Scripted(ring) => Some(ring.script.clone()),
        _ => None,
    };
    match (script(&incumbent.topo), script(&candidate.topo)) {
        (Some(a), Some(b)) if a == b => {}
        (Some(a), Some(b)) if a.len() == b.len() => {
            for (s, (&x, &y)) in a.iter().zip(&b).enumerate() {
                if x != y {
                    div = div.min(s as u64);
                }
            }
        }
        // Static vs scripted: the empty script is the all-KEEP_ALL one,
        // so the first slot that removes an edge is the first divergence.
        // (A slot only steers rounds `s, s+len, …` and `s < len`, so the
        // prefix below `s` matches the static topology.)
        (Some(a), Some(b)) if a.is_empty() || b.is_empty() => {
            let scripted = if a.is_empty() { &b } else { &a };
            if let Some(s) = scripted.iter().position(|&e| e != ScriptedRing::KEEP_ALL) {
                div = div.min(s as u64);
            }
        }
        _ => {
            if incumbent.topo != candidate.topo {
                return 0;
            }
        }
    }
    div
}

/// The per-instance checkpoint ladder: a bounded set of snapshots along
/// the current incumbent's trajectory, lazily extended to the deepest
/// divergence round a batch asks for, plus the incumbent's terminal
/// outcome once the ladder has run that far (the cheapest fork of all: a
/// candidate diverging *after* the incumbent's run ended is the same run,
/// and its outcome is a clone).
struct ForkState {
    /// The instance-wide algorithm setup (shared by every candidate: same
    /// configuration, same seed ⇒ same certified parameters).
    setup: KnownSetup,
    /// Checkpoints of the incumbent's run, ascending in round.
    rungs: Vec<ScenarioCheckpoint>,
    /// Executed iterations between rung captures (doubles on thinning).
    stride: u64,
    /// The adversary the ladder currently follows.
    built_for: Option<Scenario>,
    /// The trajectory is materialized through this round (`u64::MAX` once
    /// terminal).
    covered_to: u64,
    /// The incumbent run's outcome, once the ladder stepped it to
    /// termination.
    terminal: Option<RunOutcome>,
    /// Set when forking hit a wall (a behavior declined to fork, an
    /// engine error in the ladder): evaluation falls back to the batch
    /// path for the rest of this instance.
    disabled: bool,
}

impl ForkState {
    fn new(base: &Scenario) -> Self {
        ForkState {
            setup: KnownSetup::for_configuration(&base.cfg, base.cfg.size() as u32, base.seed),
            rungs: Vec::new(),
            stride: LADDER_STRIDE,
            built_for: None,
            covered_to: 0,
            terminal: None,
            disabled: false,
        }
    }

    /// Re-aims the ladder at `incumbent` (keeping every rung on the shared
    /// prefix of the old and new trajectories) and extends it through
    /// round `up_to`, charging the stepping cost to `counters`.
    fn ensure(
        &mut self,
        incumbent: &Scenario,
        up_to: u64,
        scratch: &mut EngineScratch,
        counters: &mut EvalCounters,
    ) {
        if self.disabled {
            return;
        }
        let changed = match &self.built_for {
            Some(old) => {
                old.schedule != incumbent.schedule
                    || old.fault != incumbent.fault
                    || old.topo != incumbent.topo
            }
            None => true,
        };
        if changed {
            let keep_to = match &self.built_for {
                Some(old) => divergence_round(old, incumbent),
                None => 0,
            };
            self.rungs.retain(|cp| cp.round() <= keep_to);
            match self.terminal.take() {
                // The old incumbent's run ended before the new one could
                // diverge from it: the whole trajectory carries over.
                Some(outcome) if keep_to > outcome.rounds => self.terminal = Some(outcome),
                _ => self.covered_to = self.covered_to.min(keep_to),
            }
            self.built_for = Some(incumbent.clone());
        }
        if self.terminal.is_some() || up_to <= self.covered_to {
            return;
        }
        let scenario = gather_scenario(incumbent);
        let mut run = match ScenarioRun::begin(&scenario, &self.setup, scratch) {
            Ok(run) => run,
            Err(_) => {
                self.disabled = true;
                return;
            }
        };
        let mut resumed = 0;
        if let Some(cp) = self.rungs.last() {
            if run.resume_from(cp) {
                resumed = cp.executed_rounds();
            } else {
                self.disabled = true;
                return;
            }
        }
        let mut executed = resumed;
        let mut next_capture = executed + self.stride;
        // The latest state not yet promoted to a durable rung. A step's
        // fast-forward can jump `next_round` arbitrarily far in one
        // iteration, so only a *rolling* capture guarantees a rung at the
        // deepest state still within the divergence window — a stride-only
        // scheme would routinely overshoot it and never fork anything.
        let mut pending: Option<ScenarioCheckpoint> = None;
        loop {
            if run.next_round() > up_to {
                if let Some(cp) = pending.take() {
                    self.push_rung(cp);
                }
                // The run materialized through `next_round() - 1`; keep the
                // frontier state too, so a later, deeper extension resumes
                // here instead of replaying, and mark everything below it
                // covered (no extension can add rungs beneath the frontier).
                self.covered_to = match run.checkpoint() {
                    Some(cp) => {
                        let frontier = cp.round().saturating_sub(1).max(up_to);
                        self.push_rung(cp);
                        frontier
                    }
                    None => up_to,
                };
                break;
            }
            if executed > resumed {
                match run.checkpoint() {
                    Some(cp) => {
                        if executed >= next_capture {
                            self.push_rung(cp);
                            pending = None;
                            next_capture = executed + self.stride;
                        } else {
                            pending = Some(cp);
                        }
                    }
                    None => {
                        self.disabled = true;
                        break;
                    }
                }
            }
            match run.step(scratch) {
                None => executed += 1,
                Some(Ok(outcome)) => {
                    if let Some(cp) = pending.take() {
                        self.push_rung(cp);
                    }
                    executed = outcome.engine_iterations;
                    self.terminal = Some(outcome);
                    self.covered_to = u64::MAX;
                    break;
                }
                Some(Err(_)) => {
                    self.disabled = true;
                    break;
                }
            }
        }
        counters.ladder += executed.saturating_sub(resumed);
        counters.executed += executed.saturating_sub(resumed);
    }

    /// Appends a rung, halving the ladder (and doubling the stride) when
    /// it outgrows [`LADDER_CAPACITY`]. Thinning keeps even indices, so
    /// the deepest rung always survives the length-odd overflow and the
    /// surviving rungs stay evenly spread.
    fn push_rung(&mut self, cp: ScenarioCheckpoint) {
        self.rungs.push(cp);
        if self.rungs.len() > LADDER_CAPACITY {
            let mut index = 0;
            self.rungs.retain(|_| {
                let keep = index % 2 == 0;
                index += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    /// The deepest rung a candidate diverging at round `div` may resume
    /// from.
    fn deepest_for(&self, div: u64) -> Option<&ScenarioCheckpoint> {
        self.rungs.iter().rev().find(|cp| cp.round() <= div)
    }
}

/// Measures a batch of same-instance candidates, with the identical
/// preflight and outcome judgment the campaign runner applies — so a
/// witness record replays bit for bit through the solo
/// [`execute_scenario`](crate::execute_scenario) path.
///
/// With a store, runnable candidates are served from the cache where
/// possible and the rest write through after execution; the returned
/// records are bitwise independent of the cache state (cached entries
/// *are* prior engine output, re-verified by key and seed), so the
/// search walk does not fork on cache hits.
///
/// With `fork` provided (and not disabled), candidates run solo through
/// [`ScenarioRun`], deepest divergence first, each resuming from the
/// deepest valid rung of the incumbent's checkpoint ladder — or, past the
/// incumbent run's end, cloning its terminal outcome outright. Records
/// land in their original slots, so the caller's selection scan (and with
/// it the walk) is order-blind to the strategy. Without `fork`, the
/// batch flows through `run_scenario_batch_with_scratch` as before.
fn evaluate(
    candidates: &[Scenario],
    scratch: &mut EngineScratch,
    store: Option<&Store>,
    fork: Option<(&mut ForkState, &Scenario)>,
    counters: &mut EvalCounters,
) -> Vec<RunRecord> {
    let mut records: Vec<RunRecord> = candidates.iter().map(runner::base_record).collect();
    let mut runnable: Vec<usize> = Vec::new();
    for (i, candidate) in candidates.iter().enumerate() {
        if runner::preflight(candidate, &mut records[i]) {
            if let Some(cached) = store.and_then(|s| s.lookup(candidate)) {
                records[i] = cached;
            } else {
                runnable.push(i);
            }
        }
    }
    if runnable.is_empty() {
        return records;
    }

    if let Some((state, incumbent)) = fork {
        if !state.disabled {
            let mut order: Vec<(usize, u64)> = runnable
                .iter()
                .map(|&i| (i, divergence_round(incumbent, &candidates[i])))
                .collect();
            let deepest = order.iter().map(|&(_, div)| div).max().unwrap_or(0);
            state.ensure(incumbent, deepest, scratch, counters);
            if !state.disabled {
                // Deepest divergence first: those candidates reuse the
                // freshest (and largest) prefixes; ties run in batch
                // order. The records still land in their original slots.
                order.sort_by_key(|&(i, div)| (Reverse(div), i));
                for (i, div) in order {
                    let candidate = &candidates[i];
                    let outcome = if let Some(terminal) =
                        state.terminal.as_ref().filter(|o| div > o.rounds)
                    {
                        // The candidate diverges only after the incumbent
                        // run's final round: same run, same outcome.
                        counters.forked += 1;
                        counters.saved += terminal.engine_iterations;
                        Ok(terminal.clone())
                    } else {
                        let scenario = gather_scenario(candidate);
                        match ScenarioRun::begin(&scenario, &state.setup, scratch) {
                            Ok(mut run) => {
                                let mut resumed = 0;
                                if let Some(cp) = state.deepest_for(div) {
                                    if run.resume_from(cp) {
                                        resumed = cp.executed_rounds();
                                    }
                                }
                                let outcome = run.finish(scratch);
                                if let Ok(o) = &outcome {
                                    counters.executed +=
                                        o.engine_iterations.saturating_sub(resumed);
                                    if resumed > 0 {
                                        counters.forked += 1;
                                        counters.saved += resumed;
                                    }
                                }
                                outcome
                            }
                            Err(e) => Err(e),
                        }
                    };
                    runner::record_outcome(&mut records[i], candidate, outcome);
                    if let Some(store) = store {
                        store.insert(candidate, &records[i]);
                    }
                }
                return records;
            }
        }
    }

    let batch: Vec<GatherScenario<'_>> = runnable
        .iter()
        .map(|&i| gather_scenario(&candidates[i]))
        .collect();
    let outcomes = harness::run_scenario_batch_with_scratch(&batch, scratch);
    for (&i, outcome) in runnable.iter().zip(outcomes) {
        if let Ok(o) = &outcome {
            counters.executed += o.engine_iterations;
        }
        runner::record_outcome(&mut records[i], &candidates[i], outcome);
        if let Some(store) = store {
            store.insert(&candidates[i], &records[i]);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{scenario_seed, spread, ScenarioKind};
    use crate::record::ScenarioKey;
    use nochatter_core::CommMode;
    use nochatter_graph::generators;

    fn base_scenario() -> Scenario {
        let key = ScenarioKey {
            family: "ring".into(),
            n: 4,
            team: vec![2, 3],
            wake: "simul".into(),
            topo: "static".into(),
            fault: "none".into(),
            mode: "silent".into(),
            variant: "gather".into(),
            rep: 0,
        };
        Scenario {
            seed: scenario_seed(7, &key),
            key,
            cfg: spread(generators::ring(4), &[2, 3]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo: TopologySpec::Static,
            fault: FaultSpec::None,
            kind: ScenarioKind::Gather,
        }
    }

    fn small_space() -> AdversarySpace {
        AdversarySpace {
            wake_offsets: vec![vec![0], vec![0, 3, u64::MAX]],
            crash_rounds: vec![(Label::new(3).unwrap(), vec![u64::MAX, 16])],
            edge_script: vec![vec![ScriptedRing::KEEP_ALL, 0, 2]],
        }
    }

    #[test]
    fn genotype_zero_decodes_to_the_unperturbed_adversary() {
        let base = base_scenario();
        let space = small_space();
        let c = space.decode(&base, &[0, 0, 0, 0]);
        assert_eq!(c.schedule, WakeSchedule::Explicit(vec![0, 0]));
        assert_eq!(c.fault, FaultSpec::None);
        assert_eq!(c.topo, TopologySpec::Static);
        assert_eq!(c.key.topo, "static");
        assert_eq!(c.key.fault, "none");
        assert_eq!(c.seed, base.seed, "candidates share the instance seed");
        assert_eq!(c.cfg, base.cfg, "candidates share the instance graph");
    }

    #[test]
    fn decode_normalizes_wake_offsets_and_builds_pure_specs() {
        let base = base_scenario();
        let space = AdversarySpace {
            wake_offsets: vec![vec![5], vec![9, u64::MAX]],
            crash_rounds: vec![(Label::new(3).unwrap(), vec![u64::MAX, 16])],
            edge_script: vec![vec![ScriptedRing::KEEP_ALL, 1]],
        };
        let c = space.decode(&base, &[0, 0, 1, 1]);
        // Offsets (5, 9) anchor at the earliest finite wake: (0, 4).
        assert_eq!(c.schedule, WakeSchedule::Explicit(vec![0, 4]));
        assert_eq!(
            c.fault,
            FaultSpec::CrashAt(vec![CrashPoint {
                label: Label::new(3).unwrap(),
                round: 16,
            }])
        );
        assert_eq!(
            c.topo,
            TopologySpec::Scripted(ScriptedRing { script: vec![1] })
        );
        assert_eq!(c.key.wake, "explicit0.4");
        assert_eq!(c.key.fault, "crash3@16");
        // A schedule where nobody self-wakes is not runnable; the decode
        // collapses onto the base schedule instead.
        let dormant = space.decode(&base, &[0, 1, 0, 0]);
        // (5, MAX) still has a finite anchor; craft an all-MAX space:
        let all_max = AdversarySpace {
            wake_offsets: vec![vec![u64::MAX], vec![u64::MAX]],
            crash_rounds: vec![],
            edge_script: vec![],
        };
        assert_eq!(dormant.schedule, WakeSchedule::Explicit(vec![0, u64::MAX]));
        let collapsed = all_max.decode(&base, &[0, 0]);
        assert_eq!(collapsed.schedule, base.schedule);
    }

    #[test]
    fn objective_scores_rank_failures_over_slow_successes() {
        let base = base_scenario();
        let mut ok = runner::base_record(&base);
        ok.ok = true;
        ok.status = "gathered".into();
        ok.rounds = 100;
        let mut failed = ok.clone();
        failed.ok = false;
        failed.status = "not all agents declared".into();
        failed.rounds = 10;
        let mut rejected = ok.clone();
        rejected.ok = false;
        rejected.status = "unsupported: whatever".into();
        assert!(Objective::Failure.score(&failed) > Objective::Failure.score(&ok));
        assert!(Objective::Failure.score(&ok) > Objective::Failure.score(&rejected));
        assert_eq!(Objective::Failure.score(&rejected), (0, 0));
        assert_eq!(Objective::SlowGather.score(&ok), (1, 100));
        assert_eq!(Objective::SlowGather.score(&failed), (0, 0));
        assert_eq!(Objective::Failure.name(), "failure");
        assert_eq!(Objective::SlowGather.name(), "slow-gather");
    }

    #[test]
    fn candidate_count_is_the_choice_product() {
        assert_eq!(small_space().candidates(), 3 * 2 * 3);
        assert_eq!(small_space().dims(), 4);
    }

    #[test]
    fn search_finds_the_crash_failure_and_spends_its_budget() {
        let base = base_scenario();
        let spec = SearchSpec {
            name: "unit".into(),
            seed: 7,
            budget: 12,
            objective: Objective::Failure,
            instances: vec![(base, small_space())],
        };
        let report = run_search(&spec, 1);
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.evaluations <= 12);
        assert!(
            o.is_failure(),
            "the crash axis must yield a failure witness, got {} ({})",
            o.record.key,
            o.record.status
        );
        assert_eq!(report.failure_count(), 1);
        assert!(o.record.key.canonical().contains("crash3@16"));
    }

    #[test]
    fn report_serialization_is_deterministic_and_excludes_execution_facts() {
        let base = base_scenario();
        let spec = SearchSpec {
            name: "unit".into(),
            seed: 7,
            budget: 6,
            objective: Objective::Failure,
            instances: vec![(base, small_space())],
        };
        let mut a = run_search(&spec, 1);
        let mut b = run_search(&spec, 1);
        a.wall = Duration::from_secs(1);
        b.wall = Duration::from_secs(9);
        a.workers = 1;
        b.workers = 64;
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(a.to_json().contains("\"objective\": \"failure\""));
        assert!(a
            .to_csv()
            .starts_with("instance,evaluations,improvements,score_rank,score_rounds,key,"));
    }

    #[test]
    fn divergence_round_is_conservative_axis_by_axis() {
        let base = base_scenario();
        let space = small_space();
        let mk = |genotype: &[u32]| space.decode(&base, genotype);
        let zero = mk(&[0, 0, 0, 0]);
        // Identical specs: no divergence at all.
        assert_eq!(divergence_round(&zero, &mk(&[0, 0, 0, 0])), u64::MAX);
        // Wake 0 vs 3 on agent 2: fast-forward sees both, min(0,3)-1 → 0.
        assert_eq!(divergence_round(&zero, &mk(&[0, 1, 0, 0])), 0);
        // Crash never vs crash@16: min(MAX,16)-1 = 15.
        assert_eq!(divergence_round(&zero, &mk(&[0, 0, 1, 0])), 15);
        // Static vs a script removing an edge in slot 0: slot index = 0.
        assert_eq!(divergence_round(&zero, &mk(&[0, 0, 0, 1])), 0);
        // Crash@16 and a differing wake: the minimum over axes wins.
        assert_eq!(divergence_round(&mk(&[0, 1, 0, 0]), &mk(&[0, 0, 1, 0])), 0);
        // Two crash sets over disjoint labels compare via the union.
        let c16 = mk(&[0, 0, 1, 0]);
        assert_eq!(divergence_round(&c16, &mk(&[0, 0, 0, 0])), 15);
        // A shape mismatch on any axis vetoes forking outright.
        let mut seeded = zero.clone();
        seeded.fault = FaultSpec::SeededCrash {
            p: 0.5,
            seed: 1,
            max_crashes: 1,
        };
        assert_eq!(divergence_round(&zero, &seeded), 0);
        let mut simul = zero.clone();
        simul.schedule = WakeSchedule::Simultaneous;
        assert_eq!(divergence_round(&simul, &zero), 0);
        // Scripts of equal length diverge at the first differing slot.
        let mut s1 = zero.clone();
        s1.topo = TopologySpec::Scripted(ScriptedRing {
            script: vec![ScriptedRing::KEEP_ALL, 2],
        });
        let mut s2 = zero.clone();
        s2.topo = TopologySpec::Scripted(ScriptedRing {
            script: vec![ScriptedRing::KEEP_ALL, 3],
        });
        assert_eq!(divergence_round(&s1, &s2), 1);
        // Different script lengths are incomparable (slot reuse is modular).
        let mut s3 = zero.clone();
        s3.topo = TopologySpec::Scripted(ScriptedRing { script: vec![2] });
        assert_eq!(divergence_round(&s1, &s3), 0);
    }

    #[test]
    fn forked_and_scratch_searches_are_bitwise_identical() {
        let base = base_scenario();
        let spec = SearchSpec {
            name: "unit-fork".into(),
            seed: 7,
            budget: 14,
            objective: Objective::Failure,
            instances: vec![(base, small_space())],
        };
        let forked = run_search_with(&spec, 1, None, true);
        let scratch = run_search_with(&spec, 1, None, false);
        assert_eq!(forked.to_json(), scratch.to_json());
        assert_eq!(forked.to_csv(), scratch.to_csv());
        // The identity must not be vacuous: the crash axis (divergence
        // round 15) has to actually resume from the ladder.
        assert!(
            forked.total_forked_evals() > 0,
            "no evaluation forked — the ladder never engaged"
        );
        assert!(forked.total_rounds_saved() > 0);
        assert_eq!(scratch.total_forked_evals(), 0);
        assert_eq!(scratch.total_ladder_rounds(), 0);
        assert!(scratch.total_executed_rounds() > 0);
        // And the records themselves agree, not just their serialization.
        for (f, s) in forked.outcomes.iter().zip(&scratch.outcomes) {
            assert_eq!(f.record, s.record);
            assert_eq!(f.evaluations, s.evaluations);
        }
    }

    #[test]
    fn degenerate_spaces_and_zero_budgets_record_the_baseline() {
        let base = base_scenario();
        let solo = AdversarySpace {
            wake_offsets: vec![vec![0], vec![0]],
            crash_rounds: vec![],
            edge_script: vec![],
        };
        assert_eq!(solo.candidates(), 1);
        let spec = SearchSpec {
            name: "unit-degenerate".into(),
            seed: 7,
            budget: 64,
            objective: Objective::Failure,
            instances: vec![(base.clone(), solo)],
        };
        let report = run_search(&spec, 1);
        let o = &report.outcomes[0];
        assert_eq!(o.evaluations, 1, "a single-point space is one evaluation");
        assert_eq!(o.improvements, 0);
        assert!(o.record.ok, "the unperturbed baseline gathers");
        let zero = SearchSpec {
            name: "unit-budget0".into(),
            seed: 7,
            budget: 0,
            objective: Objective::Failure,
            instances: vec![(base, small_space())],
        };
        let report = run_search(&zero, 1);
        let o = &report.outcomes[0];
        assert_eq!(o.evaluations, 1, "budget 0 still records the baseline");
        assert_eq!(o.improvements, 0);
        assert!(o.record.ok);
        assert_eq!(report.total_evaluations(), 1);
    }

    #[test]
    fn write_files_round_trips() {
        let dir = std::env::temp_dir().join("nochatter-lab-search-test");
        let spec = SearchSpec {
            name: "unit-files".into(),
            seed: 7,
            budget: 2,
            objective: Objective::SlowGather,
            instances: vec![(base_scenario(), small_space())],
        };
        let report = run_search(&spec, 1);
        let artifacts = report.write_files(&dir).unwrap();
        assert_eq!(
            std::fs::read_to_string(artifacts.json).unwrap(),
            report.to_json()
        );
        assert_eq!(
            std::fs::read_to_string(artifacts.csv).unwrap(),
            report.to_csv()
        );
    }
}
