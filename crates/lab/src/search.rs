//! The adversary-search harness: a budgeted falsifier that hunts
//! worst-case scenarios instead of sweeping an oblivious grid.
//!
//! The campaign runner evaluates a fixed matrix of adversaries; this
//! module turns the same machinery into an *optimizer*. An
//! [`AdversarySpace`] declares, per instance, the discrete choices the
//! adversary controls — one wake offset per agent, one crash round per
//! crashable agent, one removed edge per script slot of a
//! [`ScriptedRing`](nochatter_sim::ScriptedRing) — and the search walks
//! that space with seeded random sampling plus greedy one-mutation local
//! search, maximizing an [`Objective`] (make the algorithm fail, or make
//! it slow). The best candidate found becomes the instance's *witness*:
//! a fully replayable [`Scenario`] whose key names the exact adversary.
//!
//! Three design rules keep the falsifier honest:
//!
//! * **Every candidate is a pure-function-of-round spec.** The search
//!   only ever emits `WakeSchedule::Explicit`, `FaultSpec::CrashAt` and
//!   `TopologySpec::Scripted` — declarative adversaries the engine
//!   resolves before the run, so determinism and the quiescence
//!   fast-forward survive, and any witness replays bit for bit through
//!   the ordinary solo [`execute_scenario`](crate::execute_scenario)
//!   path.
//! * **Candidate batches ride the batched engine pass.** Candidates of
//!   one instance share the base configuration and seed, so each
//!   evaluation batch flows through
//!   `run_scenario_batch_with_scratch` as a single instance group —
//!   the search inner loop inherits the campaign runner's throughput.
//! * **Determinism at any worker count.** The per-instance search is
//!   sequential and seeded from the instance's derived seed; instances
//!   shard over the work-stealing scheduler with index-ordered result
//!   slots. Same spec + budget ⇒ byte-identical [`SearchReport`] JSON
//!   and CSV for any worker count.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nochatter_core::harness::{self, GatherScenario};
use nochatter_graph::rng::derive_seed;
use nochatter_graph::Label;
use nochatter_sim::{
    CrashPoint, EngineScratch, FaultSpec, ScriptedRing, TopologySpec, WakeSchedule,
};

use crate::campaign::{wake_name, Scenario};
use crate::record::RunRecord;
use crate::report::{
    csv_escape, json_escape, record_csv_row, record_json_object, RECORD_CSV_COLUMNS,
};
use crate::runner;
use crate::sched;
use crate::store::{CacheStats, Store};

/// Salt separating the search's candidate-sampling stream from every other
/// consumer of a scenario seed.
const SALT_SEARCH: u64 = 0x5EA2C4;

/// How many random candidates a stuck search draws per kick (once the
/// incumbent's whole one-mutation neighborhood has been evaluated).
const KICK: usize = 8;

/// What the falsifier maximizes, per instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Objective {
    /// Hunt outright failures: a candidate whose run executes but does
    /// not meet the gathering criterion beats every success; among
    /// failures (and among successes) more rounds rank higher. The
    /// default falsifier objective.
    Failure,
    /// Hunt slow gatherings: maximize rounds-to-gather over candidates
    /// that still succeed (failures score zero — this objective measures
    /// the adversary's *delay* power, not its kill power).
    SlowGather,
}

impl Objective {
    /// The short name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Failure => "failure",
            Objective::SlowGather => "slow-gather",
        }
    }

    /// Scores a candidate's record: a lexicographic `(rank, rounds)` pair
    /// (bigger is worse for the algorithm, i.e. better for the
    /// adversary). Records that never truly executed — preflight
    /// rejections, engine errors, panics — score `(0, 0)` under either
    /// objective: an adversary that crashes the harness has falsified
    /// nothing.
    pub fn score(self, record: &RunRecord) -> (u64, u64) {
        let executed = !(record.status.starts_with("unsupported")
            || record.status.starts_with("engine error")
            || record.status.starts_with("panic"));
        match self {
            Objective::Failure => {
                if !executed {
                    (0, 0)
                } else if record.ok {
                    (1, record.rounds)
                } else {
                    (2, record.rounds)
                }
            }
            Objective::SlowGather => {
                if executed && record.ok {
                    (1, record.rounds)
                } else {
                    (0, 0)
                }
            }
        }
    }
}

/// The discrete adversary choices of one instance, axis by axis.
///
/// A genotype is one `u32` choice index per axis, in axis order: first the
/// wake axes, then the crash axes, then the edge-script axes. Every axis
/// must offer at least one choice; an axis the space does not want to
/// perturb simply lists its single base value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarySpace {
    /// Per-agent wake-offset choice lists, in the configuration's agent
    /// order (`u64::MAX` = never woken by the adversary, visit-only).
    /// Offsets are relative: decoding subtracts the smallest finite
    /// offset so some agent always wakes at round 0. Empty = keep the
    /// base scenario's schedule.
    pub wake_offsets: Vec<Vec<u64>>,
    /// Per-label crash-round choice lists (`u64::MAX` = never crash).
    /// Labels must be team members.
    pub crash_rounds: Vec<(Label, Vec<u64>)>,
    /// Per-slot edge-removal choice lists for a [`ScriptedRing`] script
    /// ([`ScriptedRing::KEEP_ALL`] = remove nothing that slot). Non-empty
    /// only over cycle base graphs. All-`KEEP_ALL` decodes to the static
    /// topology, so the unperturbed twin is part of the space.
    pub edge_script: Vec<Vec<u32>>,
}

impl AdversarySpace {
    /// The number of genotype axes.
    pub fn dims(&self) -> usize {
        self.wake_offsets.len() + self.crash_rounds.len() + self.edge_script.len()
    }

    /// The number of choices on axis `d` (axis order: wake, crash, edges).
    fn choices(&self, d: usize) -> usize {
        let w = self.wake_offsets.len();
        let c = self.crash_rounds.len();
        if d < w {
            self.wake_offsets[d].len()
        } else if d < w + c {
            self.crash_rounds[d - w].1.len()
        } else {
            self.edge_script[d - w - c].len()
        }
    }

    /// The total number of distinct genotypes (an upper bound on distinct
    /// candidates: wake normalization and the all-`KEEP_ALL` collapse make
    /// some genotypes decode identically).
    pub fn candidates(&self) -> u128 {
        (0..self.dims()).map(|d| self.choices(d) as u128).product()
    }

    /// Decodes a genotype into a concrete candidate scenario over `base`'s
    /// instance: same configuration, same derived seed, same algorithm —
    /// only the adversary axes (and with them the key) change.
    pub fn decode(&self, base: &Scenario, genotype: &[u32]) -> Scenario {
        assert_eq!(genotype.len(), self.dims(), "genotype covers every axis");
        let mut g = genotype.iter().map(|&c| c as usize);
        let schedule = if self.wake_offsets.is_empty() {
            base.schedule.clone()
        } else {
            let mut offsets: Vec<u64> = self
                .wake_offsets
                .iter()
                .map(|choices| choices[g.next().expect("wake axis present")])
                .collect();
            // Time is measured from the first wake-up, so the schedule is
            // only meaningful up to a shift: anchor the earliest finite
            // offset at round 0 (the engine rejects schedules without one).
            match offsets.iter().copied().filter(|&o| o != u64::MAX).min() {
                Some(min) => {
                    for o in &mut offsets {
                        if *o != u64::MAX {
                            *o -= min;
                        }
                    }
                    WakeSchedule::Explicit(offsets)
                }
                // Nobody self-wakes: not a runnable schedule; keep the
                // base one (the candidate collapses onto another point).
                None => base.schedule.clone(),
            }
        };
        let points: Vec<CrashPoint> = self
            .crash_rounds
            .iter()
            .map(|&(label, ref choices)| (label, choices[g.next().expect("crash axis present")]))
            .filter(|&(_, round)| round != u64::MAX)
            .map(|(label, round)| CrashPoint { label, round })
            .collect();
        let fault = if points.is_empty() {
            FaultSpec::None
        } else {
            FaultSpec::CrashAt(points)
        };
        let script: Vec<u32> = self
            .edge_script
            .iter()
            .map(|choices| choices[g.next().expect("edge axis present")])
            .collect();
        let topo = if script.iter().all(|&e| e == ScriptedRing::KEEP_ALL) {
            TopologySpec::Static
        } else {
            TopologySpec::Scripted(ScriptedRing { script })
        };
        let mut key = base.key.clone();
        key.wake = wake_name(&schedule);
        key.topo = topo.short_name();
        key.fault = fault.short_name();
        Scenario {
            key,
            cfg: base.cfg.clone(),
            mode: base.mode,
            schedule,
            topo,
            fault,
            kind: base.kind.clone(),
            seed: base.seed,
        }
    }
}

/// A declarative search: which instances to attack, with what adversary
/// space, under what objective and budget.
#[derive(Clone, Debug)]
pub struct SearchSpec {
    /// Search name (also the report file stem).
    pub name: String,
    /// The master seed the base scenarios were derived under (recorded in
    /// the report; candidate sampling streams derive from each instance's
    /// own scenario seed).
    pub seed: u64,
    /// Candidate evaluations per instance (the incumbent's first
    /// evaluation included).
    pub budget: u64,
    /// What the adversary maximizes.
    pub objective: Objective,
    /// The instances under attack: each base scenario (the unperturbed
    /// cell) paired with its adversary space.
    pub instances: Vec<(Scenario, AdversarySpace)>,
}

/// The best adversary one instance's search found.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The instance sub-key (`family/n…/t…/r…`) of the attacked cell.
    pub instance: String,
    /// Candidate evaluations actually spent (≤ budget; less only when the
    /// space was exhausted early).
    pub evaluations: u64,
    /// How many times a strictly better candidate replaced the incumbent.
    pub improvements: u64,
    /// The witness's objective score (`(rank, rounds)`, lexicographic).
    pub score: (u64, u64),
    /// The winning candidate, fully replayable: running this scenario
    /// through [`execute_scenario`](crate::execute_scenario) reproduces
    /// [`SearchOutcome::record`] bit for bit.
    pub witness: Scenario,
    /// The witness's measured record (key = the replayable witness key).
    pub record: RunRecord,
}

impl SearchOutcome {
    /// Whether the witness actually falsifies the algorithm: its run
    /// executed and did not meet the gathering criterion.
    pub fn is_failure(&self) -> bool {
        Objective::Failure.score(&self.record).0 == 2
    }
}

/// The collected result of one adversary search.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Search name (also the report file stem).
    pub name: String,
    /// The master seed of the spec.
    pub seed: u64,
    /// Candidate evaluations per instance.
    pub budget: u64,
    /// What the adversary maximized.
    pub objective: Objective,
    /// One outcome per instance, in spec order.
    pub outcomes: Vec<SearchOutcome>,
    /// How many worker threads executed the search (not serialized into
    /// the deterministic reports).
    pub workers: usize,
    /// Wall-clock duration of the search (not serialized into the
    /// deterministic reports).
    pub wall: Duration,
    /// Candidate-evaluation cache hit/miss counts when the search ran
    /// against a result store (`None` with caching off; not serialized
    /// into the deterministic reports).
    pub cache: Option<CacheStats>,
}

impl SearchReport {
    /// How many instances ended with a genuine failure witness.
    pub fn failure_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failure()).count()
    }

    /// Total candidate evaluations across all instances.
    pub fn total_evaluations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.evaluations).sum()
    }

    /// The deterministic JSON report: search identity plus one witness
    /// object per instance, in spec order. Identical for any worker
    /// count (wall-clock time and worker count are excluded). Each
    /// witness's `record` object has the exact shape of a campaign
    /// record, so the two report kinds diff against each other cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"search\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"objective\": \"{}\",", self.objective.name());
        let _ = writeln!(out, "  \"instance_count\": {},", self.outcomes.len());
        let _ = writeln!(out, "  \"failure_count\": {},", self.failure_count());
        let _ = writeln!(
            out,
            "  \"total_evaluations\": {},",
            self.total_evaluations()
        );
        let _ = writeln!(out, "  \"witnesses\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 < self.outcomes.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"instance\": \"{}\", \"evaluations\": {}, \"improvements\": {}, \
                 \"score\": [{}, {}], \"record\": {}}}{}",
                json_escape(&o.instance),
                o.evaluations,
                o.improvements,
                o.score.0,
                o.score.1,
                record_json_object(&o.record),
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// The deterministic CSV report: the search columns followed by the
    /// witness record under the campaign record columns.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "instance,evaluations,improvements,score_rank,score_rounds,{RECORD_CSV_COLUMNS}\n"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                csv_escape(&o.instance),
                o.evaluations,
                o.improvements,
                o.score.0,
                o.score.1,
                record_csv_row(&o.record)
            );
        }
        out
    }

    /// Writes `<dir>/<name>.json` and `<dir>/<name>.csv`, creating `dir`
    /// if needed; returns the two paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self, dir: &Path) -> io::Result<SearchArtifacts> {
        std::fs::create_dir_all(dir)?;
        let artifacts = SearchArtifacts {
            json: dir.join(format!("{}.json", self.name)),
            csv: dir.join(format!("{}.csv", self.name)),
        };
        std::fs::write(&artifacts.json, self.to_json())?;
        std::fs::write(&artifacts.csv, self.to_csv())?;
        Ok(artifacts)
    }
}

/// Where [`SearchReport::write_files`] put its two artifacts.
#[derive(Clone, Debug)]
pub struct SearchArtifacts {
    /// The deterministic per-witness JSON report.
    pub json: PathBuf,
    /// The deterministic per-witness CSV report.
    pub csv: PathBuf,
}

/// Runs the search of every instance of `spec` on `workers` threads
/// (0 = one per available core) and collects the outcomes in spec order.
///
/// The report is bit-for-bit identical for any worker count: each
/// instance's search is sequential and seeded from its own derived seed,
/// and outcomes land in index-ordered result slots regardless of which
/// worker ran them. An instance whose search panics yields a zero-score
/// outcome with a `"panic: ..."` record instead of aborting the hunt.
pub fn run_search(spec: &SearchSpec, workers: usize) -> SearchReport {
    run_search_cached(spec, workers, None)
}

/// [`run_search`] against an optional result store: every candidate a
/// search evaluates is an ordinary [`Scenario`] with a fully replayable
/// key, so its record caches exactly like a campaign cell — a warm
/// re-run of the same spec serves the whole walk from the store, and the
/// per-instance baseline cell (genotype zero) hits across presets that
/// share instances. Cached and engine-produced records are bitwise
/// identical, so the walk — and with it the deterministic reports — is
/// unchanged by the cache state.
pub fn run_search_cached(spec: &SearchSpec, workers: usize, store: Option<&Store>) -> SearchReport {
    let workers = if workers == 0 {
        runner::default_workers()
    } else {
        workers
    }
    .min(spec.instances.len().max(1));
    let start = Instant::now();
    let stats_before = store.map(|s| s.stats());
    let outcomes = sched::run_sharded(
        spec.instances.len(),
        workers,
        |i, scratch| {
            let (base, space) = &spec.instances[i];
            search_instance(base, space, spec.objective, spec.budget, scratch, store)
        },
        |i, message| {
            let base = &spec.instances[i].0;
            SearchOutcome {
                instance: base.key.instance_canonical(),
                evaluations: 0,
                improvements: 0,
                score: (0, 0),
                witness: base.clone(),
                record: runner::panic_record(base, &message),
            }
        },
    );
    let cache = match (store, stats_before) {
        (Some(s), Some(before)) => {
            let after = s.stats();
            Some(CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            })
        }
        _ => None,
    };
    SearchReport {
        name: spec.name.clone(),
        seed: spec.seed,
        budget: spec.budget,
        objective: spec.objective,
        outcomes,
        workers,
        wall: start.elapsed(),
        cache,
    }
}

/// The sequential per-instance search: greedy one-mutation local search
/// around the incumbent, with seeded random kicks once the neighborhood
/// is exhausted. Deterministic given `(base.seed, space, budget)`.
fn search_instance(
    base: &Scenario,
    space: &AdversarySpace,
    objective: Objective,
    budget: u64,
    scratch: &mut EngineScratch,
    store: Option<&Store>,
) -> SearchOutcome {
    let dims = space.dims();
    for d in 0..dims {
        assert!(space.choices(d) > 0, "adversary axis {d} offers no choice");
    }
    let stream = derive_seed(base.seed, &[SALT_SEARCH]);
    // Dedup on the *decoded* adversary (wake normalization and the
    // all-KEEP_ALL collapse map several genotypes onto one candidate).
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let axis_key = |s: &Scenario| format!("{}|{}|{}", s.key.wake, s.key.topo, s.key.fault);

    let mut incumbent = vec![0u32; dims];
    let first = space.decode(base, &incumbent);
    seen.insert(axis_key(&first));
    let first_record = evaluate(std::slice::from_ref(&first), scratch, store)
        .pop()
        .expect("one candidate, one record");
    let mut evaluations = 1u64;
    let mut improvements = 0u64;
    let mut best = (objective.score(&first_record), first, first_record);
    let mut draws = 0u64;

    while evaluations < budget {
        let remaining = (budget - evaluations) as usize;
        // The incumbent's one-mutation neighborhood, in axis/choice order,
        // truncated at the remaining budget.
        let mut batch: Vec<(Vec<u32>, Scenario)> = Vec::new();
        'neighborhood: for d in 0..dims {
            for choice in 0..space.choices(d) as u32 {
                if choice == incumbent[d] {
                    continue;
                }
                let mut genotype = incumbent.clone();
                genotype[d] = choice;
                let candidate = space.decode(base, &genotype);
                if seen.insert(axis_key(&candidate)) {
                    batch.push((genotype, candidate));
                    if batch.len() == remaining {
                        break 'neighborhood;
                    }
                }
            }
        }
        if batch.is_empty() {
            // Neighborhood exhausted: kick to seeded random genotypes.
            let want = KICK.min(remaining);
            let mut attempts = 0usize;
            while batch.len() < want && attempts < 64 * KICK {
                attempts += 1;
                let genotype: Vec<u32> = (0..dims)
                    .map(|d| {
                        (derive_seed(stream, &[draws, d as u64]) % space.choices(d) as u64) as u32
                    })
                    .collect();
                draws += 1;
                let candidate = space.decode(base, &genotype);
                if seen.insert(axis_key(&candidate)) {
                    batch.push((genotype, candidate));
                }
            }
            if batch.is_empty() {
                break; // the whole reachable space is evaluated
            }
        }
        let candidates: Vec<Scenario> = batch.iter().map(|(_, c)| c.clone()).collect();
        let records = evaluate(&candidates, scratch, store);
        evaluations += records.len() as u64;
        for ((genotype, candidate), record) in batch.into_iter().zip(records) {
            let score = objective.score(&record);
            // Strictly-greater only: ties keep the earlier candidate, so
            // the walk (and the witness) is deterministic.
            if score > best.0 {
                best = (score, candidate, record);
                incumbent = genotype;
                improvements += 1;
            }
        }
    }

    SearchOutcome {
        instance: base.key.instance_canonical(),
        evaluations,
        improvements,
        score: best.0,
        witness: best.1,
        record: best.2,
    }
}

/// Measures a batch of same-instance candidates through the batched
/// engine pass, with the identical preflight and outcome judgment the
/// campaign runner applies — so a witness record replays bit for bit
/// through the solo [`execute_scenario`](crate::execute_scenario) path.
///
/// With a store, runnable candidates are served from the cache where
/// possible and the rest write through after execution; the returned
/// records are bitwise independent of the cache state (cached entries
/// *are* prior engine output, re-verified by key and seed), so the
/// search walk does not fork on cache hits.
fn evaluate(
    candidates: &[Scenario],
    scratch: &mut EngineScratch,
    store: Option<&Store>,
) -> Vec<RunRecord> {
    let mut records: Vec<RunRecord> = candidates.iter().map(runner::base_record).collect();
    let mut runnable: Vec<usize> = Vec::new();
    for (i, candidate) in candidates.iter().enumerate() {
        if runner::preflight(candidate, &mut records[i]) {
            if let Some(cached) = store.and_then(|s| s.lookup(candidate)) {
                records[i] = cached;
            } else {
                runnable.push(i);
            }
        }
    }
    let batch: Vec<GatherScenario<'_>> = runnable
        .iter()
        .map(|&i| {
            let s = &candidates[i];
            GatherScenario {
                cfg: &s.cfg,
                mode: s.mode,
                schedule: s.schedule.clone(),
                topo: s.topo.clone(),
                fault: s.fault.clone(),
                seed: s.seed,
                trace_capacity: Some(runner::TRACE_CAPACITY),
            }
        })
        .collect();
    let outcomes = harness::run_scenario_batch_with_scratch(&batch, scratch);
    for (&i, outcome) in runnable.iter().zip(outcomes) {
        runner::record_outcome(&mut records[i], &candidates[i], outcome);
        if let Some(store) = store {
            store.insert(&candidates[i], &records[i]);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{scenario_seed, spread, ScenarioKind};
    use crate::record::ScenarioKey;
    use nochatter_core::CommMode;
    use nochatter_graph::generators;

    fn base_scenario() -> Scenario {
        let key = ScenarioKey {
            family: "ring".into(),
            n: 4,
            team: vec![2, 3],
            wake: "simul".into(),
            topo: "static".into(),
            fault: "none".into(),
            mode: "silent".into(),
            variant: "gather".into(),
            rep: 0,
        };
        Scenario {
            seed: scenario_seed(7, &key),
            key,
            cfg: spread(generators::ring(4), &[2, 3]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo: TopologySpec::Static,
            fault: FaultSpec::None,
            kind: ScenarioKind::Gather,
        }
    }

    fn small_space() -> AdversarySpace {
        AdversarySpace {
            wake_offsets: vec![vec![0], vec![0, 3, u64::MAX]],
            crash_rounds: vec![(Label::new(3).unwrap(), vec![u64::MAX, 16])],
            edge_script: vec![vec![ScriptedRing::KEEP_ALL, 0, 2]],
        }
    }

    #[test]
    fn genotype_zero_decodes_to_the_unperturbed_adversary() {
        let base = base_scenario();
        let space = small_space();
        let c = space.decode(&base, &[0, 0, 0, 0]);
        assert_eq!(c.schedule, WakeSchedule::Explicit(vec![0, 0]));
        assert_eq!(c.fault, FaultSpec::None);
        assert_eq!(c.topo, TopologySpec::Static);
        assert_eq!(c.key.topo, "static");
        assert_eq!(c.key.fault, "none");
        assert_eq!(c.seed, base.seed, "candidates share the instance seed");
        assert_eq!(c.cfg, base.cfg, "candidates share the instance graph");
    }

    #[test]
    fn decode_normalizes_wake_offsets_and_builds_pure_specs() {
        let base = base_scenario();
        let space = AdversarySpace {
            wake_offsets: vec![vec![5], vec![9, u64::MAX]],
            crash_rounds: vec![(Label::new(3).unwrap(), vec![u64::MAX, 16])],
            edge_script: vec![vec![ScriptedRing::KEEP_ALL, 1]],
        };
        let c = space.decode(&base, &[0, 0, 1, 1]);
        // Offsets (5, 9) anchor at the earliest finite wake: (0, 4).
        assert_eq!(c.schedule, WakeSchedule::Explicit(vec![0, 4]));
        assert_eq!(
            c.fault,
            FaultSpec::CrashAt(vec![CrashPoint {
                label: Label::new(3).unwrap(),
                round: 16,
            }])
        );
        assert_eq!(
            c.topo,
            TopologySpec::Scripted(ScriptedRing { script: vec![1] })
        );
        assert_eq!(c.key.wake, "explicit0.4");
        assert_eq!(c.key.fault, "crash3@16");
        // A schedule where nobody self-wakes is not runnable; the decode
        // collapses onto the base schedule instead.
        let dormant = space.decode(&base, &[0, 1, 0, 0]);
        // (5, MAX) still has a finite anchor; craft an all-MAX space:
        let all_max = AdversarySpace {
            wake_offsets: vec![vec![u64::MAX], vec![u64::MAX]],
            crash_rounds: vec![],
            edge_script: vec![],
        };
        assert_eq!(dormant.schedule, WakeSchedule::Explicit(vec![0, u64::MAX]));
        let collapsed = all_max.decode(&base, &[0, 0]);
        assert_eq!(collapsed.schedule, base.schedule);
    }

    #[test]
    fn objective_scores_rank_failures_over_slow_successes() {
        let base = base_scenario();
        let mut ok = runner::base_record(&base);
        ok.ok = true;
        ok.status = "gathered".into();
        ok.rounds = 100;
        let mut failed = ok.clone();
        failed.ok = false;
        failed.status = "not all agents declared".into();
        failed.rounds = 10;
        let mut rejected = ok.clone();
        rejected.ok = false;
        rejected.status = "unsupported: whatever".into();
        assert!(Objective::Failure.score(&failed) > Objective::Failure.score(&ok));
        assert!(Objective::Failure.score(&ok) > Objective::Failure.score(&rejected));
        assert_eq!(Objective::Failure.score(&rejected), (0, 0));
        assert_eq!(Objective::SlowGather.score(&ok), (1, 100));
        assert_eq!(Objective::SlowGather.score(&failed), (0, 0));
        assert_eq!(Objective::Failure.name(), "failure");
        assert_eq!(Objective::SlowGather.name(), "slow-gather");
    }

    #[test]
    fn candidate_count_is_the_choice_product() {
        assert_eq!(small_space().candidates(), 3 * 2 * 3);
        assert_eq!(small_space().dims(), 4);
    }

    #[test]
    fn search_finds_the_crash_failure_and_spends_its_budget() {
        let base = base_scenario();
        let spec = SearchSpec {
            name: "unit".into(),
            seed: 7,
            budget: 12,
            objective: Objective::Failure,
            instances: vec![(base, small_space())],
        };
        let report = run_search(&spec, 1);
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.evaluations <= 12);
        assert!(
            o.is_failure(),
            "the crash axis must yield a failure witness, got {} ({})",
            o.record.key,
            o.record.status
        );
        assert_eq!(report.failure_count(), 1);
        assert!(o.record.key.canonical().contains("crash3@16"));
    }

    #[test]
    fn report_serialization_is_deterministic_and_excludes_execution_facts() {
        let base = base_scenario();
        let spec = SearchSpec {
            name: "unit".into(),
            seed: 7,
            budget: 6,
            objective: Objective::Failure,
            instances: vec![(base, small_space())],
        };
        let mut a = run_search(&spec, 1);
        let mut b = run_search(&spec, 1);
        a.wall = Duration::from_secs(1);
        b.wall = Duration::from_secs(9);
        a.workers = 1;
        b.workers = 64;
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(a.to_json().contains("\"objective\": \"failure\""));
        assert!(a
            .to_csv()
            .starts_with("instance,evaluations,improvements,score_rank,score_rounds,key,"));
    }

    #[test]
    fn write_files_round_trips() {
        let dir = std::env::temp_dir().join("nochatter-lab-search-test");
        let spec = SearchSpec {
            name: "unit-files".into(),
            seed: 7,
            budget: 2,
            objective: Objective::SlowGather,
            instances: vec![(base_scenario(), small_space())],
        };
        let report = run_search(&spec, 1);
        let artifacts = report.write_files(&dir).unwrap();
        assert_eq!(
            std::fs::read_to_string(artifacts.json).unwrap(),
            report.to_json()
        );
        assert_eq!(
            std::fs::read_to_string(artifacts.csv).unwrap(),
            report.to_csv()
        );
    }
}
