//! Sharded, deterministic campaign execution.
//!
//! A campaign's scenarios are independent, so they shard trivially across a
//! [`std::thread`] worker pool pulling indices from an atomic cursor. Each
//! worker writes its [`RunRecord`] into the slot of its scenario — records
//! end up in key order regardless of which worker ran what, which is why a
//! 1-worker run and an 8-worker run produce byte-identical reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nochatter_core::unknown::{run_unknown, SliceEnumeration};
use nochatter_core::{harness, KnownSetup};
use nochatter_sim::{EngineScratch, RunOutcome};

use crate::campaign::{Campaign, Scenario, ScenarioKind};
use crate::record::{trace_digest, RunRecord};
use crate::report::CampaignReport;

/// Event-trace capacity per scenario: enough for every small-network run
/// the campaigns sweep; longer runs digest a deterministic prefix plus the
/// dropped-event count.
const TRACE_CAPACITY: usize = 1 << 16;

/// The number of workers [`run_campaign`] uses when the caller passes 0:
/// the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs every scenario of `campaign` on `workers` threads (0 = one per
/// available core) and collects the records in scenario-key order.
///
/// The report is bit-for-bit identical for any worker count: scenarios are
/// deterministic given their derived seed, and collection order is the
/// campaign's key order, not completion order.
pub fn run_campaign(campaign: &Campaign, workers: usize) -> CampaignReport {
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(campaign.len().max(1));
    let start = Instant::now();
    let scenarios = campaign.scenarios();
    let records: Vec<RunRecord> = if workers <= 1 {
        // One scratch threads through the whole campaign: steady-state
        // scenario execution performs no per-run engine allocations.
        let mut scratch = EngineScratch::new();
        scenarios
            .iter()
            .map(|s| execute_scenario_with_scratch(s, &mut scratch))
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; scenarios.len()]);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One scratch per worker, reused for every scenario the
                    // worker pulls.
                    let mut scratch = EngineScratch::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(index) else {
                            break;
                        };
                        let record = execute_scenario_with_scratch(scenario, &mut scratch);
                        slots.lock().expect("worker panicked")[index] = Some(record);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("worker panicked")
            .into_iter()
            .map(|slot| slot.expect("every scenario produces a record"))
            .collect()
    };
    CampaignReport {
        name: campaign.name().to_string(),
        seed: campaign.seed(),
        records,
        workers,
        wall: start.elapsed(),
    }
}

/// Executes one scenario with a fresh [`EngineScratch`]; see
/// [`execute_scenario_with_scratch`] for the bulk-execution form the
/// campaign runner uses.
pub fn execute_scenario(scenario: &Scenario) -> RunRecord {
    execute_scenario_with_scratch(scenario, &mut EngineScratch::new())
}

/// Executes one scenario and measures it into a [`RunRecord`], reusing the
/// caller's [`EngineScratch`] so bulk execution allocates nothing per run
/// in steady state. Never panics on algorithm failure: engine errors and
/// validation failures are recorded in the `status` field.
pub fn execute_scenario_with_scratch(
    scenario: &Scenario,
    scratch: &mut EngineScratch,
) -> RunRecord {
    let mut record = RunRecord {
        key: scenario.key.clone(),
        seed: scenario.seed,
        n_actual: scenario.cfg.size() as u32,
        ok: false,
        status: String::new(),
        rounds: 0,
        moves: 0,
        blocked_moves: 0,
        crashed_agents: 0,
        engine_iterations: 0,
        skipped_rounds: 0,
        max_colocation: 0,
        leader: None,
        node: None,
        size: None,
        trace_digest: None,
    };
    // Only the gathering variant runs under round-varying topologies or
    // the crash-fault adversary: the gossip and unknown-bound algorithms
    // drive their own engines and are static, fault-free runs by design.
    // Reject their dynamic/faulty cells loudly instead of silently running
    // them on the wrong model.
    if !scenario.topo.is_static() && !matches!(scenario.kind, ScenarioKind::Gather) {
        record.status = format!(
            "unsupported: {} variant is static-only",
            scenario.kind.variant_name()
        );
        return record;
    }
    if !scenario.fault.is_none() && !matches!(scenario.kind, ScenarioKind::Gather) {
        record.status = format!(
            "unsupported: {} variant has no fault axis",
            scenario.kind.variant_name()
        );
        return record;
    }
    // Matrix expansion skips incompatible cells, but explicit scenario
    // lists (`Campaign::from_scenarios`) can still pair a topology with a
    // graph it cannot run over — record that instead of panicking a
    // worker thread in the provider's view constructor.
    if !scenario.topo.compatible_with(scenario.cfg.graph()) {
        record.status = format!(
            "unsupported: topology {} cannot run over this graph",
            scenario.key.topo
        );
        return record;
    }
    let outcome = match &scenario.kind {
        ScenarioKind::Gather => harness::run_scenario_with_scratch(
            &scenario.cfg,
            scenario.mode,
            scenario.schedule.clone(),
            &scenario.topo,
            &scenario.fault,
            scenario.seed,
            Some(TRACE_CAPACITY),
            scratch,
        ),
        ScenarioKind::Gossip(scheme) => {
            let setup = KnownSetup::for_configuration(
                &scenario.cfg,
                scenario.cfg.size() as u32,
                scenario.seed,
            );
            let messages = scheme.payloads(&scenario.cfg);
            match harness::run_gossip_outcome(
                &scenario.cfg,
                &setup,
                scenario.mode,
                &messages,
                scenario.schedule.clone(),
            ) {
                Ok((outcome, reports)) => {
                    let mut expected: Vec<_> = messages.iter().map(|(_, m)| m.clone()).collect();
                    expected.sort();
                    let decoded_ok = reports.iter().all(|(_, rep)| {
                        let mut got = Vec::new();
                        for (payload, multiplicity) in rep.outcome.decoded() {
                            for _ in 0..multiplicity {
                                got.push(payload.clone());
                            }
                        }
                        got.sort();
                        got == expected
                    });
                    if !decoded_ok {
                        record.status = "gossip mismatch".into();
                        fill_outcome(&mut record, &outcome);
                        return record;
                    }
                    Ok(outcome)
                }
                Err(e) => Err(e),
            }
        }
        ScenarioKind::Unknown { decoys, est_mode } => {
            // The unknown-bound algorithm exists only in the weak model
            // (and consumes no seed: its schedule is fully determined by
            // the enumeration). Reject a talking-mode cell loudly instead
            // of running the silent algorithm under a mislabeled key.
            if scenario.mode != nochatter_core::CommMode::Silent {
                record.status = "unsupported: unknown variant has no talking baseline".into();
                return record;
            }
            let mut omega = decoys.clone();
            omega.push(scenario.cfg.clone());
            run_unknown(
                &scenario.cfg,
                SliceEnumeration::new(omega),
                *est_mode,
                scenario.schedule.clone(),
            )
            .map(|(outcome, _)| outcome)
        }
    };
    match outcome {
        Ok(outcome) => {
            fill_outcome(&mut record, &outcome);
            // A crashed agent can never declare, so a faulty cell's
            // success criterion is the survivors' agreement — exactly the
            // paper's gathering property restricted to the living. The
            // fault-free path keeps the full validator, byte for byte.
            let gathering = if scenario.fault.is_none() {
                outcome.gathering()
            } else {
                outcome.gathering_surviving()
            };
            match gathering {
                Ok(report) => {
                    // All three variants elect a leader on success; a
                    // unanimous `None` is agreement in the engine's eyes
                    // but a protocol regression in ours.
                    match report.leader {
                        None => record.status = "no leader elected".into(),
                        Some(l) if !scenario.cfg.contains_label(l) => {
                            record.status = format!("phantom leader {l}");
                        }
                        Some(_) => {
                            record.ok = true;
                            record.status = "gathered".into();
                            record.rounds = report.round;
                        }
                    }
                    record.leader = report.leader.map(|l| l.value());
                    record.node = Some(report.node.index() as u32);
                    record.size = report.size;
                }
                Err(e) => record.status = e.to_string(),
            }
        }
        Err(e) => record.status = format!("engine error: {e}"),
    }
    record
}

fn fill_outcome(record: &mut RunRecord, outcome: &RunOutcome) {
    record.rounds = outcome.rounds;
    record.moves = outcome.total_moves;
    record.blocked_moves = outcome.blocked_moves;
    record.crashed_agents = outcome.crashed_agents.len() as u32;
    record.engine_iterations = outcome.engine_iterations;
    record.skipped_rounds = outcome.skipped_rounds;
    record.max_colocation = outcome.max_colocation;
    record.trace_digest = outcome.trace.as_ref().map(trace_digest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Matrix;
    use nochatter_core::CommMode;
    use nochatter_graph::generators::Family;
    use nochatter_sim::WakeSchedule;

    fn campaign() -> Campaign {
        Matrix {
            families: vec![Family::Ring, Family::Star],
            sizes: vec![4, 5],
            teams: vec![vec![2, 3]],
            schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
            modes: vec![CommMode::Silent, CommMode::Talking],
            ..Matrix::new()
        }
        .campaign("runner-test", 11)
        .unwrap()
    }

    #[test]
    fn all_scenarios_gather() {
        let report = run_campaign(&campaign(), 1);
        assert_eq!(report.records.len(), 16);
        for r in &report.records {
            assert!(r.ok, "{} failed: {}", r.key, r.status);
            assert_eq!(r.status, "gathered");
            assert!(r.trace_digest.is_some());
            assert!(r.leader.is_some());
        }
    }

    #[test]
    fn worker_counts_agree_bit_for_bit() {
        let c = campaign();
        let one = run_campaign(&c, 1);
        let four = run_campaign(&c, 4);
        assert_eq!(one.records, four.records);
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.to_csv(), four.to_csv());
    }

    #[test]
    fn silent_is_never_faster_than_talking() {
        // Holds on these specific cells (rings/stars at n=4..5, where the
        // silent and talking executions stay phase-aligned); NOT a general
        // theorem — see tests/differential.rs at the workspace root for
        // the honest aggregate statement.
        let report = run_campaign(&campaign(), 2);
        let pairs = report.mode_pairs("silent", "talking");
        assert!(!pairs.is_empty());
        for (silent, talking) in pairs {
            assert!(
                silent.rounds >= talking.rounds,
                "{}: silent {} < talking {}",
                silent.key,
                silent.rounds,
                talking.rounds
            );
        }
    }

    #[test]
    fn talking_mode_unknown_is_rejected_not_mislabeled() {
        use crate::campaign::{spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_core::unknown::EstMode;
        use nochatter_graph::generators;

        let scenario = Scenario {
            key: ScenarioKey {
                family: "ring3".into(),
                n: 3,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: "static".into(),
                fault: "none".into(),
                mode: "talking".into(),
                variant: "unknown@1".into(),
                rep: 0,
            },
            cfg: spread(generators::ring(3), &[1, 2]).unwrap(),
            mode: CommMode::Talking,
            schedule: WakeSchedule::Simultaneous,
            topo: nochatter_sim::TopologySpec::Static,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Unknown {
                decoys: vec![],
                est_mode: EstMode::Conservative,
            },
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(record.status.contains("unsupported"), "{}", record.status);
    }

    #[test]
    fn incompatible_topology_records_unsupported_instead_of_panicking() {
        use crate::campaign::{spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_graph::dynamic::DynamicRing;
        use nochatter_graph::generators;

        // A dynamic ring over a path: Matrix expansion would skip this
        // cell, but an explicit scenario list can still construct it.
        let topo = nochatter_sim::TopologySpec::Ring(DynamicRing { seed: 3 });
        let scenario = Scenario {
            key: ScenarioKey {
                family: "path4".into(),
                n: 4,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: topo.short_name(),
                fault: "none".into(),
                mode: "silent".into(),
                variant: "gather".into(),
                rep: 0,
            },
            cfg: spread(generators::path(4), &[1, 2]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Gather,
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(
            record.status.contains("cannot run over this graph"),
            "{}",
            record.status
        );
    }

    #[test]
    fn dynamic_cells_of_static_only_variants_are_rejected_not_mislabeled() {
        use crate::campaign::{spread, PayloadScheme, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_graph::dynamic::DynamicRing;
        use nochatter_graph::generators;

        let topo = nochatter_sim::TopologySpec::Ring(DynamicRing { seed: 3 });
        let scenario = Scenario {
            key: ScenarioKey {
                family: "ring4".into(),
                n: 4,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: topo.short_name(),
                fault: "none".into(),
                mode: "silent".into(),
                variant: "gossip-u2".into(),
                rep: 0,
            },
            cfg: spread(generators::ring(4), &[1, 2]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Gossip(PayloadScheme::Uniform { len: 2 }),
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(record.status.contains("static-only"), "{}", record.status);
    }

    #[test]
    fn unknown_scenarios_run_through_the_pool() {
        use crate::campaign::{scenario_seed, spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_core::unknown::EstMode;
        use nochatter_graph::generators;

        let truth = spread(generators::ring(3), &[1, 2]).unwrap();
        let decoy = spread(generators::path(2), &[3, 4]).unwrap();
        let key = ScenarioKey {
            family: "ring3".into(),
            n: 3,
            team: vec![1, 2],
            wake: "simul".into(),
            topo: "static".into(),
            fault: "none".into(),
            mode: "silent".into(),
            variant: "unknown@2".into(),
            rep: 0,
        };
        let scenario = Scenario {
            seed: scenario_seed(1, &key),
            key,
            cfg: truth,
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo: nochatter_sim::TopologySpec::Static,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Unknown {
                decoys: vec![decoy],
                est_mode: EstMode::Conservative,
            },
        };
        let c = Campaign::from_scenarios("unknown-test", 1, vec![scenario]).unwrap();
        let report = run_campaign(&c, 2);
        let r = &report.records[0];
        assert!(r.ok, "{}", r.status);
        assert_eq!(r.size, Some(3), "must learn the exact size");
        assert_eq!(r.leader, Some(1));
    }
}
