//! Sharded, deterministic campaign execution.
//!
//! Execution is planned as *jobs* first: every gathering cell of one
//! instance sub-key (same family, size, team and rep — hence same graph,
//! configuration and derived seed) becomes one **batch job** executed
//! through the batched multi-run engine pass
//! (`nochatter_core::harness::run_scenario_batch_with_scratch`), which
//! builds the instance's exploration-sequence corpus once and interleaves
//! the cells — silent/talking twins, wake schedules, dynamic-topology and
//! fault variants — through one engine loop. Gossip and unknown-bound
//! cells drive their own engines and stay solo jobs.
//!
//! Jobs are then distributed over the work-stealing scheduler
//! ([`crate::sched`]): per-worker deques with steal-half rebalancing, one
//! reusable [`EngineScratch`] per worker, and lock-free per-job result
//! slots. Stealing reorders execution, never results — each record lands
//! in its scenario's key-order slot — so a 1-worker run and an 8-worker
//! run produce byte-identical reports. A scenario that panics is isolated:
//! its batch is re-run cell by cell under `catch_unwind` and the poisoned
//! cell becomes a failed [`RunRecord`] with status `"panic: ..."` instead
//! of aborting the campaign.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use nochatter_core::harness::GatherScenario;
use nochatter_core::unknown::{run_unknown, SliceEnumeration};
use nochatter_core::{harness, KnownSetup};
use nochatter_sim::{EngineScratch, RunOutcome, SimError};

use crate::campaign::{Campaign, Scenario, ScenarioKind};
use crate::record::{trace_digest, RunRecord};
use crate::report::CampaignReport;
use crate::sched;
use crate::store::{CacheStats, Store};

/// Event-trace capacity per scenario: enough for every small-network run
/// the campaigns sweep; longer runs digest a deterministic prefix plus the
/// dropped-event count.
pub(crate) const TRACE_CAPACITY: usize = 1 << 16;

/// The number of workers [`run_campaign`] uses when the caller passes 0:
/// the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs every scenario of `campaign` on `workers` threads (0 = one per
/// available core) and collects the records in scenario-key order.
///
/// The report is bit-for-bit identical for any worker count: scenarios are
/// deterministic given their derived seed, batch grouping is a pure
/// function of the campaign (instance sub-keys, in key order), and
/// collection order is the campaign's key order, not completion order. A
/// panicking scenario yields a `"panic: ..."` record instead of aborting
/// the run.
pub fn run_campaign(campaign: &Campaign, workers: usize) -> CampaignReport {
    run_campaign_cached(campaign, workers, None)
}

/// [`run_campaign`] against an optional result store: the planning phase
/// partitions cells into hits (loaded from the cache — byte for byte the
/// record the engine would produce) and misses (scheduled through the
/// ordinary work-stealing/batched path), and every completed miss job
/// writes its records through immediately, so a killed run resumes where
/// it stopped. Records merge in key order regardless of their source:
/// the JSON/CSV reports are byte-identical with the cache on, off, warm,
/// cold, or at any worker count. Panic records are never cached.
pub fn run_campaign_cached(
    campaign: &Campaign,
    workers: usize,
    store: Option<&Store>,
) -> CampaignReport {
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(campaign.len().max(1));
    let start = Instant::now();
    let scenarios = campaign.scenarios();
    let mut slots: Vec<Option<RunRecord>> = vec![None; scenarios.len()];
    let mut missing: Vec<usize> = Vec::new();
    if let Some(store) = store {
        for (index, scenario) in scenarios.iter().enumerate() {
            match store.lookup(scenario) {
                Some(record) => slots[index] = Some(record),
                None => missing.push(index),
            }
        }
    } else {
        missing = (0..scenarios.len()).collect();
    }
    let cache = store.map(|_| CacheStats {
        hits: (scenarios.len() - missing.len()) as u64,
        misses: missing.len() as u64,
    });
    let jobs = plan_jobs(scenarios, &missing);
    let results: Vec<Vec<(usize, RunRecord)>> = sched::run_sharded(
        jobs.len(),
        workers,
        |job, scratch| {
            let records = execute_job(&jobs[job], scenarios, scratch);
            // Write-through per completed job: records of a killed run are
            // already on disk, so the next run resumes past them. The
            // append order varies with stealing; reports don't — they
            // merge by key order, and the store is an unordered index.
            if let Some(store) = store {
                for (index, record) in &records {
                    store.insert(&scenarios[*index], record);
                }
            }
            records
        },
        // Backstop for a panic that escapes the per-scenario isolation
        // inside `execute_job` (e.g. while assembling records): fail every
        // cell of the job honestly rather than the whole campaign. Panic
        // records are harness faults, not results — never cached.
        |job, message| {
            jobs[job]
                .iter()
                .map(|&i| (i, panic_record(&scenarios[i], &message)))
                .collect()
        },
    );
    // Scatter the jobs' records into key order. Each scenario index is
    // owned by exactly one job; the replace() assert pins that invariant
    // (cache hits pre-fill their slots, and only miss indices form jobs).
    for (index, record) in results.into_iter().flatten() {
        let previous = slots[index].replace(record);
        assert!(previous.is_none(), "scenario {index} recorded twice");
    }
    let records = slots
        .into_iter()
        .map(|slot| slot.expect("every scenario produces a record"))
        .collect();
    CampaignReport {
        name: campaign.name().to_string(),
        seed: campaign.seed(),
        records,
        workers,
        wall: start.elapsed(),
        cache,
    }
}

/// Groups the scenario indices in `include` into execution jobs:
/// gathering cells bucket by instance sub-key (first-occurrence order — a
/// pure function of the campaign and the include list, independent of
/// workers), everything else runs solo.
fn plan_jobs(scenarios: &[Scenario], include: &[usize]) -> Vec<Vec<usize>> {
    let mut jobs: Vec<Vec<usize>> = Vec::new();
    let mut by_instance: HashMap<String, usize> = HashMap::new();
    for &index in include {
        let scenario = &scenarios[index];
        if matches!(scenario.kind, ScenarioKind::Gather) {
            match by_instance.entry(scenario.key.instance_canonical()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    jobs[*slot.get()].push(index);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(jobs.len());
                    jobs.push(vec![index]);
                }
            }
        } else {
            jobs.push(vec![index]);
        }
    }
    jobs
}

/// Executes one job (a same-instance batch or a solo cell) with
/// per-scenario panic isolation.
fn execute_job(
    job: &[usize],
    scenarios: &[Scenario],
    scratch: &mut EngineScratch,
) -> Vec<(usize, RunRecord)> {
    if job.len() > 1 {
        match catch_unwind(AssertUnwindSafe(|| execute_batch(job, scenarios, scratch))) {
            Ok(records) => return records,
            // A panic anywhere in the batched pass: fall through and re-run
            // the batch cell by cell so only the poisoned cell fails.
            Err(_) => *scratch = EngineScratch::new(),
        }
    }
    job.iter()
        .map(|&index| {
            let scenario = &scenarios[index];
            let record = catch_unwind(AssertUnwindSafe(|| {
                execute_scenario_with_scratch(scenario, scratch)
            }))
            .unwrap_or_else(|payload| {
                *scratch = EngineScratch::new();
                panic_record(scenario, &sched::panic_message(payload))
            });
            (index, record)
        })
        .collect()
}

/// Runs a same-instance batch of gathering cells through the batched
/// multi-run engine pass. Records are bitwise identical to solo execution
/// of each cell (pinned by tests); unsupported cells are rejected in
/// preflight exactly as on the solo path.
fn execute_batch(
    job: &[usize],
    scenarios: &[Scenario],
    scratch: &mut EngineScratch,
) -> Vec<(usize, RunRecord)> {
    let mut out: Vec<(usize, RunRecord)> = job
        .iter()
        .map(|&index| (index, base_record(&scenarios[index])))
        .collect();
    let mut runnable: Vec<usize> = Vec::new();
    for (position, &index) in job.iter().enumerate() {
        if preflight(&scenarios[index], &mut out[position].1) {
            runnable.push(position);
        }
    }
    let batch: Vec<GatherScenario<'_>> = runnable
        .iter()
        .map(|&position| {
            let s = &scenarios[job[position]];
            GatherScenario {
                cfg: &s.cfg,
                mode: s.mode,
                schedule: s.schedule.clone(),
                topo: s.topo.clone(),
                fault: s.fault.clone(),
                seed: s.seed,
                trace_capacity: Some(TRACE_CAPACITY),
            }
        })
        .collect();
    let outcomes = harness::run_scenario_batch_with_scratch(&batch, scratch);
    for (&position, outcome) in runnable.iter().zip(outcomes) {
        let scenario = &scenarios[job[position]];
        record_outcome(&mut out[position].1, scenario, outcome);
    }
    out
}

/// A record for a scenario that panicked: not ok, status carries the
/// panic message, all counters zero (nothing trustworthy was measured).
pub(crate) fn panic_record(scenario: &Scenario, message: &str) -> RunRecord {
    let mut record = base_record(scenario);
    record.status = format!("panic: {message}");
    record
}

/// The empty record every execution path starts from.
pub(crate) fn base_record(scenario: &Scenario) -> RunRecord {
    RunRecord {
        key: scenario.key.clone(),
        seed: scenario.seed,
        n_actual: scenario.cfg.size() as u32,
        ok: false,
        status: String::new(),
        rounds: 0,
        moves: 0,
        blocked_moves: 0,
        crashed_agents: 0,
        engine_iterations: 0,
        skipped_rounds: 0,
        polled_agent_rounds: 0,
        max_colocation: 0,
        leader: None,
        node: None,
        size: None,
        trace_digest: None,
    }
}

/// Shared preflight of the solo and batched paths: rejects cells that must
/// not run (filling `record.status`) and returns whether to execute. Every
/// rejection names the offending [`crate::ScenarioKey`], so a skip record
/// quoted out of context (a CLI line, a grep hit) still identifies its
/// cell.
pub(crate) fn preflight(scenario: &Scenario, record: &mut RunRecord) -> bool {
    // Unit tests inject a deterministic panic through a reserved family
    // name to exercise the scheduler's per-scenario isolation end to end;
    // no public scenario kind can be made to panic on purpose.
    #[cfg(test)]
    if scenario.key.family == "panic-inject" {
        panic!("injected test panic");
    }
    // Only the gathering variant runs under round-varying topologies or
    // the crash-fault adversary: the gossip and unknown-bound algorithms
    // drive their own engines and are static, fault-free runs by design.
    // Reject their dynamic/faulty cells loudly instead of silently running
    // them on the wrong model.
    if !scenario.topo.is_static() && !matches!(scenario.kind, ScenarioKind::Gather) {
        record.status = format!(
            "unsupported: {} variant is static-only (cell {})",
            scenario.kind.variant_name(),
            scenario.key
        );
        return false;
    }
    if !scenario.fault.is_none() && !matches!(scenario.kind, ScenarioKind::Gather) {
        record.status = format!(
            "unsupported: {} variant has no fault axis (cell {})",
            scenario.kind.variant_name(),
            scenario.key
        );
        return false;
    }
    // Matrix expansion skips incompatible cells, but explicit scenario
    // lists (`Campaign::from_scenarios`) can still pair a topology with a
    // graph it cannot run over — record that instead of panicking a
    // worker thread in the provider's view constructor.
    if !scenario.topo.compatible_with(scenario.cfg.graph()) {
        record.status = format!(
            "unsupported: topology {} cannot run over this graph (cell {})",
            scenario.key.topo, scenario.key
        );
        return false;
    }
    true
}

/// Executes one scenario with a fresh [`EngineScratch`]; see
/// [`execute_scenario_with_scratch`] for the bulk-execution form the
/// campaign runner uses.
pub fn execute_scenario(scenario: &Scenario) -> RunRecord {
    execute_scenario_with_scratch(scenario, &mut EngineScratch::new())
}

/// Executes one scenario and measures it into a [`RunRecord`], reusing the
/// caller's [`EngineScratch`] so bulk execution allocates nothing per run
/// in steady state. Never panics on algorithm failure: engine errors and
/// validation failures are recorded in the `status` field.
pub fn execute_scenario_with_scratch(
    scenario: &Scenario,
    scratch: &mut EngineScratch,
) -> RunRecord {
    let mut record = base_record(scenario);
    if !preflight(scenario, &mut record) {
        return record;
    }
    let outcome = match &scenario.kind {
        ScenarioKind::Gather => harness::run_scenario_with_scratch(
            &scenario.cfg,
            scenario.mode,
            scenario.schedule.clone(),
            &scenario.topo,
            &scenario.fault,
            scenario.seed,
            Some(TRACE_CAPACITY),
            scratch,
        ),
        ScenarioKind::Gossip(scheme) => {
            let setup = KnownSetup::for_configuration(
                &scenario.cfg,
                scenario.cfg.size() as u32,
                scenario.seed,
            );
            let messages = scheme.payloads(&scenario.cfg);
            match harness::run_gossip_outcome(
                &scenario.cfg,
                &setup,
                scenario.mode,
                &messages,
                scenario.schedule.clone(),
            ) {
                Ok((outcome, reports)) => {
                    let mut expected: Vec<_> = messages.iter().map(|(_, m)| m.clone()).collect();
                    expected.sort();
                    let decoded_ok = reports.iter().all(|(_, rep)| {
                        let mut got = Vec::new();
                        for (payload, multiplicity) in rep.outcome.decoded() {
                            for _ in 0..multiplicity {
                                got.push(payload.clone());
                            }
                        }
                        got.sort();
                        got == expected
                    });
                    if !decoded_ok {
                        record.status = "gossip mismatch".into();
                        fill_outcome(&mut record, &outcome);
                        return record;
                    }
                    Ok(outcome)
                }
                Err(e) => Err(e),
            }
        }
        ScenarioKind::Unknown { decoys, est_mode } => {
            // The unknown-bound algorithm exists only in the weak model
            // (and consumes no seed: its schedule is fully determined by
            // the enumeration). Reject a talking-mode cell loudly instead
            // of running the silent algorithm under a mislabeled key.
            if scenario.mode != nochatter_core::CommMode::Silent {
                record.status = format!(
                    "unsupported: unknown variant has no talking baseline (cell {})",
                    scenario.key
                );
                return record;
            }
            let mut omega = decoys.clone();
            omega.push(scenario.cfg.clone());
            run_unknown(
                &scenario.cfg,
                SliceEnumeration::new(omega),
                *est_mode,
                scenario.schedule.clone(),
            )
            .map(|(outcome, _)| outcome)
        }
    };
    record_outcome(&mut record, scenario, outcome);
    record
}

/// The shared outcome-to-record tail of every execution path: fills the
/// counters and judges the gathering property (survivors-only under a
/// fault adversary), so the batched and solo paths cannot drift.
pub(crate) fn record_outcome(
    record: &mut RunRecord,
    scenario: &Scenario,
    outcome: Result<RunOutcome, SimError>,
) {
    match outcome {
        Ok(outcome) => {
            fill_outcome(record, &outcome);
            // A crashed agent can never declare, so a faulty cell's
            // success criterion is the survivors' agreement — exactly the
            // paper's gathering property restricted to the living. The
            // fault-free path keeps the full validator, byte for byte.
            let gathering = if scenario.fault.is_none() {
                outcome.gathering()
            } else {
                outcome.gathering_surviving()
            };
            match gathering {
                Ok(report) => {
                    // All three variants elect a leader on success; a
                    // unanimous `None` is agreement in the engine's eyes
                    // but a protocol regression in ours.
                    match report.leader {
                        None => record.status = "no leader elected".into(),
                        Some(l) if !scenario.cfg.contains_label(l) => {
                            record.status = format!("phantom leader {l}");
                        }
                        Some(_) => {
                            record.ok = true;
                            record.status = "gathered".into();
                            record.rounds = report.round;
                        }
                    }
                    record.leader = report.leader.map(|l| l.value());
                    record.node = Some(report.node.index() as u32);
                    record.size = report.size;
                }
                Err(e) => record.status = e.to_string(),
            }
        }
        Err(e) => record.status = format!("engine error: {e}"),
    }
}

fn fill_outcome(record: &mut RunRecord, outcome: &RunOutcome) {
    record.rounds = outcome.rounds;
    record.moves = outcome.total_moves;
    record.blocked_moves = outcome.blocked_moves;
    record.crashed_agents = outcome.crashed_agents.len() as u32;
    record.engine_iterations = outcome.engine_iterations;
    record.skipped_rounds = outcome.skipped_rounds;
    record.polled_agent_rounds = outcome.polled_agent_rounds;
    record.max_colocation = outcome.max_colocation;
    record.trace_digest = outcome.trace.as_ref().map(trace_digest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Matrix;
    use nochatter_core::CommMode;
    use nochatter_graph::generators::Family;
    use nochatter_sim::WakeSchedule;

    fn campaign() -> Campaign {
        Matrix {
            families: vec![Family::Ring, Family::Star],
            sizes: vec![4, 5],
            teams: vec![vec![2, 3]],
            schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
            modes: vec![CommMode::Silent, CommMode::Talking],
            ..Matrix::new()
        }
        .campaign("runner-test", 11)
        .unwrap()
    }

    #[test]
    fn all_scenarios_gather() {
        let report = run_campaign(&campaign(), 1);
        assert_eq!(report.records.len(), 16);
        for r in &report.records {
            assert!(r.ok, "{} failed: {}", r.key, r.status);
            assert_eq!(r.status, "gathered");
            assert!(r.trace_digest.is_some());
            assert!(r.leader.is_some());
        }
    }

    #[test]
    fn worker_counts_agree_bit_for_bit() {
        let c = campaign();
        let one = run_campaign(&c, 1);
        let four = run_campaign(&c, 4);
        assert_eq!(one.records, four.records);
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.to_csv(), four.to_csv());
    }

    #[test]
    fn batched_campaign_records_match_solo_execution_bitwise() {
        // The campaign runner batches each instance's cells through the
        // multi-run engine pass; every record — counters and trace digest
        // included — must equal what solo execution of that cell produces.
        let c = campaign();
        let report = run_campaign(&c, 3);
        for (scenario, record) in c.scenarios().iter().zip(&report.records) {
            assert_eq!(record, &execute_scenario(scenario), "{}", scenario.key);
        }
    }

    #[test]
    fn instance_batches_group_all_execution_axes() {
        let c = campaign();
        let all: Vec<usize> = (0..c.len()).collect();
        let jobs = plan_jobs(c.scenarios(), &all);
        // 2 families × 2 sizes × 1 team × 1 rep = 4 instances, each with
        // 2 schedules × 2 modes = 4 cells.
        assert_eq!(jobs.len(), 4);
        for job in &jobs {
            assert_eq!(job.len(), 4);
            let instance = c.scenarios()[job[0]].key.instance_canonical();
            for &i in job {
                assert_eq!(c.scenarios()[i].key.instance_canonical(), instance);
            }
        }
    }

    #[test]
    fn silent_is_never_faster_than_talking() {
        // Holds on these specific cells (rings/stars at n=4..5, where the
        // silent and talking executions stay phase-aligned); NOT a general
        // theorem — see tests/differential.rs at the workspace root for
        // the honest aggregate statement.
        let report = run_campaign(&campaign(), 2);
        let pairs = report.mode_pairs("silent", "talking");
        assert!(!pairs.is_empty());
        for (silent, talking) in pairs {
            assert!(
                silent.rounds >= talking.rounds,
                "{}: silent {} < talking {}",
                silent.key,
                silent.rounds,
                talking.rounds
            );
        }
    }

    #[test]
    fn panicking_scenarios_are_recorded_not_fatal() {
        use crate::campaign::{scenario_seed, spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_graph::generators;

        // Two cells of a reserved family that the preflight hook panics on
        // (same instance, so they form a batch and exercise the
        // batch-panic → solo-rerun fallback), plus two healthy cells.
        let cell = |family: &str, mode: CommMode, mode_name: &str| {
            let key = ScenarioKey {
                family: family.into(),
                n: 4,
                team: vec![2, 3],
                wake: "simul".into(),
                topo: "static".into(),
                fault: "none".into(),
                mode: mode_name.into(),
                variant: "gather".into(),
                rep: 0,
            };
            Scenario {
                seed: scenario_seed(5, &key),
                key,
                cfg: spread(generators::ring(4), &[2, 3]).unwrap(),
                mode,
                schedule: WakeSchedule::Simultaneous,
                topo: nochatter_sim::TopologySpec::Static,
                fault: nochatter_sim::FaultSpec::None,
                kind: ScenarioKind::Gather,
            }
        };
        let scenarios = vec![
            cell("panic-inject", CommMode::Silent, "silent"),
            cell("panic-inject", CommMode::Talking, "talking"),
            cell("ring4", CommMode::Silent, "silent"),
            cell("ring4", CommMode::Talking, "talking"),
        ];
        let c = Campaign::from_scenarios("panic-test", 5, scenarios).unwrap();
        let one = run_campaign(&c, 1);
        let four = run_campaign(&c, 4);
        assert_eq!(one.records, four.records, "panic records are deterministic");
        for r in &one.records {
            if r.key.family == "panic-inject" {
                assert!(!r.ok);
                assert_eq!(r.status, "panic: injected test panic");
                assert_eq!(r.rounds, 0, "nothing trustworthy was measured");
            } else {
                assert!(r.ok, "{} failed: {}", r.key, r.status);
                // The healthy instance is unperturbed by the poisoned one.
                let solo = execute_scenario(
                    c.scenarios()
                        .iter()
                        .find(|s| s.key == r.key)
                        .expect("scenario exists"),
                );
                assert_eq!(r, &solo);
            }
        }
    }

    #[test]
    fn talking_mode_unknown_is_rejected_not_mislabeled() {
        use crate::campaign::{spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_core::unknown::EstMode;
        use nochatter_graph::generators;

        let scenario = Scenario {
            key: ScenarioKey {
                family: "ring3".into(),
                n: 3,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: "static".into(),
                fault: "none".into(),
                mode: "talking".into(),
                variant: "unknown@1".into(),
                rep: 0,
            },
            cfg: spread(generators::ring(3), &[1, 2]).unwrap(),
            mode: CommMode::Talking,
            schedule: WakeSchedule::Simultaneous,
            topo: nochatter_sim::TopologySpec::Static,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Unknown {
                decoys: vec![],
                est_mode: EstMode::Conservative,
            },
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(record.status.contains("unsupported"), "{}", record.status);
        // The skip record names the offending cell, so the status line
        // identifies the scenario even when quoted out of context.
        assert!(
            record.status.contains(&scenario.key.canonical()),
            "{}",
            record.status
        );
    }

    #[test]
    fn incompatible_topology_records_unsupported_instead_of_panicking() {
        use crate::campaign::{spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_graph::dynamic::DynamicRing;
        use nochatter_graph::generators;

        // A dynamic ring over a path: Matrix expansion would skip this
        // cell, but an explicit scenario list can still construct it.
        let topo = nochatter_sim::TopologySpec::Ring(DynamicRing { seed: 3 });
        let scenario = Scenario {
            key: ScenarioKey {
                family: "path4".into(),
                n: 4,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: topo.short_name(),
                fault: "none".into(),
                mode: "silent".into(),
                variant: "gather".into(),
                rep: 0,
            },
            cfg: spread(generators::path(4), &[1, 2]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Gather,
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(
            record.status.contains("cannot run over this graph"),
            "{}",
            record.status
        );
        assert!(
            record.status.contains(&scenario.key.canonical()),
            "skip record must name the offending cell: {}",
            record.status
        );
    }

    #[test]
    fn dynamic_cells_of_static_only_variants_are_rejected_not_mislabeled() {
        use crate::campaign::{spread, PayloadScheme, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_graph::dynamic::DynamicRing;
        use nochatter_graph::generators;

        let topo = nochatter_sim::TopologySpec::Ring(DynamicRing { seed: 3 });
        let scenario = Scenario {
            key: ScenarioKey {
                family: "ring4".into(),
                n: 4,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: topo.short_name(),
                fault: "none".into(),
                mode: "silent".into(),
                variant: "gossip-u2".into(),
                rep: 0,
            },
            cfg: spread(generators::ring(4), &[1, 2]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Gossip(PayloadScheme::Uniform { len: 2 }),
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(record.status.contains("static-only"), "{}", record.status);
        assert!(
            record.status.contains(&scenario.key.canonical()),
            "skip record must name the offending cell: {}",
            record.status
        );
    }

    #[test]
    fn faulty_cells_of_fault_free_variants_are_rejected_with_their_key() {
        use crate::campaign::{spread, PayloadScheme, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_graph::{generators, Label};
        use nochatter_sim::{CrashPoint, FaultSpec};

        let fault = FaultSpec::CrashAt(vec![CrashPoint {
            label: Label::new(1).unwrap(),
            round: 8,
        }]);
        let scenario = Scenario {
            key: ScenarioKey {
                family: "ring4".into(),
                n: 4,
                team: vec![1, 2],
                wake: "simul".into(),
                topo: "static".into(),
                fault: fault.short_name(),
                mode: "silent".into(),
                variant: "gossip-u2".into(),
                rep: 0,
            },
            cfg: spread(generators::ring(4), &[1, 2]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo: nochatter_sim::TopologySpec::Static,
            fault,
            kind: ScenarioKind::Gossip(PayloadScheme::Uniform { len: 2 }),
            seed: 1,
        };
        let record = execute_scenario(&scenario);
        assert!(!record.ok);
        assert!(record.status.contains("no fault axis"), "{}", record.status);
        assert!(
            record.status.contains(&scenario.key.canonical()),
            "skip record must name the offending cell: {}",
            record.status
        );
    }

    #[test]
    fn unknown_scenarios_run_through_the_pool() {
        use crate::campaign::{scenario_seed, spread, Scenario, ScenarioKind};
        use crate::record::ScenarioKey;
        use nochatter_core::unknown::EstMode;
        use nochatter_graph::generators;

        let truth = spread(generators::ring(3), &[1, 2]).unwrap();
        let decoy = spread(generators::path(2), &[3, 4]).unwrap();
        let key = ScenarioKey {
            family: "ring3".into(),
            n: 3,
            team: vec![1, 2],
            wake: "simul".into(),
            topo: "static".into(),
            fault: "none".into(),
            mode: "silent".into(),
            variant: "unknown@2".into(),
            rep: 0,
        };
        let scenario = Scenario {
            seed: scenario_seed(1, &key),
            key,
            cfg: truth,
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo: nochatter_sim::TopologySpec::Static,
            fault: nochatter_sim::FaultSpec::None,
            kind: ScenarioKind::Unknown {
                decoys: vec![decoy],
                est_mode: EstMode::Conservative,
            },
        };
        let c = Campaign::from_scenarios("unknown-test", 1, vec![scenario]).unwrap();
        let report = run_campaign(&c, 2);
        let r = &report.records[0];
        assert!(r.ok, "{}", r.status);
        assert_eq!(r.size, Some(3), "must learn the exact size");
        assert_eq!(r.leader, Some(1));
    }
}
