//! Scenario keys and per-scenario run records.

use std::fmt;

use nochatter_sim::{Trace, TraceEvent};

/// The identity of one scenario inside a campaign.
///
/// Keys are the reproducibility anchor of the whole subsystem: records are
/// ordered by key (so reports are identical for any worker count), and each
/// scenario's RNG seed is derived from the campaign seed and the key's
/// canonical form (so adding axes to a campaign never reshuffles the seeds
/// of existing cells).
///
/// The derived [`Ord`] sorts by field order — family, size, team, wake
/// schedule, dynamism, fault adversary, sensing mode, algorithm variant,
/// repetition — which groups reports the way the tables read.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScenarioKey {
    /// Graph family short name (e.g. `"ring"`), or a free-form tag for
    /// explicitly constructed scenarios.
    pub family: String,
    /// Requested network size (the instantiated graph may round up).
    pub n: u32,
    /// Agent labels, in increasing order.
    pub team: Vec<u64>,
    /// Wake-schedule short name (e.g. `"simul"`, `"first"`, `"stag7"`).
    pub wake: String,
    /// Dynamism axis: the topology's short name (`"static"`, `"dring@9"`,
    /// `"ef100@9"`, `"per7.0"` — see
    /// `nochatter_sim::TopologySpec::short_name`).
    pub topo: String,
    /// Crash-fault axis: the fault spec's short name (`"none"`,
    /// `"crash3@64"`, `"sc50@9x2"` — see
    /// `nochatter_sim::FaultSpec::short_name`).
    pub fault: String,
    /// Sensing/communication mode: `"silent"` or `"talking"`.
    pub mode: String,
    /// Algorithm variant short name (e.g. `"gather"`, `"gossip-u4"`).
    pub variant: String,
    /// Repetition index within the campaign's seed range.
    pub rep: u64,
}

impl ScenarioKey {
    /// The team rendered as dot-joined labels (e.g. `"2.3.9"`).
    pub fn team_string(&self) -> String {
        self.team
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(".")
    }

    /// The canonical single-line form, unique per scenario within a
    /// campaign.
    ///
    /// The dynamism segment appears only for non-static topologies, and
    /// the fault segment only for faulty cells, so every pre-existing key
    /// (and with it every golden report) renders unchanged.
    pub fn canonical(&self) -> String {
        let topo = if self.topo.is_empty() || self.topo == "static" {
            String::new()
        } else {
            format!("/{}", self.topo)
        };
        let fault = if self.fault.is_empty() || self.fault == "none" {
            String::new()
        } else {
            format!("/{}", self.fault)
        };
        format!(
            "{}/n{}/t{}/w{}{}{}/{}/{}/r{}",
            self.family,
            self.n,
            self.team_string(),
            self.wake,
            topo,
            fault,
            self.mode,
            self.variant,
            self.rep
        )
    }

    /// The *instance* sub-key — family, size, team and repetition — naming
    /// the network instance while excluding the execution axes (wake
    /// schedule, dynamism, fault adversary, sensing mode, algorithm
    /// variant). Cells sharing this sub-key run on the identical
    /// configuration: this string (not the full key, and not the expansion
    /// index) feeds per-scenario seed derivation, which is what makes a
    /// dynamic or faulty cell and its unperturbed twin a differential pair
    /// over the same base graph.
    pub fn instance_canonical(&self) -> String {
        format!(
            "{}/n{}/t{}/r{}",
            self.family,
            self.n,
            self.team_string(),
            self.rep
        )
    }
}

impl fmt::Display for ScenarioKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// Everything measured about one executed scenario.
///
/// Plain data, cheap to send across worker threads, and the unit of the
/// JSON/CSV reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunRecord {
    /// The scenario's identity.
    pub key: ScenarioKey,
    /// The per-scenario seed derived from the campaign seed and the key.
    pub seed: u64,
    /// The instantiated graph's actual node count.
    pub n_actual: u32,
    /// Whether the scenario met its success criterion (validated gathering,
    /// plus exact gossip decoding for gossip variants).
    pub ok: bool,
    /// `"gathered"`, or the first violated requirement / engine error.
    pub status: String,
    /// Rounds to the last declaration (or the round limit).
    pub rounds: u64,
    /// Total edge traversals across all agents.
    pub moves: u64,
    /// Move attempts blocked by an absent edge (always 0 on the static
    /// topology; serialized only for dynamic cells so static reports stay
    /// byte-identical to their pre-dynamism goldens).
    pub blocked_moves: u64,
    /// Agents crashed by the fault adversary (always 0 under the
    /// fault-free spec; serialized only for faulty cells so fault-free
    /// reports stay byte-identical to their goldens).
    pub crashed_agents: u32,
    /// Engine loop iterations actually executed (fast-forward excluded).
    pub engine_iterations: u64,
    /// Rounds skipped by the quiescence fast-forward.
    pub skipped_rounds: u64,
    /// Behavior polls actually executed — the sparse round loop's honest
    /// cost denominator. The one counter allowed to differ between the
    /// sparse and dense (`NOCHATTER_DENSE_LOOP=1`) loops, so it is kept
    /// out of the deterministic per-record report bytes (JSON and CSV)
    /// and surfaced only as a campaign-level trajectory aggregate.
    pub polled_agent_rounds: u64,
    /// Largest observed co-location.
    pub max_colocation: u32,
    /// The commonly elected leader, if the run gathered with one.
    pub leader: Option<u64>,
    /// The common gathering node, if the run gathered.
    pub node: Option<u32>,
    /// The commonly declared size, if any.
    pub size: Option<u32>,
    /// FNV-1a digest of the execution trace (gather variants only).
    pub trace_digest: Option<u64>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash = (*hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a digest over arbitrary bytes (used for key-derived seeds).
pub(crate) fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 64-bit FNV-1a digest of a run's event trace.
///
/// Two runs with the same digest made the same wake-ups, moves and
/// declarations in the same rounds — the differential and determinism test
/// suites compare digests instead of hauling whole traces around. The
/// encoding covers every event field plus the dropped-event count, so a
/// truncated trace still digests deterministically.
pub fn trace_digest(trace: &Trace) -> u64 {
    let mut hash = FNV_OFFSET;
    for event in trace.events() {
        match *event {
            TraceEvent::Wake {
                agent,
                round,
                by_visit,
            } => {
                fnv_u64(&mut hash, 1);
                fnv_u64(&mut hash, agent.value());
                fnv_u64(&mut hash, round);
                fnv_u64(&mut hash, u64::from(by_visit));
            }
            TraceEvent::Move {
                agent,
                round,
                from,
                to,
                port,
            } => {
                fnv_u64(&mut hash, 2);
                fnv_u64(&mut hash, agent.value());
                fnv_u64(&mut hash, round);
                fnv_u64(&mut hash, from.index() as u64);
                fnv_u64(&mut hash, to.index() as u64);
                fnv_u64(&mut hash, port.index() as u64);
            }
            TraceEvent::Blocked {
                agent,
                round,
                node,
                port,
            } => {
                fnv_u64(&mut hash, 4);
                fnv_u64(&mut hash, agent.value());
                fnv_u64(&mut hash, round);
                fnv_u64(&mut hash, node.index() as u64);
                fnv_u64(&mut hash, port.index() as u64);
            }
            TraceEvent::Crashed { agent, round, node } => {
                fnv_u64(&mut hash, 5);
                fnv_u64(&mut hash, agent.value());
                fnv_u64(&mut hash, round);
                fnv_u64(&mut hash, node.index() as u64);
            }
            TraceEvent::Declare {
                agent,
                round,
                node,
                declaration,
            } => {
                fnv_u64(&mut hash, 3);
                fnv_u64(&mut hash, agent.value());
                fnv_u64(&mut hash, round);
                fnv_u64(&mut hash, node.index() as u64);
                fnv_u64(&mut hash, declaration.leader.map_or(0, |l| l.value()));
                fnv_u64(&mut hash, declaration.size.map_or(0, |s| u64::from(s) + 1));
            }
            _ => fnv_u64(&mut hash, u64::MAX),
        }
    }
    fnv_u64(&mut hash, trace.dropped());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ScenarioKey {
        ScenarioKey {
            family: "ring".into(),
            n: 6,
            team: vec![2, 3, 9],
            wake: "simul".into(),
            topo: "static".into(),
            fault: "none".into(),
            mode: "silent".into(),
            variant: "gather".into(),
            rep: 0,
        }
    }

    #[test]
    fn canonical_form_is_stable() {
        assert_eq!(key().canonical(), "ring/n6/t2.3.9/wsimul/silent/gather/r0");
        assert_eq!(key().to_string(), key().canonical());
    }

    #[test]
    fn canonical_form_inserts_a_dynamism_segment_only_when_dynamic() {
        // Static keys render exactly as before the dynamism axis existed —
        // that is what keeps the golden smoke report byte-identical.
        let mut k = key();
        k.topo = "dring@7".into();
        assert_eq!(
            k.canonical(),
            "ring/n6/t2.3.9/wsimul/dring@7/silent/gather/r0"
        );
        // The instance sub-key excludes the execution axes, dynamism
        // included: a dynamic cell shares its seed (and graph) with its
        // static twin.
        assert_eq!(k.instance_canonical(), key().instance_canonical());
    }

    #[test]
    fn canonical_form_inserts_a_fault_segment_only_when_faulty() {
        // Fault-free keys render exactly as before the fault axis existed
        // — the same rule that keeps the golden smoke report
        // byte-identical.
        let mut k = key();
        k.fault = "crash3@64".into();
        assert_eq!(
            k.canonical(),
            "ring/n6/t2.3.9/wsimul/crash3@64/silent/gather/r0"
        );
        // A faulty dynamic cell renders both segments, dynamism first.
        k.topo = "dring@7".into();
        assert_eq!(
            k.canonical(),
            "ring/n6/t2.3.9/wsimul/dring@7/crash3@64/silent/gather/r0"
        );
        // The instance sub-key excludes the fault axis: a faulty cell
        // shares its seed (and graph) with its fault-free twin.
        assert_eq!(k.instance_canonical(), key().instance_canonical());
    }

    #[test]
    fn key_order_groups_by_family_then_size() {
        let mut a = key();
        a.family = "path".into();
        let mut b = key();
        b.n = 4;
        let mut keys = vec![key(), a.clone(), b.clone()];
        keys.sort();
        assert_eq!(keys, vec![a, b, key()]);
    }

    #[test]
    fn digest_distinguishes_traces() {
        use nochatter_core::{harness, CommMode};
        use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
        use nochatter_sim::WakeSchedule;

        let cfg = InitialConfiguration::new(
            generators::ring(4),
            vec![
                (Label::new(2).unwrap(), NodeId::new(0)),
                (Label::new(3).unwrap(), NodeId::new(2)),
            ],
        )
        .unwrap();
        let run = |schedule| {
            harness::run_scenario(
                &cfg,
                CommMode::Silent,
                schedule,
                &nochatter_sim::TopologySpec::Static,
                &nochatter_sim::FaultSpec::None,
                7,
                Some(4096),
            )
            .unwrap()
            .trace
            .unwrap()
        };
        let simul = run(WakeSchedule::Simultaneous);
        let first = run(WakeSchedule::FirstOnly);
        // Same inputs → same digest; different schedules → different trace.
        assert_eq!(
            trace_digest(&simul),
            trace_digest(&run(WakeSchedule::Simultaneous))
        );
        assert_ne!(trace_digest(&simul), trace_digest(&first));
    }

    #[test]
    fn fnv_bytes_matches_reference_vector() {
        // Standard FNV-1a test vector: empty input hashes to the offset.
        assert_eq!(fnv_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
