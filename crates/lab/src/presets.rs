//! Canonical campaigns: the CI smoke campaign (golden-diffed byte for
//! byte) and the demo campaign behind `experiments -- campaign`.

use nochatter_core::CommMode;
use nochatter_graph::generators::Family;
use nochatter_sim::WakeSchedule;

use crate::campaign::{Campaign, Matrix};

/// The pinned master seed of [`smoke_campaign`] (the golden file is
/// recorded under it).
pub const SMOKE_SEED: u64 = 42;

/// The default master seed of [`demo_campaign`].
pub const DEMO_SEED: u64 = 2020;

/// The smoke matrix: 2 families × 2 sizes × 2 schedules of silent
/// gathering (8 scenarios).
pub fn smoke_matrix() -> Matrix {
    Matrix {
        families: vec![Family::Ring, Family::Path],
        sizes: vec![4, 5],
        teams: vec![vec![2, 3]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        ..Matrix::new()
    }
}

/// The CI smoke campaign: [`smoke_matrix`] under the pinned seed 42. Its
/// JSON report is pinned as a golden file
/// (`crates/lab/golden/campaign_smoke.json`); any change to the engine,
/// the seed derivation or the serializers shows up as a diff there.
pub fn smoke_campaign() -> Campaign {
    smoke_matrix()
        .campaign("smoke", SMOKE_SEED)
        .expect("smoke campaign is well-formed")
}

/// The demo matrix: 8 graph families × 4 sizes × 2 teams × 2 wake
/// schedules × both sensing modes of the gathering algorithm — 256
/// scenarios (a few cells skip where the team outgrows the graph).
/// `quick` halves the size axis for fast iteration.
pub fn demo_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 6] } else { vec![4, 6, 8, 9] };
    Matrix {
        families: vec![
            Family::Ring,
            Family::Path,
            Family::Complete,
            Family::Star,
            Family::Grid,
            Family::RandomTree,
            Family::RandomConnected,
            Family::Bipartite,
        ],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![
            WakeSchedule::Simultaneous,
            WakeSchedule::Staggered { gap: 3 },
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The demo campaign behind `experiments -- campaign`: [`demo_matrix`]
/// under the default seed 2020.
pub fn demo_campaign(quick: bool) -> Campaign {
    demo_matrix(quick)
        .campaign(if quick { "demo-quick" } else { "demo" }, DEMO_SEED)
        .expect("demo campaign is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_tiny_and_fixed() {
        let c = smoke_campaign();
        assert_eq!(c.len(), 8);
        assert_eq!(c.seed(), 42);
    }

    #[test]
    fn demo_meets_the_acceptance_floor() {
        let c = demo_campaign(false);
        assert!(c.len() >= 200, "demo has {} scenarios", c.len());
        let mut families: Vec<&str> = c
            .scenarios()
            .iter()
            .map(|s| s.key.family.as_str())
            .collect();
        families.sort_unstable();
        families.dedup();
        assert!(families.len() >= 6, "only {} families", families.len());
    }
}
