//! Canonical campaigns: the CI smoke campaign (golden-diffed byte for
//! byte) and the demo campaign behind `experiments -- campaign`.

use nochatter_core::CommMode;
use nochatter_graph::dynamic::{DynamicRing, SeededEdgeFailure};
use nochatter_graph::generators::Family;
use nochatter_graph::Label;
use nochatter_sim::{CrashPoint, FaultSpec, TopologySpec, WakeSchedule};

use crate::campaign::{Campaign, Matrix};

/// The pinned master seed of [`smoke_campaign`] (the golden file is
/// recorded under it).
pub const SMOKE_SEED: u64 = 42;

/// The default master seed of [`demo_campaign`].
pub const DEMO_SEED: u64 = 2020;

/// The default master seed of [`dr1_campaign`].
pub const DR1_SEED: u64 = 1971;

/// The default master seed of [`fr1_campaign`].
pub const FR1_SEED: u64 = 1982;

/// The round at which FR1's first crash fires: early enough to precede
/// every gathering in the swept sizes, late enough that phase 0 is under
/// way (the crash hits a *working* agent, not a sleeping one, under
/// simultaneous wake-up).
pub const FR1_EARLY_CRASH: u64 = 64;

/// The round of FR1's second crash (the `f = 2` axis entry): mid-run,
/// after the early phases have already mixed the team.
pub const FR1_LATE_CRASH: u64 = 2048;

/// The seed of the demo/DR1 dynamic adversaries (edge-failure and
/// dynamic-ring specs carry their own seed, independent of the campaign
/// seed, so the adversary is part of the scenario's identity).
pub const ADVERSARY_SEED: u64 = 0xD1CE;

/// The smoke matrix: 2 families × 2 sizes × 2 schedules of silent
/// gathering (8 scenarios).
pub fn smoke_matrix() -> Matrix {
    Matrix {
        families: vec![Family::Ring, Family::Path],
        sizes: vec![4, 5],
        teams: vec![vec![2, 3]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        ..Matrix::new()
    }
}

/// The CI smoke campaign: [`smoke_matrix`] under the pinned seed 42. Its
/// JSON report is pinned as a golden file
/// (`crates/lab/golden/campaign_smoke.json`); any change to the engine,
/// the seed derivation or the serializers shows up as a diff there.
pub fn smoke_campaign() -> Campaign {
    smoke_matrix()
        .campaign("smoke", SMOKE_SEED)
        .expect("smoke campaign is well-formed")
}

/// The demo matrix: 8 graph families × 4 sizes × 2 teams × 2 wake
/// schedules × 3 topologies × both sensing modes of the gathering
/// algorithm (a few cells skip where the team outgrows the graph, and the
/// dynamic-ring cells exist only for the ring family). `quick` halves the
/// size axis for fast iteration.
///
/// The dynamism axis makes every demo run a static-vs-dynamic
/// differential: each dynamic cell shares its seed and base graph with
/// its static twin. Dynamic cells are *expected* to fail sometimes — the
/// paper's algorithm is designed for static networks, and the campaign
/// records exactly where (and how many moves were blocked) when it
/// doesn't survive the adversary.
pub fn demo_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 6] } else { vec![4, 6, 8, 9] };
    Matrix {
        families: vec![
            Family::Ring,
            Family::Path,
            Family::Complete,
            Family::Star,
            Family::Grid,
            Family::RandomTree,
            Family::RandomConnected,
            Family::Bipartite,
        ],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![
            WakeSchedule::Simultaneous,
            WakeSchedule::Staggered { gap: 3 },
        ],
        topologies: vec![
            TopologySpec::Static,
            TopologySpec::EdgeFailure(SeededEdgeFailure {
                p: 0.05,
                seed: ADVERSARY_SEED,
            }),
            TopologySpec::Ring(DynamicRing {
                seed: ADVERSARY_SEED,
            }),
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The demo campaign behind `experiments -- campaign`: [`demo_matrix`]
/// under the default seed 2020.
pub fn demo_campaign(quick: bool) -> Campaign {
    demo_matrix(quick)
        .campaign(if quick { "demo-quick" } else { "demo" }, DEMO_SEED)
        .expect("demo campaign is well-formed")
}

/// The DR1 matrix — the dynamic-ring study à la Di Luna et al.: rings of
/// several sizes × 2 teams × 2 wake schedules × {static, dynamic-ring
/// adversary} × both sensing modes. Every dynamic cell is the
/// 1-interval-connected adversary removing one seeded edge per round; its
/// static twin (same seed, same base ring) is the control.
pub fn dr1_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 5] } else { vec![4, 5, 6, 8] };
    Matrix {
        families: vec![Family::Ring],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        topologies: vec![
            TopologySpec::Static,
            TopologySpec::Ring(DynamicRing {
                seed: ADVERSARY_SEED,
            }),
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The DR1 campaign behind `experiments -- dr1`: [`dr1_matrix`] under the
/// pinned seed [`DR1_SEED`].
pub fn dr1_campaign(quick: bool) -> Campaign {
    dr1_matrix(quick)
        .campaign("dr1", DR1_SEED)
        .expect("dr1 campaign is well-formed")
}

/// The FR1 matrix — the crash-fault study: rings of several sizes × a
/// 2-agent and a 3-agent team × 2 wake schedules × {fault-free, crash one
/// agent early, crash two agents} × both sensing modes. Every faulty cell
/// shares its derived seed (and with it the base ring and exploration
/// setup) with its fault-free twin, so the sweep measures exactly what `f`
/// crashes cost — for the silent algorithm and for the talking baseline
/// side by side.
///
/// The `f = 2` entry crashes label 5, so it expands only for the 3-agent
/// team (matrix expansion skips crash lists naming labels outside a team);
/// the `f = 1` entry crashes label 3, a member of both teams.
pub fn fr1_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 5] } else { vec![4, 5, 6, 8] };
    let crash = |l: u64, round: u64| CrashPoint {
        label: Label::new(l).expect("preset labels are valid"),
        round,
    };
    Matrix {
        families: vec![Family::Ring],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        faults: vec![
            FaultSpec::None,
            FaultSpec::CrashAt(vec![crash(3, FR1_EARLY_CRASH)]),
            FaultSpec::CrashAt(vec![crash(3, FR1_EARLY_CRASH), crash(5, FR1_LATE_CRASH)]),
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The FR1 campaign behind `experiments -- fr1`: [`fr1_matrix`] under the
/// pinned seed [`FR1_SEED`].
pub fn fr1_campaign(quick: bool) -> Campaign {
    fr1_matrix(quick)
        .campaign("fr1", FR1_SEED)
        .expect("fr1 campaign is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_tiny_and_fixed() {
        let c = smoke_campaign();
        assert_eq!(c.len(), 8);
        assert_eq!(c.seed(), 42);
    }

    #[test]
    fn demo_meets_the_acceptance_floor() {
        let c = demo_campaign(false);
        assert!(c.len() >= 200, "demo has {} scenarios", c.len());
        let mut families: Vec<&str> = c
            .scenarios()
            .iter()
            .map(|s| s.key.family.as_str())
            .collect();
        families.sort_unstable();
        families.dedup();
        assert!(families.len() >= 6, "only {} families", families.len());
    }

    #[test]
    fn demo_exercises_the_dynamism_axis() {
        for quick in [true, false] {
            let c = demo_campaign(quick);
            let mut topos: Vec<&str> = c.scenarios().iter().map(|s| s.key.topo.as_str()).collect();
            topos.sort_unstable();
            topos.dedup();
            assert!(
                topos.len() >= 3,
                "demo must sweep static + 2 dynamic topologies, got {topos:?}"
            );
            // Dynamic-ring cells exist, and only over cycle base graphs
            // (the ring family everywhere; other families only where the
            // instance happens to be a cycle, e.g. the 2×2 grid).
            assert!(c
                .scenarios()
                .iter()
                .any(|s| s.key.topo.starts_with("dring") && s.key.family == "ring"));
            for s in c.scenarios() {
                if s.key.topo.starts_with("dring") {
                    assert!(
                        nochatter_graph::dynamic::is_cycle(s.cfg.graph()),
                        "{} is a dring cell over a non-cycle",
                        s.key
                    );
                }
            }
        }
    }

    #[test]
    fn fr1_pairs_every_faulty_cell_with_a_fault_free_twin() {
        let c = fr1_campaign(true);
        let faulty: Vec<_> = c
            .scenarios()
            .iter()
            .filter(|s| s.key.fault != "none")
            .collect();
        assert!(!faulty.is_empty());
        // Both crash depths exist; the f = 2 list expands only for the
        // team containing label 5.
        assert!(faulty.iter().any(|s| s.key.fault == "crash3@64"));
        for s in &faulty {
            if s.key.fault.contains('+') {
                assert_eq!(s.key.team, vec![3, 5, 9], "{}", s.key);
            }
            let mut twin = s.key.clone();
            twin.fault = "none".into();
            let twin = c
                .scenarios()
                .iter()
                .find(|t| t.key == twin)
                .expect("fault-free twin exists");
            assert_eq!(twin.seed, s.seed, "twins must share the derived seed");
            assert_eq!(twin.cfg, s.cfg, "twins must share the base ring");
        }
    }

    #[test]
    fn dr1_pairs_every_dynamic_cell_with_a_static_twin() {
        let c = dr1_campaign(true);
        let dynamic: Vec<_> = c
            .scenarios()
            .iter()
            .filter(|s| s.key.topo != "static")
            .collect();
        assert!(!dynamic.is_empty());
        for s in dynamic {
            let mut twin = s.key.clone();
            twin.topo = "static".into();
            let twin = c
                .scenarios()
                .iter()
                .find(|t| t.key == twin)
                .expect("static twin exists");
            assert_eq!(twin.seed, s.seed, "twins must share the derived seed");
            assert_eq!(twin.cfg, s.cfg, "twins must share the base ring");
        }
    }
}
