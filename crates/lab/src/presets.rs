//! Canonical campaigns: the CI smoke campaign (golden-diffed byte for
//! byte) and the demo campaign behind `experiments -- campaign`.

use nochatter_core::CommMode;
use nochatter_graph::dynamic::{is_cycle, DynamicRing, SeededEdgeFailure};
use nochatter_graph::generators::Family;
use nochatter_graph::{InitialConfiguration, Label};
use nochatter_sim::{CrashPoint, FaultSpec, ScriptedRing, TopologySpec, WakeSchedule};

use crate::campaign::{Campaign, Matrix};
use crate::search::{AdversarySpace, Objective, SearchSpec};

/// The pinned master seed of [`smoke_campaign`] (the golden file is
/// recorded under it).
pub const SMOKE_SEED: u64 = 42;

/// The default master seed of [`demo_campaign`].
pub const DEMO_SEED: u64 = 2020;

/// The default master seed of [`dr1_campaign`].
pub const DR1_SEED: u64 = 1971;

/// The default master seed of [`fr1_campaign`].
pub const FR1_SEED: u64 = 1982;

/// The round at which FR1's first crash fires: early enough to precede
/// every gathering in the swept sizes, late enough that phase 0 is under
/// way (the crash hits a *working* agent, not a sleeping one, under
/// simultaneous wake-up).
pub const FR1_EARLY_CRASH: u64 = 64;

/// The round of FR1's second crash (the `f = 2` axis entry): mid-run,
/// after the early phases have already mixed the team.
pub const FR1_LATE_CRASH: u64 = 2048;

/// The seed of the demo/DR1 dynamic adversaries (edge-failure and
/// dynamic-ring specs carry their own seed, independent of the campaign
/// seed, so the adversary is part of the scenario's identity).
pub const ADVERSARY_SEED: u64 = 0xD1CE;

/// The smoke matrix: 2 families × 2 sizes × 2 schedules of silent
/// gathering (8 scenarios).
pub fn smoke_matrix() -> Matrix {
    Matrix {
        families: vec![Family::Ring, Family::Path],
        sizes: vec![4, 5],
        teams: vec![vec![2, 3]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        ..Matrix::new()
    }
}

/// The CI smoke campaign: [`smoke_matrix`] under the pinned seed 42. Its
/// JSON report is pinned as a golden file
/// (`crates/lab/golden/campaign_smoke.json`); any change to the engine,
/// the seed derivation or the serializers shows up as a diff there.
pub fn smoke_campaign() -> Campaign {
    smoke_matrix()
        .campaign("smoke", SMOKE_SEED)
        .expect("smoke campaign is well-formed")
}

/// The demo matrix: 8 graph families × 4 sizes × 2 teams × 2 wake
/// schedules × 3 topologies × both sensing modes of the gathering
/// algorithm (a few cells skip where the team outgrows the graph, and the
/// dynamic-ring cells exist only for the ring family). `quick` halves the
/// size axis for fast iteration.
///
/// The dynamism axis makes every demo run a static-vs-dynamic
/// differential: each dynamic cell shares its seed and base graph with
/// its static twin. Dynamic cells are *expected* to fail sometimes — the
/// paper's algorithm is designed for static networks, and the campaign
/// records exactly where (and how many moves were blocked) when it
/// doesn't survive the adversary.
pub fn demo_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 6] } else { vec![4, 6, 8, 9] };
    Matrix {
        families: vec![
            Family::Ring,
            Family::Path,
            Family::Complete,
            Family::Star,
            Family::Grid,
            Family::RandomTree,
            Family::RandomConnected,
            Family::Bipartite,
        ],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![
            WakeSchedule::Simultaneous,
            WakeSchedule::Staggered { gap: 3 },
        ],
        topologies: vec![
            TopologySpec::Static,
            TopologySpec::EdgeFailure(SeededEdgeFailure {
                p: 0.05,
                seed: ADVERSARY_SEED,
            }),
            TopologySpec::Ring(DynamicRing {
                seed: ADVERSARY_SEED,
            }),
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The demo campaign behind `experiments -- campaign`: [`demo_matrix`]
/// under the default seed 2020.
pub fn demo_campaign(quick: bool) -> Campaign {
    demo_matrix(quick)
        .campaign(if quick { "demo-quick" } else { "demo" }, DEMO_SEED)
        .expect("demo campaign is well-formed")
}

/// The DR1 matrix — the dynamic-ring study à la Di Luna et al.: rings of
/// several sizes × 2 teams × 2 wake schedules × {static, dynamic-ring
/// adversary} × both sensing modes. Every dynamic cell is the
/// 1-interval-connected adversary removing one seeded edge per round; its
/// static twin (same seed, same base ring) is the control.
pub fn dr1_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 5] } else { vec![4, 5, 6, 8] };
    Matrix {
        families: vec![Family::Ring],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        topologies: vec![
            TopologySpec::Static,
            TopologySpec::Ring(DynamicRing {
                seed: ADVERSARY_SEED,
            }),
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The DR1 campaign behind `experiments -- dr1`: [`dr1_matrix`] under the
/// pinned seed [`DR1_SEED`].
pub fn dr1_campaign(quick: bool) -> Campaign {
    dr1_matrix(quick)
        .campaign("dr1", DR1_SEED)
        .expect("dr1 campaign is well-formed")
}

/// The FR1 matrix — the crash-fault study: rings of several sizes × a
/// 2-agent and a 3-agent team × 2 wake schedules × {fault-free, crash one
/// agent early, crash two agents} × both sensing modes. Every faulty cell
/// shares its derived seed (and with it the base ring and exploration
/// setup) with its fault-free twin, so the sweep measures exactly what `f`
/// crashes cost — for the silent algorithm and for the talking baseline
/// side by side.
///
/// The `f = 2` entry crashes label 5, so it expands only for the 3-agent
/// team (matrix expansion skips crash lists naming labels outside a team);
/// the `f = 1` entry crashes label 3, a member of both teams.
pub fn fr1_matrix(quick: bool) -> Matrix {
    let sizes: Vec<u32> = if quick { vec![4, 5] } else { vec![4, 5, 6, 8] };
    let crash = |l: u64, round: u64| CrashPoint {
        label: Label::new(l).expect("preset labels are valid"),
        round,
    };
    Matrix {
        families: vec![Family::Ring],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        faults: vec![
            FaultSpec::None,
            FaultSpec::CrashAt(vec![crash(3, FR1_EARLY_CRASH)]),
            FaultSpec::CrashAt(vec![crash(3, FR1_EARLY_CRASH), crash(5, FR1_LATE_CRASH)]),
        ],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
}

/// The FR1 campaign behind `experiments -- fr1`: [`fr1_matrix`] under the
/// pinned seed [`FR1_SEED`].
pub fn fr1_campaign(quick: bool) -> Campaign {
    fr1_matrix(quick)
        .campaign("fr1", FR1_SEED)
        .expect("fr1 campaign is well-formed")
}

/// The pinned master seed of the hunt presets ([`hunt_spec`] and
/// [`hunt_smoke_spec`]): the CI smoke search's byte-identity check runs
/// under it.
pub const HUNT_SEED: u64 = 0xFA15E;

/// The canonical adversary space the hunt presets attack an instance
/// with, combining all three adversary axes of the dr1/fr1 studies as
/// explicit per-round choice lists:
///
/// * **Wake**: agent 0 is pinned to offset 0 (some agent must self-wake);
///   every other agent chooses among a few offsets or visit-only wake —
///   the staggered/first-only schedules and everything between.
/// * **Crash**: every agent but the first chooses to survive or to crash
///   at an early, mid or late round (the FR1 axis, round by round; the
///   first agent never crashes, so at least one survivor remains).
/// * **Edges**: over cycle base graphs, a two-slot [`ScriptedRing`]
///   script choosing which edge (if any) is missing on even and odd
///   rounds — the choice-list form of the DR1 dynamic-ring adversary.
///   All-keep decodes to the static topology, so the unperturbed cell is
///   in the space. Empty over non-cycles.
pub fn hunt_space(cfg: &InitialConfiguration) -> AdversarySpace {
    let labels: Vec<Label> = cfg.labels().collect();
    let wake_offsets = labels
        .iter()
        .enumerate()
        .map(|(i, _)| {
            if i == 0 {
                vec![0]
            } else {
                vec![0, 1, 5, 17, u64::MAX]
            }
        })
        .collect();
    let crash_rounds = labels
        .iter()
        .skip(1)
        .map(|&label| (label, vec![u64::MAX, 16, 64, 512]))
        .collect();
    let edge_script = if is_cycle(cfg.graph()) {
        let edges = cfg.graph().edge_count() as u32;
        (0..2)
            .map(|_| {
                let mut choices = vec![ScriptedRing::KEEP_ALL];
                choices.extend(0..edges);
                choices
            })
            .collect()
    } else {
        Vec::new()
    };
    AdversarySpace {
        wake_offsets,
        crash_rounds,
        edge_script,
    }
}

/// The base instances the hunt presets attack: the silent gathering cells
/// of the dr1/fr1 instance space (rings of several sizes × the 2- and
/// 3-agent teams), unperturbed — the search supplies the adversaries.
fn hunt_instances(
    name: &str,
    sizes: Vec<u32>,
    seed: u64,
) -> Vec<(crate::campaign::Scenario, AdversarySpace)> {
    Matrix {
        families: vec![Family::Ring],
        sizes,
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        ..Matrix::new()
    }
    .campaign(name, seed)
    .expect("hunt campaign is well-formed")
    .scenarios()
    .iter()
    .map(|s| (s.clone(), hunt_space(&s.cfg)))
    .collect()
}

/// The hunt preset behind `experiments -- hunt`: a budgeted failure
/// search over the dr1/fr1 instance space (silent gathering on rings,
/// both teams), [`hunt_space`] adversaries, under the pinned seed
/// [`HUNT_SEED`]. `quick` halves the size axis and the budget.
pub fn hunt_spec(quick: bool) -> SearchSpec {
    hunt_spec_seeded(quick, HUNT_SEED)
}

/// [`hunt_spec`] under a custom master seed: the base instances are
/// honestly re-derived under `seed` (not just relabeled), exactly as the
/// campaign CLI's `--seed` re-expands its matrix.
pub fn hunt_spec_seeded(quick: bool, seed: u64) -> SearchSpec {
    let sizes: Vec<u32> = if quick { vec![4, 5] } else { vec![4, 5, 6, 8] };
    let name = if quick { "hunt-quick" } else { "hunt" };
    SearchSpec {
        name: name.into(),
        seed,
        budget: if quick { 32 } else { 64 },
        objective: Objective::Failure,
        instances: hunt_instances(name, sizes, seed),
    }
}

/// The adversary space of the late-outage hunt: every mutable axis is a
/// one-round scripted edge removal deep in the run's endgame. Slots below
/// `window` are pinned to keep-all (singleton axes, so no mutation ever
/// touches them) and the `slots` slots from `window` on choose freely
/// among keep-all and every ring edge. Every one-mutation neighbor
/// therefore diverges from the incumbent at round `window` or later and
/// shares the entire prefix below it — the regime the checkpoint/fork
/// engine is built for, and the opposite of [`hunt_space`], whose
/// wake/crash axes all act in the first few hundred rounds of runs that
/// last tens of thousands. Wake stays simultaneous and nothing crashes.
pub fn late_outage_space(cfg: &InitialConfiguration, window: u64, slots: u64) -> AdversarySpace {
    assert!(
        is_cycle(cfg.graph()),
        "scripted outages need a cycle base graph"
    );
    let edges = cfg.graph().edge_count() as u32;
    AdversarySpace {
        wake_offsets: cfg.labels().map(|_| vec![0]).collect(),
        crash_rounds: Vec::new(),
        edge_script: (0..window + slots)
            .map(|s| {
                if s < window {
                    vec![ScriptedRing::KEEP_ALL]
                } else {
                    let mut choices = vec![ScriptedRing::KEEP_ALL];
                    choices.extend(0..edges);
                    choices
                }
            })
            .collect(),
    }
}

/// The late-outage hunt the checkpoint/fork bench pair measures: silent
/// gathering on the two smoke rings, attacked only through
/// [`late_outage_space`] windows placed at roughly three quarters of each
/// baseline's gather time (the unperturbed runs gather at rounds ~6.5k
/// and ~8.7k under [`HUNT_SEED`]). The objective is the slowest gather:
/// can a one-round outage in the endgame delay the meeting? Every
/// candidate shares the whole pre-window prefix with the incumbent, so
/// this workload measures the checkpoint ladder's best case honestly —
/// the dr1/fr1 [`hunt_spec`] measures its worst.
pub fn late_outage_spec(budget: u64) -> SearchSpec {
    let instances = Matrix {
        families: vec![Family::Ring],
        sizes: vec![4, 5],
        teams: vec![vec![2, 3]],
        ..Matrix::new()
    }
    .campaign("hunt-late", HUNT_SEED)
    .expect("late-outage campaign is well-formed")
    .scenarios()
    .iter()
    .map(|s| {
        // Window starts sit at ~75% of the baseline gather round so the
        // removals land while the agents still move (a slot after the
        // meeting could never matter).
        let window = if s.key.n == 4 { 5000 } else { 7000 };
        let space = late_outage_space(&s.cfg, window, 12);
        (s.clone(), space)
    })
    .collect();
    SearchSpec {
        name: "hunt-late".into(),
        seed: HUNT_SEED,
        budget,
        objective: Objective::SlowGather,
        instances,
    }
}

/// The tiny CI smoke search: two ring instances, a 12-evaluation budget —
/// small enough to run twice per CI job, deterministic enough to byte-diff
/// across worker counts.
pub fn hunt_smoke_spec() -> SearchSpec {
    hunt_smoke_spec_seeded(HUNT_SEED)
}

/// [`hunt_smoke_spec`] under a custom master seed (see
/// [`hunt_spec_seeded`]).
pub fn hunt_smoke_spec_seeded(seed: u64) -> SearchSpec {
    SearchSpec {
        name: "hunt-smoke".into(),
        seed,
        budget: 12,
        objective: Objective::Failure,
        instances: hunt_instances("hunt-smoke", vec![4, 5], seed)
            .into_iter()
            .filter(|(s, _)| s.key.team == vec![2, 3])
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_tiny_and_fixed() {
        let c = smoke_campaign();
        assert_eq!(c.len(), 8);
        assert_eq!(c.seed(), 42);
    }

    #[test]
    fn demo_meets_the_acceptance_floor() {
        let c = demo_campaign(false);
        assert!(c.len() >= 200, "demo has {} scenarios", c.len());
        let mut families: Vec<&str> = c
            .scenarios()
            .iter()
            .map(|s| s.key.family.as_str())
            .collect();
        families.sort_unstable();
        families.dedup();
        assert!(families.len() >= 6, "only {} families", families.len());
    }

    #[test]
    fn demo_exercises_the_dynamism_axis() {
        for quick in [true, false] {
            let c = demo_campaign(quick);
            let mut topos: Vec<&str> = c.scenarios().iter().map(|s| s.key.topo.as_str()).collect();
            topos.sort_unstable();
            topos.dedup();
            assert!(
                topos.len() >= 3,
                "demo must sweep static + 2 dynamic topologies, got {topos:?}"
            );
            // Dynamic-ring cells exist, and only over cycle base graphs
            // (the ring family everywhere; other families only where the
            // instance happens to be a cycle, e.g. the 2×2 grid).
            assert!(c
                .scenarios()
                .iter()
                .any(|s| s.key.topo.starts_with("dring") && s.key.family == "ring"));
            for s in c.scenarios() {
                if s.key.topo.starts_with("dring") {
                    assert!(
                        nochatter_graph::dynamic::is_cycle(s.cfg.graph()),
                        "{} is a dring cell over a non-cycle",
                        s.key
                    );
                }
            }
        }
    }

    #[test]
    fn fr1_pairs_every_faulty_cell_with_a_fault_free_twin() {
        let c = fr1_campaign(true);
        let faulty: Vec<_> = c
            .scenarios()
            .iter()
            .filter(|s| s.key.fault != "none")
            .collect();
        assert!(!faulty.is_empty());
        // Both crash depths exist; the f = 2 list expands only for the
        // team containing label 5.
        assert!(faulty.iter().any(|s| s.key.fault == "crash3@64"));
        for s in &faulty {
            if s.key.fault.contains('+') {
                assert_eq!(s.key.team, vec![3, 5, 9], "{}", s.key);
            }
            let mut twin = s.key.clone();
            twin.fault = "none".into();
            let twin = c
                .scenarios()
                .iter()
                .find(|t| t.key == twin)
                .expect("fault-free twin exists");
            assert_eq!(twin.seed, s.seed, "twins must share the derived seed");
            assert_eq!(twin.cfg, s.cfg, "twins must share the base ring");
        }
    }

    #[test]
    fn hunt_presets_cover_the_three_adversary_axes() {
        let spec = hunt_spec(true);
        assert_eq!(spec.seed, HUNT_SEED);
        assert_eq!(spec.objective, Objective::Failure);
        assert_eq!(spec.instances.len(), 4, "2 sizes × 2 teams");
        for (base, space) in &spec.instances {
            assert_eq!(base.key.mode, "silent");
            assert_eq!(base.key.topo, "static", "the search supplies the adversary");
            assert_eq!(space.wake_offsets.len(), base.key.team.len());
            assert_eq!(space.wake_offsets[0], vec![0], "agent 0 always self-wakes");
            assert_eq!(space.crash_rounds.len(), base.key.team.len() - 1);
            assert_eq!(space.edge_script.len(), 2, "rings carry the edge axis");
            assert!(space.candidates() > u128::from(spec.budget));
        }
        let smoke = hunt_smoke_spec();
        assert_eq!(smoke.instances.len(), 2, "2 sizes × the 2-agent team");
        assert_eq!(smoke.budget, 12);
    }

    #[test]
    fn hunt_space_drops_the_edge_axis_off_cycles() {
        let cfg = crate::campaign::spread(Family::Star.instantiate(5, 1), &[2, 3]).unwrap();
        let space = hunt_space(&cfg);
        assert!(space.edge_script.is_empty(), "stars are not cycles");
        assert_eq!(space.wake_offsets.len(), 2);
    }

    #[test]
    fn dr1_pairs_every_dynamic_cell_with_a_static_twin() {
        let c = dr1_campaign(true);
        let dynamic: Vec<_> = c
            .scenarios()
            .iter()
            .filter(|s| s.key.topo != "static")
            .collect();
        assert!(!dynamic.is_empty());
        for s in dynamic {
            let mut twin = s.key.clone();
            twin.topo = "static".into();
            let twin = c
                .scenarios()
                .iter()
                .find(|t| t.key == twin)
                .expect("static twin exists");
            assert_eq!(twin.seed, s.seed, "twins must share the derived seed");
            assert_eq!(twin.cfg, s.cfg, "twins must share the base ring");
        }
    }
}
