//! The persistent, content-addressed scenario-result store.
//!
//! Every executed scenario's [`RunRecord`] can be cached under a 64-bit
//! *fingerprint* of everything that determines it: the canonical
//! [`ScenarioKey`](crate::ScenarioKey), the derived instance seed, the
//! full scenario content (graph adjacency, agent placement, the exact
//! schedule/topology/fault specs and algorithm variant — short names in
//! the key are human-readable, not injective), the on-disk
//! [`STORE_FORMAT_VERSION`], and a behavioral [`engine_fingerprint`]
//! probed from the engine itself. A campaign re-run against a warm cache
//! loads records instead of simulating; an interrupted campaign resumes
//! where it stopped, because the runner writes through per completed job.
//!
//! # On-disk layout
//!
//! One append-only log per cache directory, named
//! `store-v{STORE_FORMAT_VERSION}.log` — bumping the format version
//! changes the filename, so stale-format caches are simply never read
//! (every lookup misses) while new entries append to the new file. The
//! file starts with an 12-byte header (`b"NCSTORE\0"` + the format
//! version, little-endian); each entry is
//!
//! ```text
//! [entry magic: u32] [fingerprint: u64] [payload len: u32]
//! [FNV-1a checksum of payload: u64] [payload bytes]
//! ```
//!
//! with the payload a length-prefixed little-endian encoding of the
//! record. The reader is *corruption-tolerant by construction*: a bad
//! magic, an impossible length, a checksum mismatch or an undecodable
//! payload skips forward to the next magic and keeps scanning, a
//! truncated tail is dropped, and a mismatched header starts the log
//! afresh. Corruption can only ever turn hits into misses — never an
//! error, and never a wrong record (the checksum guards the payload, and
//! lookups re-verify the stored key and seed against the query).
//!
//! Concurrent writers interleave whole entries under the store's lock;
//! duplicate fingerprints are benign (last entry wins on reload, and all
//! copies decode to the identical record).

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use nochatter_graph::{InitialConfiguration, NodeId, Port};

use crate::campaign::{Scenario, ScenarioKind};
use crate::record::{fnv_bytes, RunRecord, ScenarioKey};
use crate::runner;

/// The on-disk format version. Part of both the log filename and every
/// fingerprint: bumping it makes every pre-existing cache entry a miss
/// without touching (or misreading) old files.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Log file header: magic bytes followed by the format version.
const FILE_MAGIC: &[u8; 8] = b"NCSTORE\0";

/// Header length: [`FILE_MAGIC`] + the little-endian format version.
const HEADER_LEN: usize = FILE_MAGIC.len() + 4;

/// Per-entry magic (little-endian `b"NCRE"`), the resync anchor of the
/// corruption-tolerant reader.
const ENTRY_MAGIC: u32 = u32::from_le_bytes(*b"NCRE");

/// Fixed bytes per entry before the payload: magic, fingerprint, length,
/// checksum.
const ENTRY_HEADER_LEN: usize = 4 + 8 + 4 + 8;

/// Upper bound on a credible payload length; anything larger is treated
/// as corruption instead of being allocated.
const MAX_PAYLOAD: usize = 1 << 24;

// ---------------------------------------------------------------------------
// Binary record encoding
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(buf, 0),
        Some(x) => {
            put_u8(buf, 1);
            put_u64(buf, x);
        }
    }
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => put_u8(buf, 0),
        Some(x) => {
            put_u8(buf, 1);
            put_u32(buf, x);
        }
    }
}

/// Encodes a record as the store's payload bytes: fixed field order,
/// little-endian integers, length-prefixed strings, one-byte option tags.
pub(crate) fn encode_record(r: &RunRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    put_str(&mut buf, &r.key.family);
    put_u32(&mut buf, r.key.n);
    put_u32(&mut buf, r.key.team.len() as u32);
    for &label in &r.key.team {
        put_u64(&mut buf, label);
    }
    put_str(&mut buf, &r.key.wake);
    put_str(&mut buf, &r.key.topo);
    put_str(&mut buf, &r.key.fault);
    put_str(&mut buf, &r.key.mode);
    put_str(&mut buf, &r.key.variant);
    put_u64(&mut buf, r.key.rep);
    put_u64(&mut buf, r.seed);
    put_u32(&mut buf, r.n_actual);
    put_u8(&mut buf, u8::from(r.ok));
    put_str(&mut buf, &r.status);
    put_u64(&mut buf, r.rounds);
    put_u64(&mut buf, r.moves);
    put_u64(&mut buf, r.blocked_moves);
    put_u32(&mut buf, r.crashed_agents);
    put_u64(&mut buf, r.engine_iterations);
    put_u64(&mut buf, r.skipped_rounds);
    put_u64(&mut buf, r.polled_agent_rounds);
    put_u32(&mut buf, r.max_colocation);
    put_opt_u64(&mut buf, r.leader);
    put_opt_u32(&mut buf, r.node);
    put_opt_u32(&mut buf, r.size);
    put_opt_u64(&mut buf, r.trace_digest);
    buf
}

/// A bounds-checked reader over payload bytes; every getter returns
/// `None` past the end instead of panicking, so corrupt payloads decode
/// to a miss.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        if len > MAX_PAYLOAD {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }

    fn opt_u32(&mut self) -> Option<Option<u32>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u32()?)),
            _ => None,
        }
    }
}

/// Decodes payload bytes back into a record; `None` on any truncation,
/// malformed option tag, or trailing garbage (the payload must be
/// consumed exactly).
pub(crate) fn decode_record(bytes: &[u8]) -> Option<RunRecord> {
    let mut r = Reader { bytes, pos: 0 };
    let family = r.str()?;
    let n = r.u32()?;
    let team_len = r.u32()? as usize;
    if team_len > MAX_PAYLOAD {
        return None;
    }
    let mut team = Vec::with_capacity(team_len.min(1024));
    for _ in 0..team_len {
        team.push(r.u64()?);
    }
    let key = ScenarioKey {
        family,
        n,
        team,
        wake: r.str()?,
        topo: r.str()?,
        fault: r.str()?,
        mode: r.str()?,
        variant: r.str()?,
        rep: r.u64()?,
    };
    let record = RunRecord {
        key,
        seed: r.u64()?,
        n_actual: r.u32()?,
        ok: match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        },
        status: r.str()?,
        rounds: r.u64()?,
        moves: r.u64()?,
        blocked_moves: r.u64()?,
        crashed_agents: r.u32()?,
        engine_iterations: r.u64()?,
        skipped_rounds: r.u64()?,
        polled_agent_rounds: r.u64()?,
        max_colocation: r.u32()?,
        leader: r.opt_u64()?,
        node: r.opt_u32()?,
        size: r.opt_u32()?,
        trace_digest: r.opt_u64()?,
    };
    (r.pos == bytes.len()).then_some(record)
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Digests a configuration's full content — adjacency with port numbers,
/// then agent placements — so two scenarios sharing a key but built over
/// different graphs can never share a cache entry.
fn cfg_digest(cfg: &InitialConfiguration) -> u64 {
    let g = cfg.graph();
    let mut bytes = Vec::with_capacity(16 * g.node_count());
    put_u32(&mut bytes, g.node_count() as u32);
    for u in 0..g.node_count() {
        let node = NodeId::new(u as u32);
        let degree = g.degree(node);
        put_u32(&mut bytes, degree);
        for p in 0..degree {
            let (to, back) = g.neighbor(node, Port::new(p)).expect("port in range");
            put_u32(&mut bytes, to.index() as u32);
            put_u32(&mut bytes, back.number());
        }
    }
    for &(label, node) in cfg.agents() {
        put_u64(&mut bytes, label.value());
        put_u32(&mut bytes, node.index() as u32);
    }
    fnv_bytes(&bytes)
}

/// Digests everything about a scenario that the canonical key's short
/// names might not capture injectively: the configuration, the exact
/// schedule/topology/fault specs and sensing mode (via their stable
/// `Debug` forms), and the algorithm variant's full content (gossip
/// payload scheme; unknown-bound decoy configurations and estimator
/// mode).
fn content_digest(scenario: &Scenario) -> u64 {
    let mut bytes = Vec::new();
    put_u64(&mut bytes, cfg_digest(&scenario.cfg));
    bytes.extend_from_slice(
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            scenario.mode, scenario.schedule, scenario.topo, scenario.fault
        )
        .as_bytes(),
    );
    match &scenario.kind {
        ScenarioKind::Gather => put_u8(&mut bytes, 1),
        ScenarioKind::Gossip(scheme) => {
            put_u8(&mut bytes, 2);
            bytes.extend_from_slice(format!("{scheme:?}").as_bytes());
        }
        ScenarioKind::Unknown { decoys, est_mode } => {
            put_u8(&mut bytes, 3);
            put_u32(&mut bytes, decoys.len() as u32);
            for decoy in decoys {
                put_u64(&mut bytes, cfg_digest(decoy));
            }
            bytes.extend_from_slice(format!("{est_mode:?}").as_bytes());
        }
    }
    fnv_bytes(&bytes)
}

/// The canonical probe scenarios behind [`engine_fingerprint`]: a small,
/// fixed slice of the engine's semantic surface — silent and talking
/// static gathering, the dynamic-ring adversary, and a crash fault — each
/// with a trace digest, so a change to wake-up, movement, declaration,
/// fault or dynamism semantics changes at least one probe record.
fn probe_scenarios() -> Vec<Scenario> {
    use nochatter_core::CommMode;
    use nochatter_graph::dynamic::DynamicRing;
    use nochatter_graph::{generators, Label};
    use nochatter_sim::{CrashPoint, FaultSpec, TopologySpec, WakeSchedule};

    let cfg = crate::campaign::spread(generators::ring(6), &[2, 3]).expect("probe cfg");
    let build = |mode: CommMode,
                 mode_name: &str,
                 topo: TopologySpec,
                 fault: FaultSpec,
                 schedule: WakeSchedule| {
        let key = ScenarioKey {
            family: "store-probe".into(),
            n: 6,
            team: vec![2, 3],
            wake: crate::campaign::wake_name(&schedule),
            topo: topo.short_name(),
            fault: fault.short_name(),
            mode: mode_name.into(),
            variant: "gather".into(),
            rep: 0,
        };
        Scenario {
            key,
            cfg: cfg.clone(),
            mode,
            schedule,
            topo,
            fault,
            kind: ScenarioKind::Gather,
            seed: 0x5702E,
        }
    };
    vec![
        build(
            CommMode::Silent,
            "silent",
            TopologySpec::Static,
            FaultSpec::None,
            WakeSchedule::Simultaneous,
        ),
        build(
            CommMode::Talking,
            "talking",
            TopologySpec::Static,
            FaultSpec::None,
            WakeSchedule::FirstOnly,
        ),
        build(
            CommMode::Silent,
            "silent",
            TopologySpec::Ring(DynamicRing { seed: 7 }),
            FaultSpec::None,
            WakeSchedule::Simultaneous,
        ),
        build(
            CommMode::Silent,
            "silent",
            TopologySpec::Static,
            FaultSpec::CrashAt(vec![CrashPoint {
                label: Label::new(3).expect("probe label"),
                round: 8,
            }]),
            WakeSchedule::Simultaneous,
        ),
    ]
}

/// The behavioral engine-semantics fingerprint: the digest of the encoded
/// records of a few canonical probe runs, computed once per process. Any
/// engine change that alters what the probes measure — rounds, moves,
/// trace digests, validation — changes this value, and with it every
/// scenario fingerprint, so a stale cache degrades to all-misses instead
/// of serving records the current engine would not produce.
///
/// The encoded probes include `polled_agent_rounds`, the one counter on
/// which the sparse and dense (`NOCHATTER_DENSE_LOOP=1`) round loops
/// differ — so the two loop modes fingerprint differently and a cache
/// written under one mode is all-misses under the other, instead of
/// replaying the other mode's poll counts.
pub fn engine_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let mut bytes = Vec::new();
        for probe in probe_scenarios() {
            bytes.extend_from_slice(&encode_record(&runner::execute_scenario(&probe)));
        }
        fnv_bytes(&bytes)
    })
}

/// The pure fingerprint combiner: FNV-1a over the canonical key, the
/// derived seed, the format version, the engine fingerprint and the
/// scenario content digest. Pinned by a golden test — any drift here
/// silently invalidates (or worse, wrongly shares) caches, so it must
/// fail loudly.
pub fn raw_fingerprint(
    canonical_key: &str,
    seed: u64,
    format_version: u32,
    engine: u64,
    content: u64,
) -> u64 {
    let mut bytes = Vec::with_capacity(canonical_key.len() + 29);
    bytes.extend_from_slice(canonical_key.as_bytes());
    put_u8(&mut bytes, 0);
    put_u64(&mut bytes, seed);
    put_u32(&mut bytes, format_version);
    put_u64(&mut bytes, engine);
    put_u64(&mut bytes, content);
    fnv_bytes(&bytes)
}

/// The store fingerprint of a scenario:
/// [`raw_fingerprint`]`(key.canonical(), seed, STORE_FORMAT_VERSION,
/// engine_fingerprint(), content digest)`.
pub fn scenario_fingerprint(scenario: &Scenario) -> u64 {
    raw_fingerprint(
        &scenario.key.canonical(),
        scenario.seed,
        STORE_FORMAT_VERSION,
        engine_fingerprint(),
        content_digest(scenario),
    )
}

/// Whether a record is a genuine engine result worth caching. Preflight
/// rejections never ran the engine (and may become runnable under a
/// future engine), panic records measured nothing trustworthy, and engine
/// errors are cheap to re-derive — none of them belong in the cache.
fn cacheable(record: &RunRecord) -> bool {
    !(record.status.starts_with("panic")
        || record.status.starts_with("unsupported")
        || record.status.starts_with("engine error"))
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Cache counters accumulated over a store's lifetime (plus what the
/// opening scan found); snapshot with [`Store::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint collision).
    pub misses: u64,
    /// Inserts dropped because the log could not be written (the run
    /// continues uncached; the CLI warns).
    pub write_errors: u64,
    /// Corrupt or truncated regions the opening scan skipped (each one a
    /// former entry degraded to a miss).
    pub corrupt_entries: u64,
}

/// Cache hit/miss counts of one cached run, surfaced in the CLI summary
/// and the trajectory artifact (`None`/absent when caching is off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells loaded from the store instead of simulated.
    pub hits: u64,
    /// Cells that had to run through the engine.
    pub misses: u64,
}

struct Inner {
    index: HashMap<u64, RunRecord>,
    file: std::fs::File,
}

/// A handle on one cache directory's result store: an in-memory
/// fingerprint index over the append-only log, plus an append handle for
/// write-through. Shared across worker threads by reference; all access
/// goes through an internal lock.
pub struct Store {
    path: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    write_errors: AtomicU64,
    corrupt_entries: u64,
    inner: Mutex<Inner>,
}

/// Scans the entry region of the log, building a last-entry-wins index
/// and counting the corrupt regions it had to skip.
fn scan_entries(data: &[u8]) -> (HashMap<u64, RunRecord>, u64) {
    let magic = ENTRY_MAGIC.to_le_bytes();
    let resync = |from: usize| {
        (from..data.len())
            .find(|&i| data[i..].starts_with(&magic))
            .unwrap_or(data.len())
    };
    let mut index = HashMap::new();
    let mut corrupt = 0u64;
    let mut pos = 0usize;
    while pos + ENTRY_HEADER_LEN <= data.len() {
        if data[pos..pos + 4] != magic {
            corrupt += 1;
            pos = resync(pos + 1);
            continue;
        }
        let fingerprint = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(data[pos + 12..pos + 16].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(data[pos + 16..pos + 24].try_into().expect("8 bytes"));
        let start = pos + ENTRY_HEADER_LEN;
        if len > MAX_PAYLOAD || start + len > data.len() {
            corrupt += 1;
            pos = resync(pos + 1);
            continue;
        }
        let payload = &data[start..start + len];
        if fnv_bytes(payload) != checksum {
            corrupt += 1;
            pos = resync(pos + 1);
            continue;
        }
        match decode_record(payload) {
            Some(record) => {
                index.insert(fingerprint, record);
            }
            None => corrupt += 1,
        }
        pos = start + len;
    }
    if pos < data.len() {
        corrupt += 1; // truncated tail
    }
    (index, corrupt)
}

impl Store {
    /// Opens (creating if needed) the result store under cache directory
    /// `dir`, scanning the current-format log into the in-memory index.
    /// Corrupt entries are skipped (counted in
    /// [`StoreStats::corrupt_entries`]); a log whose header does not match
    /// the current format is restarted from scratch — in every case the
    /// open succeeds and degraded entries become misses.
    ///
    /// # Errors
    ///
    /// Only genuine filesystem errors (directory not creatable, log not
    /// readable/appendable) propagate.
    pub fn open(dir: &Path) -> io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("store-v{STORE_FORMAT_VERSION}.log"));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let header_ok = bytes.len() >= HEADER_LEN
            && &bytes[..FILE_MAGIC.len()] == FILE_MAGIC
            && bytes[FILE_MAGIC.len()..HEADER_LEN] == STORE_FORMAT_VERSION.to_le_bytes();
        let (index, corrupt_entries) = if header_ok {
            scan_entries(&bytes[HEADER_LEN..])
        } else {
            // Missing, foreign or corrupt header: nothing in this file can
            // be trusted as ours — start the log afresh (all misses).
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(FILE_MAGIC);
            header.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
            std::fs::write(&path, header)?;
            (HashMap::new(), 0)
        };
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Store {
            path,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            corrupt_entries,
            inner: Mutex::new(Inner { index, file }),
        })
    }

    /// The log file this store reads and appends.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many distinct fingerprints the index currently holds.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            corrupt_entries: self.corrupt_entries,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("store lock poisoned")
    }

    /// Looks up the cached record of `scenario`. A hit requires the
    /// fingerprint to be present *and* the stored key and seed to equal
    /// the query's — a fingerprint collision (or a drifted fingerprint
    /// function wrongly sharing entries) degrades to a miss instead of
    /// returning another scenario's record.
    pub fn lookup(&self, scenario: &Scenario) -> Option<RunRecord> {
        let fingerprint = scenario_fingerprint(scenario);
        let hit = self
            .lock()
            .index
            .get(&fingerprint)
            .filter(|r| r.key == scenario.key && r.seed == scenario.seed)
            .cloned();
        match hit {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes `record` through to the log and the index. Records that
    /// never truly executed (panics, preflight rejections, engine errors)
    /// are not cached; a write failure counts in
    /// [`StoreStats::write_errors`] and the run continues uncached.
    pub fn insert(&self, scenario: &Scenario, record: &RunRecord) {
        if !cacheable(record) {
            return;
        }
        let fingerprint = scenario_fingerprint(scenario);
        let payload = encode_record(record);
        let mut entry = Vec::with_capacity(ENTRY_HEADER_LEN + payload.len());
        put_u32(&mut entry, ENTRY_MAGIC);
        put_u64(&mut entry, fingerprint);
        put_u32(&mut entry, payload.len() as u32);
        put_u64(&mut entry, fnv_bytes(&payload));
        entry.extend_from_slice(&payload);
        let mut inner = self.lock();
        if inner
            .file
            .write_all(&entry)
            .and_then(|()| inner.file.flush())
            .is_err()
        {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.index.insert(fingerprint, record.clone());
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{scenario_seed, spread};
    use nochatter_core::CommMode;
    use nochatter_graph::generators;
    use nochatter_sim::{FaultSpec, TopologySpec, WakeSchedule};

    fn scenario() -> Scenario {
        let key = ScenarioKey {
            family: "ring".into(),
            n: 4,
            team: vec![2, 3],
            wake: "simul".into(),
            topo: "static".into(),
            fault: "none".into(),
            mode: "silent".into(),
            variant: "gather".into(),
            rep: 0,
        };
        Scenario {
            seed: scenario_seed(7, &key),
            key,
            cfg: spread(generators::ring(4), &[2, 3]).unwrap(),
            mode: CommMode::Silent,
            schedule: WakeSchedule::Simultaneous,
            topo: TopologySpec::Static,
            fault: FaultSpec::None,
            kind: ScenarioKind::Gather,
        }
    }

    #[test]
    fn record_encoding_round_trips_bitwise() {
        let record = runner::execute_scenario(&scenario());
        assert!(record.ok, "{}", record.status);
        let decoded = decode_record(&encode_record(&record)).expect("decodes");
        assert_eq!(decoded, record);
    }

    #[test]
    fn decoder_rejects_truncation_and_trailing_garbage() {
        let record = runner::execute_scenario(&scenario());
        let bytes = encode_record(&record);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_record(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_record(&padded).is_none(), "trailing garbage");
    }

    #[test]
    fn store_round_trips_a_record() {
        let dir = std::env::temp_dir().join("nochatter-store-unit");
        let _ = std::fs::remove_dir_all(&dir);
        let s = scenario();
        let record = runner::execute_scenario(&s);
        {
            let store = Store::open(&dir).unwrap();
            assert!(store.lookup(&s).is_none(), "cold store misses");
            store.insert(&s, &record);
            assert_eq!(store.lookup(&s).as_ref(), Some(&record));
            assert_eq!(store.len(), 1);
        }
        // A fresh handle reloads the entry from disk.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.lookup(&s).as_ref(), Some(&record));
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 0,
                write_errors: 0,
                corrupt_entries: 0
            }
        );
    }

    #[test]
    fn non_executed_records_are_never_cached() {
        let dir = std::env::temp_dir().join("nochatter-store-noncacheable");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let s = scenario();
        for status in ["panic: boom", "unsupported: cell", "engine error: x"] {
            let mut record = runner::base_record(&s);
            record.status = status.into();
            store.insert(&s, &record);
        }
        assert!(store.is_empty(), "only genuine results are cached");
    }

    #[test]
    fn lookup_verifies_key_and_seed_not_just_the_fingerprint() {
        let dir = std::env::temp_dir().join("nochatter-store-collision");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let s = scenario();
        // Adversarially plant a *wrong* record under s's fingerprint (as a
        // fingerprint collision would): the lookup must refuse it.
        let mut wrong = runner::execute_scenario(&s);
        wrong.key.family = "other".into();
        store.lock().index.insert(scenario_fingerprint(&s), wrong);
        assert!(store.lookup(&s).is_none(), "collision degrades to a miss");
    }

    #[test]
    fn engine_fingerprint_is_stable_within_a_process() {
        assert_eq!(engine_fingerprint(), engine_fingerprint());
        assert_ne!(engine_fingerprint(), 0);
    }

    #[test]
    fn fingerprint_separates_every_input() {
        let s = scenario();
        let base = scenario_fingerprint(&s);
        let mut seeded = s.clone();
        seeded.seed ^= 1;
        assert_ne!(scenario_fingerprint(&seeded), base, "seed is salted in");
        let mut keyed = s.clone();
        keyed.key.rep = 9;
        assert_ne!(scenario_fingerprint(&keyed), base, "key is salted in");
        let mut regraphed = s.clone();
        regraphed.cfg = spread(generators::path(4), &[2, 3]).unwrap();
        assert_ne!(
            scenario_fingerprint(&regraphed),
            base,
            "same key over a different graph must not share an entry"
        );
        assert_ne!(
            raw_fingerprint(&s.key.canonical(), s.seed, STORE_FORMAT_VERSION + 1, 1, 2),
            raw_fingerprint(&s.key.canonical(), s.seed, STORE_FORMAT_VERSION, 1, 2),
            "format version is salted in"
        );
        assert_ne!(
            raw_fingerprint(&s.key.canonical(), s.seed, STORE_FORMAT_VERSION, 1, 2),
            raw_fingerprint(&s.key.canonical(), s.seed, STORE_FORMAT_VERSION, 3, 2),
            "engine fingerprint is salted in"
        );
    }
}
