//! Structured campaign reports: deterministic JSON and CSV, plus the
//! `BENCH_campaign.json` trajectory artifact.
//!
//! The serializers are hand-rolled (the build environment is offline; no
//! serde) and deliberately boring: fixed field order, `\n` line endings, a
//! trailing newline, no floats except in the trajectory summary. Everything
//! in [`CampaignReport::to_json`] and [`CampaignReport::to_csv`] is a pure
//! function of the campaign spec — wall-clock time and worker count are
//! excluded — so golden-file diffs and worker-count equality checks are
//! byte-exact.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::record::{RunRecord, ScenarioKey};
use crate::store::CacheStats;

/// The collected result of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign name (also the report file stem).
    pub name: String,
    /// The campaign master seed.
    pub seed: u64,
    /// One record per scenario, in scenario-key order.
    pub records: Vec<RunRecord>,
    /// How many worker threads executed the run (not serialized into the
    /// deterministic reports).
    pub workers: usize,
    /// Wall-clock duration of the run (not serialized into the
    /// deterministic reports).
    pub wall: Duration,
    /// Cache hit/miss counts when the run went through a result store
    /// (`None` with caching off). Surfaced only in the trajectory
    /// artifact and the CLI summary — the deterministic JSON/CSV reports
    /// exclude it, so they stay byte-identical across cache states.
    pub cache: Option<CacheStats>,
}

/// Escapes a string for a JSON string literal (quotes not included).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a CSV field: quoted iff it contains a comma, quote or newline.
pub(crate) fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

pub(crate) fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

/// The shared record column list: campaign CSVs use it verbatim; the search
/// CSV appends its per-instance columns in front of it.
pub(crate) const RECORD_CSV_COLUMNS: &str =
    "key,family,n,n_actual,team,wake,topo,fault,mode,variant,rep,seed,ok,status,rounds,\
     moves,blocked_moves,crashed_agents,engine_iterations,skipped_rounds,max_colocation,\
     leader,node,size,trace_digest";

/// One record as a JSON object (no indent, no trailing comma) — the exact
/// historical shape of [`CampaignReport::to_json`] record lines, shared with
/// the search report so witness records diff cleanly against campaign ones.
///
/// Dynamism and fault fields appear only on dynamic/faulty records:
/// unperturbed reports must stay byte-identical to their goldens.
pub(crate) fn record_json_object(r: &RunRecord) -> String {
    let dynamism = if r.key.topo.is_empty() || r.key.topo == "static" {
        String::new()
    } else {
        format!(
            ", \"topo\": \"{}\", \"blocked_moves\": {}",
            json_escape(&r.key.topo),
            r.blocked_moves
        )
    };
    let fault = if r.key.fault.is_empty() || r.key.fault == "none" {
        String::new()
    } else {
        format!(
            ", \"fault\": \"{}\", \"crashed_agents\": {}",
            json_escape(&r.key.fault),
            r.crashed_agents
        )
    };
    format!(
        "{{\"key\": \"{key}\", \"family\": \"{family}\", \"n\": {n}, \
         \"n_actual\": {n_actual}, \"team\": \"{team}\", \"wake\": \"{wake}\", \
         \"mode\": \"{mode}\", \"variant\": \"{variant}\", \"rep\": {rep}, \
         \"seed\": {seed}, \"ok\": {ok}, \"status\": \"{status}\", \
         \"rounds\": {rounds}, \"moves\": {moves}, \
         \"engine_iterations\": {iters}, \"skipped_rounds\": {skipped}, \
         \"max_colocation\": {coloc}, \"leader\": {leader}, \"node\": {node}, \
         \"size\": {size}, \"trace_digest\": {digest}{dynamism}{fault}}}",
        key = json_escape(&r.key.canonical()),
        family = json_escape(&r.key.family),
        n = r.key.n,
        n_actual = r.n_actual,
        team = r.key.team_string(),
        wake = json_escape(&r.key.wake),
        mode = json_escape(&r.key.mode),
        variant = json_escape(&r.key.variant),
        rep = r.key.rep,
        seed = r.seed,
        ok = r.ok,
        status = json_escape(&r.status),
        rounds = r.rounds,
        moves = r.moves,
        iters = r.engine_iterations,
        skipped = r.skipped_rounds,
        coloc = r.max_colocation,
        leader = opt_u64(r.leader),
        node = opt_u64(r.node.map(u64::from)),
        size = opt_u64(r.size.map(u64::from)),
        digest = r
            .trace_digest
            .map_or_else(|| "null".into(), |d| format!("\"0x{d:016x}\"")),
    )
}

/// One record as a CSV row under [`RECORD_CSV_COLUMNS`] (no trailing
/// newline); `topo`/`fault` render as `static`/`none` on unperturbed cells.
pub(crate) fn record_csv_row(r: &RunRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        csv_escape(&r.key.canonical()),
        csv_escape(&r.key.family),
        r.key.n,
        r.n_actual,
        r.key.team_string(),
        csv_escape(&r.key.wake),
        csv_escape(if r.key.topo.is_empty() {
            "static"
        } else {
            &r.key.topo
        }),
        csv_escape(if r.key.fault.is_empty() {
            "none"
        } else {
            &r.key.fault
        }),
        csv_escape(&r.key.mode),
        csv_escape(&r.key.variant),
        r.key.rep,
        r.seed,
        r.ok,
        csv_escape(&r.status),
        r.rounds,
        r.moves,
        r.blocked_moves,
        r.crashed_agents,
        r.engine_iterations,
        r.skipped_rounds,
        r.max_colocation,
        r.leader.map_or_else(String::new, |v| v.to_string()),
        r.node.map_or_else(String::new, |v| v.to_string()),
        r.size.map_or_else(String::new, |v| v.to_string()),
        r.trace_digest
            .map_or_else(String::new, |d| format!("0x{d:016x}")),
    )
}

/// Renders a throughput rate for the trajectory JSON: `null` when the wall
/// clock was too coarse to measure (never a floored, inflated number).
pub(crate) fn opt_rate(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |x| format!("{x:.1}"))
}

impl CampaignReport {
    /// How many scenarios met their success criterion.
    pub fn ok_count(&self) -> usize {
        self.records.iter().filter(|r| r.ok).count()
    }

    /// Wall-clock seconds of the run, or `None` when the measurement is too
    /// coarse to divide by (under one microsecond). The historical behavior
    /// — flooring at 1µs — silently inflated every `*_per_sec` rate on
    /// sub-microsecond campaigns; an honest report declines to produce a
    /// number instead.
    fn wall_secs(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs >= 1e-6).then_some(secs)
    }

    /// Executed scenarios per wall-clock second, or `None` when the wall
    /// clock was too coarse to measure (serialized as `null`).
    pub fn scenarios_per_sec(&self) -> Option<f64> {
        Some(self.records.len() as f64 / self.wall_secs()?)
    }

    /// Total simulated rounds across all records, fast-forwarded rounds
    /// *included* — the amount of model time the campaign covered.
    pub fn total_rounds(&self) -> u64 {
        self.records.iter().map(|r| r.rounds).sum()
    }

    /// Total rounds the engine actually stepped through, i.e.
    /// [`CampaignReport::total_rounds`] minus the quiescent stretches the
    /// fast-forward skipped. This is the honest measure of simulation work
    /// for throughput claims; `total_rounds` measures model-time coverage.
    pub fn total_executed_rounds(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.rounds.saturating_sub(r.skipped_rounds))
            .sum()
    }

    /// Simulated rounds per wall-clock second, fast-forwarded rounds
    /// *included* — the rate at which *model time* advances, not the rate
    /// of work done. A campaign dominated by quiescent waiting (the
    /// unknown-bound algorithm) posts an enormous number here while the
    /// engine idles; quote [`CampaignReport::executed_rounds_per_sec`] for
    /// performance claims. `None` when the wall clock was too coarse.
    pub fn rounds_per_sec(&self) -> Option<f64> {
        Some(self.total_rounds() as f64 / self.wall_secs()?)
    }

    /// Rounds the engine actually stepped through per wall-clock second
    /// (fast-forward excluded) — the honest throughput figure. `None` when
    /// the wall clock was too coarse.
    pub fn executed_rounds_per_sec(&self) -> Option<f64> {
        Some(self.total_executed_rounds() as f64 / self.wall_secs()?)
    }

    /// Executed engine loop iterations per wall-clock second (fast-forward
    /// excluded — the rate of actual hot-path work; per-run counters are
    /// identical whether cells ran solo or batched). `None` when the wall
    /// clock was too coarse.
    pub fn engine_iterations_per_sec(&self) -> Option<f64> {
        let total: u64 = self.records.iter().map(|r| r.engine_iterations).sum();
        Some(total as f64 / self.wall_secs()?)
    }

    /// Behavior polls executed per wall-clock second — the sparse round
    /// loop's honest denominator, mirroring the executed-vs-model rounds
    /// split: the sparse win shows up here as *fewer polls for the same
    /// reports*, never as inflated throughput. `None` when the wall clock
    /// was too coarse.
    pub fn polled_rounds_per_sec(&self) -> Option<f64> {
        let total: u64 = self.records.iter().map(|r| r.polled_agent_rounds).sum();
        Some(total as f64 / self.wall_secs()?)
    }

    /// Looks up the record of a key by canonical form.
    pub fn record(&self, canonical_key: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.key.canonical() == canonical_key)
    }

    /// The record whose key equals `record`'s with `mutate` applied — the
    /// twin along one execution axis (both run on the identical instance,
    /// since seeds derive from the axis-independent instance sub-key).
    fn twin_of(
        &self,
        record: &RunRecord,
        mutate: impl FnOnce(&mut ScenarioKey),
    ) -> Option<&RunRecord> {
        let mut key = record.key.clone();
        mutate(&mut key);
        self.records.iter().find(|r| r.key == key)
    }

    /// Pairs every record in sensing mode `a` with its twin in mode `b` —
    /// the record whose key is identical except for the mode axis. Since
    /// seeds derive from the mode-independent instance sub-key, each pair
    /// ran on the identical configuration; this is the lookup behind every
    /// differential (silent vs talking) comparison.
    ///
    /// # Panics
    ///
    /// Panics if a twin is missing — a matrix listing both modes always
    /// produces both.
    pub fn mode_pairs(&self, a: &str, b: &str) -> Vec<(&RunRecord, &RunRecord)> {
        self.records
            .iter()
            .filter(|r| r.key.mode == a)
            .map(|ra| {
                let rb = self
                    .twin_of(ra, |key| key.mode = b.to_string())
                    .unwrap_or_else(|| panic!("no {b} twin for {}", ra.key));
                (ra, rb)
            })
            .collect()
    }

    /// Pairs every record with topology `a` with its twin under topology
    /// `b` — the record whose key is identical except for the dynamism
    /// axis. Seeds derive from the topology-independent instance sub-key,
    /// so each pair ran on the identical base graph and exploration setup:
    /// this is the lookup behind static-vs-dynamic differential
    /// comparisons, exactly as [`CampaignReport::mode_pairs`] is for
    /// silent-vs-talking.
    ///
    /// Unlike the mode axis, the dynamism axis is partial — matrix
    /// expansion skips cells whose topology cannot run over the
    /// instantiated graph (a dynamic ring over a star) — so records
    /// without a `b` twin are skipped rather than treated as an error,
    /// and the lookup is total in both directions.
    pub fn topo_pairs(&self, a: &str, b: &str) -> Vec<(&RunRecord, &RunRecord)> {
        self.records
            .iter()
            .filter(|r| r.key.topo == a)
            .filter_map(|ra| {
                self.twin_of(ra, |key| key.topo = b.to_string())
                    .map(|rb| (ra, rb))
            })
            .collect()
    }

    /// Pairs every record with fault spec `a` with its twin under fault
    /// spec `b` — the record whose key is identical except for the fault
    /// axis. Seeds derive from the fault-independent instance sub-key, so
    /// each pair ran on the identical base graph and exploration setup:
    /// the lookup behind faulty-vs-fault-free differential comparisons,
    /// mirroring [`CampaignReport::topo_pairs`] on the dynamism axis.
    ///
    /// The fault axis is partial too — matrix expansion skips crash lists
    /// naming labels outside a team — so records without a `b` twin are
    /// skipped rather than treated as an error.
    pub fn fault_pairs(&self, a: &str, b: &str) -> Vec<(&RunRecord, &RunRecord)> {
        self.records
            .iter()
            .filter(|r| r.key.fault == a)
            .filter_map(|ra| {
                self.twin_of(ra, |key| key.fault = b.to_string())
                    .map(|rb| (ra, rb))
            })
            .collect()
    }

    /// The deterministic JSON report: campaign identity plus one object per
    /// record, in key order. Identical for any worker count.
    ///
    /// Records of dynamic cells carry two extra fields (`"topo"` and
    /// `"blocked_moves"`), and records of faulty cells two more
    /// (`"fault"` and `"crashed_agents"`); static fault-free records keep
    /// the exact historical shape, so golden reports of static fault-free
    /// campaigns stay byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"campaign\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scenario_count\": {},", self.records.len());
        let _ = writeln!(out, "  \"ok_count\": {},", self.ok_count());
        let _ = writeln!(out, "  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{}", record_json_object(r), comma);
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// The deterministic CSV report (same fields as the JSON records; the
    /// tabular format carries the `topo`/`blocked_moves` and
    /// `fault`/`crashed_agents` columns for every row — `static` / 0 and
    /// `none` / 0 on unperturbed cells).
    pub fn to_csv(&self) -> String {
        let mut out = format!("{RECORD_CSV_COLUMNS}\n");
        for r in &self.records {
            let _ = writeln!(out, "{}", record_csv_row(r));
        }
        out
    }

    /// The `BENCH_campaign.json` trajectory artifact: campaign-level
    /// aggregates plus the run's wall-clock time and worker count. Unlike
    /// [`CampaignReport::to_json`], this file intentionally records *how*
    /// the run executed, so it differs across machines and worker counts.
    ///
    /// Throughput semantics: `rounds_per_sec` counts fast-forwarded
    /// (skipped) rounds and therefore measures model-time coverage;
    /// `executed_rounds_per_sec` excludes them and measures simulation
    /// work. All `*_per_sec` fields are `null` when the run was too fast
    /// to time (wall clock under one microsecond) — never inflated by a
    /// floor.
    ///
    /// Runs executed against a result store additionally carry
    /// `cache_hits` and `cache_misses`; uncached runs omit both fields
    /// entirely, keeping the historical shape.
    pub fn trajectory_json(&self) -> String {
        let total_rounds: u64 = self.total_rounds();
        let total_moves: u64 = self.records.iter().map(|r| r.moves).sum();
        let total_blocked: u64 = self.records.iter().map(|r| r.blocked_moves).sum();
        let total_crashed: u64 = self
            .records
            .iter()
            .map(|r| u64::from(r.crashed_agents))
            .sum();
        let total_iters: u64 = self.records.iter().map(|r| r.engine_iterations).sum();
        let total_polled: u64 = self.records.iter().map(|r| r.polled_agent_rounds).sum();
        let mut families: Vec<&str> = self.records.iter().map(|r| r.key.family.as_str()).collect();
        families.sort_unstable();
        families.dedup();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"campaign\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scenario_count\": {},", self.records.len());
        let _ = writeln!(out, "  \"ok_count\": {},", self.ok_count());
        let _ = writeln!(
            out,
            "  \"families\": [{}],",
            families
                .iter()
                .map(|f| format!("\"{}\"", json_escape(f)))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "  \"total_rounds\": {total_rounds},");
        let _ = writeln!(
            out,
            "  \"total_executed_rounds\": {},",
            self.total_executed_rounds()
        );
        let _ = writeln!(out, "  \"total_moves\": {total_moves},");
        let _ = writeln!(out, "  \"total_blocked_moves\": {total_blocked},");
        let _ = writeln!(out, "  \"total_crashed_agents\": {total_crashed},");
        let _ = writeln!(out, "  \"total_engine_iterations\": {total_iters},");
        let _ = writeln!(out, "  \"total_polled_agent_rounds\": {total_polled},");
        // Cache fields appear only on cached runs, so uncached trajectory
        // artifacts keep their exact historical shape.
        if let Some(cache) = self.cache {
            let _ = writeln!(out, "  \"cache_hits\": {},", cache.hits);
            let _ = writeln!(out, "  \"cache_misses\": {},", cache.misses);
        }
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"wall_ms\": {},", self.wall.as_millis());
        let _ = writeln!(
            out,
            "  \"scenarios_per_sec\": {},",
            opt_rate(self.scenarios_per_sec())
        );
        let _ = writeln!(
            out,
            "  \"rounds_per_sec\": {},",
            opt_rate(self.rounds_per_sec())
        );
        let _ = writeln!(
            out,
            "  \"executed_rounds_per_sec\": {},",
            opt_rate(self.executed_rounds_per_sec())
        );
        let _ = writeln!(
            out,
            "  \"engine_iterations_per_sec\": {},",
            opt_rate(self.engine_iterations_per_sec())
        );
        let _ = writeln!(
            out,
            "  \"polled_rounds_per_sec\": {}",
            opt_rate(self.polled_rounds_per_sec())
        );
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes `<dir>/<name>.json`, `<dir>/<name>.csv` and
    /// `<dir>/BENCH_campaign.json`, creating `dir` if needed; returns the
    /// three paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self, dir: &Path) -> io::Result<CampaignArtifacts> {
        std::fs::create_dir_all(dir)?;
        let artifacts = CampaignArtifacts {
            json: dir.join(format!("{}.json", self.name)),
            csv: dir.join(format!("{}.csv", self.name)),
            trajectory: dir.join("BENCH_campaign.json"),
        };
        std::fs::write(&artifacts.json, self.to_json())?;
        std::fs::write(&artifacts.csv, self.to_csv())?;
        std::fs::write(&artifacts.trajectory, self.trajectory_json())?;
        Ok(artifacts)
    }
}

/// Where [`CampaignReport::write_files`] put its three artifacts.
#[derive(Clone, Debug)]
pub struct CampaignArtifacts {
    /// The deterministic per-record JSON report.
    pub json: PathBuf,
    /// The deterministic per-record CSV report.
    pub csv: PathBuf,
    /// The `BENCH_campaign.json` trajectory summary.
    pub trajectory: PathBuf,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Matrix;
    use crate::runner::run_campaign;
    use nochatter_graph::generators::Family;

    fn tiny_report() -> CampaignReport {
        run_campaign(
            &Matrix {
                families: vec![Family::Path],
                sizes: vec![4],
                teams: vec![vec![2, 3]],
                ..Matrix::new()
            }
            .campaign("tiny", 3)
            .unwrap(),
            1,
        )
    }

    #[test]
    fn json_has_stable_shape() {
        let json = tiny_report().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"campaign\": \"tiny\""));
        assert!(json.contains("\"scenario_count\": 1"));
        assert!(json.contains("\"status\": \"gathered\""));
        assert!(json.contains("\"trace_digest\": \"0x"));
    }

    #[test]
    fn csv_has_header_plus_one_row_per_record() {
        let report = tiny_report();
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + report.records.len());
        assert!(csv.lines().nth(1).unwrap().contains("path"));
    }

    #[test]
    fn trajectory_includes_execution_facts() {
        let t = tiny_report().trajectory_json();
        assert!(t.contains("\"workers\": 1"));
        assert!(t.contains("\"wall_ms\""));
        assert!(t.contains("\"families\": [\"path\"]"));
        assert!(t.contains("\"total_executed_rounds\""));
        assert!(t.contains("\"executed_rounds_per_sec\""));
    }

    #[test]
    fn trajectory_carries_cache_stats_only_on_cached_runs() {
        let mut report = tiny_report();
        assert!(!report.trajectory_json().contains("cache_"));
        report.cache = Some(CacheStats { hits: 3, misses: 4 });
        let t = report.trajectory_json();
        assert!(t.contains("\"cache_hits\": 3,"));
        assert!(t.contains("\"cache_misses\": 4,"));
        // The deterministic reports never carry cache facts — byte
        // identity across cache states holds by construction.
        assert!(!report.to_json().contains("cache_"));
        assert!(!report.to_csv().contains("cache_"));
    }

    #[test]
    fn unmeasurable_walls_yield_null_rates_not_inflated_ones() {
        // The historical 1µs floor turned a sub-microsecond campaign into
        // an arbitrarily huge `*_per_sec`; rates must decline instead.
        let mut report = tiny_report();
        report.wall = Duration::ZERO;
        assert_eq!(report.scenarios_per_sec(), None);
        assert_eq!(report.rounds_per_sec(), None);
        assert_eq!(report.executed_rounds_per_sec(), None);
        assert_eq!(report.engine_iterations_per_sec(), None);
        let t = report.trajectory_json();
        assert!(t.contains("\"scenarios_per_sec\": null"));
        assert!(t.contains("\"executed_rounds_per_sec\": null"));

        report.wall = Duration::from_secs(2);
        assert_eq!(
            report.scenarios_per_sec(),
            Some(report.records.len() as f64 / 2.0)
        );
    }

    #[test]
    fn executed_rounds_exclude_fast_forwarded_ones() {
        let report = tiny_report();
        let skipped: u64 = report.records.iter().map(|r| r.skipped_rounds).sum();
        assert_eq!(
            report.total_executed_rounds(),
            report.total_rounds() - skipped
        );
        assert!(report.total_executed_rounds() <= report.total_rounds());
    }

    #[test]
    fn write_files_round_trips() {
        // No tempdir crate offline; the OS temp dir is fine for a unit test.
        let dir = std::env::temp_dir().join("nochatter-lab-report-test");
        let report = tiny_report();
        let artifacts = report.write_files(&dir).unwrap();
        assert_eq!(
            std::fs::read_to_string(artifacts.json).unwrap(),
            report.to_json()
        );
        assert_eq!(
            std::fs::read_to_string(artifacts.csv).unwrap(),
            report.to_csv()
        );
        assert!(artifacts.trajectory.ends_with("BENCH_campaign.json"));
    }

    #[test]
    fn topo_pairs_skips_records_without_a_twin() {
        // A static-only report has no dynamic twins; the lookup must be
        // total (empty), not a panic, in either direction.
        let report = tiny_report();
        assert!(report.topo_pairs("static", "dring@1").is_empty());
        assert!(report.topo_pairs("dring@1", "static").is_empty());
    }

    #[test]
    fn fault_pairs_skips_records_without_a_twin() {
        // A fault-free report has no faulty twins; the lookup must be
        // total (empty), not a panic, in either direction.
        let report = tiny_report();
        assert!(report.fault_pairs("none", "crash3@64").is_empty());
        assert!(report.fault_pairs("crash3@64", "none").is_empty());
    }

    #[test]
    fn escaping_helpers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
