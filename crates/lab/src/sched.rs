//! The work-stealing scheduler behind the campaign runner.
//!
//! `count` jobs (indices `0..count`) are distributed over `workers` worker
//! threads as contiguous chunks seeded into per-worker deques. A worker
//! pops from the front of its own deque; when that runs dry it scans for
//! the richest victim and steals the *back half* of its deque in one lock,
//! so load imbalance (one worker's chunk full of heavyweight cells) heals
//! in O(log) steals instead of a cell at a time through a shared cursor.
//! The deques hold only `usize` indices behind short-lived mutexes —
//! vendored-shim friendly, no external scheduler dependency.
//!
//! **Determinism.** Stealing reorders *execution*, never *results*: each
//! job writes its result into its own [`OnceLock`] slot (lock-free for
//! disjoint indices, and `set` doubles as an exactly-once assertion), and
//! the caller reads the slots back in index order. Any schedule of any
//! number of workers therefore produces the same result vector.
//!
//! **Panic isolation.** Every job runs under [`catch_unwind`]. A panic is
//! converted into a result via the caller's `on_panic` hook (the campaign
//! runner records a failed `RunRecord`), and the worker's scratch is
//! replaced wholesale — the scratch carries no semantic state, but a
//! panicking run may have left borrows half-restored, so the safe move is
//! a fresh one. One poisoned cell can no longer abort a million-cell
//! sweep.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

use nochatter_sim::EngineScratch;

/// Renders a panic payload the way the default hook would: the `&str` or
/// `String` message if there is one, a placeholder otherwise.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes jobs `0..count` across `workers` threads with work stealing
/// and returns their results in index order, independent of the worker
/// count and of the steal schedule.
///
/// `job(index, scratch)` produces index `index`'s result against the
/// worker's reusable [`EngineScratch`]; if it panics, the scratch is
/// replaced and `on_panic(index, message)` produces the result instead.
/// With `workers <= 1` (or a single job) everything runs inline on the
/// caller's thread through the identical job/panic path — one code path,
/// no thread spawn.
pub(crate) fn run_sharded<T, J, P>(count: usize, workers: usize, job: J, on_panic: P) -> Vec<T>
where
    T: Send + Sync,
    J: Fn(usize, &mut EngineScratch) -> T + Sync,
    P: Fn(usize, String) -> T + Sync,
{
    let run_one = |index: usize, scratch: &mut EngineScratch| -> T {
        match catch_unwind(AssertUnwindSafe(|| job(index, scratch))) {
            Ok(value) => value,
            Err(payload) => {
                *scratch = EngineScratch::new();
                on_panic(index, panic_message(payload))
            }
        }
    };

    if workers <= 1 || count <= 1 {
        let mut scratch = EngineScratch::new();
        return (0..count).map(|i| run_one(i, &mut scratch)).collect();
    }

    // Seed each worker's deque with a contiguous chunk of the index space
    // (the first `count % workers` workers take one extra).
    let deques: Vec<Mutex<VecDeque<usize>>> = {
        let base = count / workers;
        let extra = count % workers;
        let mut next = 0;
        (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let chunk = (next..next + len).collect();
                next += len;
                Mutex::new(chunk)
            })
            .collect()
    };
    let slots: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let run_one = &run_one;
            scope.spawn(move || {
                let mut scratch = EngineScratch::new();
                while let Some(index) = next_job(deques, me) {
                    let value = run_one(index, &mut scratch);
                    // Disjoint lock-free writes: every index is claimed by
                    // exactly one worker, and `set` asserts it.
                    assert!(
                        slots[index].set(value).is_ok(),
                        "job {index} was scheduled twice"
                    );
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every scheduled job produced a result")
        })
        .collect()
}

/// Claims the next job for worker `me`: the front of its own deque, or a
/// steal of the back half of the richest victim's deque. `None` once every
/// deque is empty (in-flight jobs on other workers need no help).
fn next_job(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(index) = deques[me].lock().expect("deque poisoned").pop_front() {
        return Some(index);
    }
    loop {
        let mut victim = me;
        let mut best = 0;
        for (i, deque) in deques.iter().enumerate() {
            if i == me {
                continue;
            }
            let len = deque.lock().expect("deque poisoned").len();
            if len > best {
                best = len;
                victim = i;
            }
        }
        if best == 0 {
            return None;
        }
        let mut queue = deques[victim].lock().expect("deque poisoned");
        let len = queue.len();
        if len == 0 {
            // Lost the race to another thief; rescan.
            continue;
        }
        let mut stolen = queue.split_off(len - len.div_ceil(2));
        drop(queue);
        let first = stolen.pop_front().expect("stole at least one job");
        if !stolen.is_empty() {
            deques[me]
                .lock()
                .expect("deque poisoned")
                .extend(stolen.drain(..));
        }
        return Some(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn job_ids(count: usize, workers: usize) -> Vec<usize> {
        run_sharded(
            count,
            workers,
            |i, _scratch| i * 10,
            |_, _| panic!("no job panics here"),
        )
    }

    #[test]
    fn every_job_runs_exactly_once_in_index_order() {
        for workers in [1, 2, 3, 4, 7, 16] {
            for count in [0, 1, 2, 5, 33, 100] {
                let results = job_ids(count, workers);
                let expected: Vec<usize> = (0..count).map(|i| i * 10).collect();
                assert_eq!(results, expected, "count={count} workers={workers}");
            }
        }
    }

    #[test]
    fn results_are_independent_of_worker_count() {
        let one = job_ids(57, 1);
        for workers in [2, 4, 9] {
            assert_eq!(job_ids(57, workers), one);
        }
    }

    #[test]
    fn panicking_jobs_become_on_panic_results() {
        for workers in [1, 4] {
            let executed = AtomicUsize::new(0);
            let results: Vec<String> = run_sharded(
                8,
                workers,
                |i, _scratch| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if i % 3 == 0 {
                        panic!("boom at {i}");
                    }
                    format!("ok {i}")
                },
                |i, message| format!("caught {i}: {message}"),
            );
            assert_eq!(executed.load(Ordering::Relaxed), 8);
            for (i, r) in results.iter().enumerate() {
                if i % 3 == 0 {
                    assert_eq!(r, &format!("caught {i}: boom at {i}"));
                } else {
                    assert_eq!(r, &format!("ok {i}"));
                }
            }
        }
    }

    #[test]
    fn zero_jobs_yield_an_empty_result_for_any_worker_count() {
        for workers in [0, 1, 8, 64] {
            assert!(job_ids(0, workers).is_empty(), "workers={workers}");
        }
    }

    #[test]
    fn one_job_with_many_workers_runs_inline_exactly_once() {
        // count <= 1 takes the inline path no matter how many workers were
        // requested: no threads, one execution, one slot.
        let runs = AtomicUsize::new(0);
        let results = run_sharded(
            1,
            32,
            |i, _scratch| {
                runs.fetch_add(1, Ordering::Relaxed);
                i + 7
            },
            |_, _| unreachable!("no panics"),
        );
        assert_eq!(results, vec![7]);
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn more_workers_than_jobs_run_every_job_exactly_once() {
        // 3 jobs across 16 workers: 13 deques seed empty, so idle workers
        // scan victims that have nothing to steal and must exit cleanly,
        // while the OnceLock slots assert each job ran exactly once.
        let runs: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let results = run_sharded(
            3,
            16,
            |i, _scratch| {
                runs[i].fetch_add(1, Ordering::Relaxed);
                // Keep the job in flight long enough that idle workers
                // really do scan while the deques are empty.
                std::thread::sleep(std::time::Duration::from_millis(1));
                i * 100
            },
            |_, _| unreachable!("no panics"),
        );
        assert_eq!(results, vec![0, 100, 200]);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "job {i} must run once");
        }
    }

    #[test]
    fn stealing_from_empty_victims_terminates_with_correct_results() {
        // Two jobs, eight workers: six workers find their own deque and
        // every victim's deque empty (the two seeded jobs are in flight
        // almost immediately) and must return None from the steal scan
        // rather than spin or grab a job twice.
        let runs: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let results = run_sharded(
            2,
            8,
            |i, _scratch| {
                runs[i].fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(2));
                i
            },
            |_, _| unreachable!("no panics"),
        );
        assert_eq!(results, vec![0, 1]);
        for r in &runs {
            assert_eq!(r.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn panic_message_extracts_str_and_string_payloads() {
        assert_eq!(panic_message(Box::new("static str")), "static str");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(17u32)), "non-string panic payload");
    }

    #[test]
    fn imbalanced_chunks_are_stolen() {
        // One slow chunk: make low indices heavy so the workers seeded with
        // the tail chunks run dry and must steal. Correctness is the same
        // assertion (all results present, index order); this exercises the
        // steal path under contention.
        let heavy = AtomicUsize::new(0);
        let results = run_sharded(
            64,
            8,
            |i, _scratch| {
                if i < 8 {
                    heavy.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i
            },
            |_, _| unreachable!("no panics"),
        );
        assert_eq!(results, (0..64).collect::<Vec<_>>());
        assert_eq!(heavy.load(Ordering::Relaxed), 8);
    }
}
