//! An offline, API-compatible subset of the [`criterion`] benchmarking
//! crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of criterion's surface that the benches use: `Criterion` with
//! `sample_size` / `warm_up_time` / `measurement_time`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark runs one warm-up
//! iteration, then measures up to `sample_size` iterations (stopping early
//! once `measurement_time` is exceeded) and reports min / mean / max
//! wall-clock time per iteration. There is no outlier analysis, HTML
//! report, or baseline comparison. Swap this path dependency for the
//! crates.io `criterion` without touching any bench code once the
//! environment can fetch registries.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// When set (cargo invokes bench binaries with `--test` during
/// `cargo test --benches`), every benchmark runs a single smoke iteration
/// instead of warm-up plus measurement — matching real criterion's test
/// mode.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

#[doc(hidden)]
pub fn set_test_mode(on: bool) {
    TEST_MODE.store(on, Ordering::Relaxed);
}

/// The benchmark driver: configuration plus result reporting.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of measured iterations per benchmark (upper bound here).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up budget before measurement begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Wall-clock budget for the measured iterations.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Compatibility no-op (the real crate reads CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.to_string(), None, self.sample_size, &mut f);
        self
    }

    fn run_one<F>(
        &self,
        label: &str,
        throughput: Option<&Throughput>,
        sample_size: usize,
        f: &mut F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(label, throughput);
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override; does not leak into later groups or
    /// free-standing `bench_function` calls (matching real criterion).
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with an elements/bytes-per-iteration
    /// figure so the report can show a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the measured iterations for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let sample_size = self.effective_sample_size();
        self.criterion
            .run_one(&label, self.throughput.as_ref(), sample_size, &mut f);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        let sample_size = self.effective_sample_size();
        self.criterion
            .run_one(&label, self.throughput.as_ref(), sample_size, &mut |b| {
                f(b, input)
            });
        self
    }

    /// Ends the group (report lines are emitted eagerly, so this is a
    /// formality kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{p}", self.function),
            (false, None) => f.write_str(&self.function),
            (true, Some(p)) => f.write_str(p),
            (true, None) => f.write_str("<unnamed>"),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// measured routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, running it once to warm up and then up to
    /// `sample_size` times (bounded by `measurement_time`). In `--test`
    /// mode (see [`set_test_mode`]) the routine runs exactly once.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if TEST_MODE.load(Ordering::Relaxed) {
            self.samples.clear();
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            return;
        }
        // Warm-up: at least one run, more while inside the warm-up budget.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples — closure never called iter)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        let rate = throughput.map(|t| {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!(" ({:.3e} elem/s)", per_sec(*n)),
                Throughput::Bytes(n) => format!(" ({:.3e} B/s)", per_sec(*n)),
            }
        });
        println!(
            "{label:<40} time: [{min:?} {mean:?} {max:?}] ({} samples){}",
            self.samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo's bench runner passes flags like `--bench`; accept and
            // ignore them. `--test` (from `cargo test --benches`) switches
            // every benchmark to a single smoke iteration.
            if ::std::env::args().any(|a| a == "--test") {
                $crate::set_test_mode(true);
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sample_size_does_not_leak_into_parent() {
        let mut c = Criterion::default().sample_size(7);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        assert_eq!(g.effective_sample_size(), 2);
        g.finish();
        assert_eq!(c.sample_size, 7);
        assert_eq!(c.benchmark_group("h").effective_sample_size(), 7);
    }
}
