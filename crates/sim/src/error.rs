//! Simulation errors.

use std::error::Error;
use std::fmt;

use nochatter_graph::{Label, NodeId, Port};

use crate::fault::FaultError;
use crate::schedule::ScheduleError;

/// A protocol violation or setup error detected by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No agents were added before `run`.
    NoAgents,
    /// Two agents were placed on the same start node (forbidden by the
    /// model).
    SharedStart {
        /// The contested node.
        node: NodeId,
    },
    /// Two agents carry the same label (forbidden by the model).
    DuplicateLabel {
        /// The duplicated label.
        label: Label,
    },
    /// An agent start node is not in the graph.
    StartOutOfRange {
        /// The offending node.
        node: NodeId,
    },
    /// A behavior asked for a port that does not exist at its node — a bug
    /// in the algorithm under test, surfaced loudly.
    InvalidPort {
        /// The offending agent's label.
        agent: Label,
        /// Where it happened.
        node: NodeId,
        /// The nonexistent port.
        port: Port,
        /// The round of the attempt.
        round: u64,
    },
    /// The wake schedule is malformed for the team (no wake at round 0 —
    /// time is measured from the first wake-up — or the wrong length).
    BadWakeSchedule {
        /// The specific malformation.
        reason: ScheduleError,
    },
    /// The crash-fault spec is malformed for the team (a crash target
    /// outside the team, a doubly-crashed label, or a bad probability).
    BadFaultSpec {
        /// The specific malformation.
        reason: FaultError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoAgents => write!(f, "no agents added to the engine"),
            SimError::SharedStart { node } => {
                write!(f, "two agents share start node {node}")
            }
            SimError::DuplicateLabel { label } => {
                write!(f, "two agents share label {label}")
            }
            SimError::StartOutOfRange { node } => {
                write!(f, "start node {node} is not in the graph")
            }
            SimError::InvalidPort {
                agent,
                node,
                port,
                round,
            } => write!(
                f,
                "agent {agent} took nonexistent port {port} at {node} in round {round}"
            ),
            SimError::BadWakeSchedule { reason } => {
                write!(f, "bad wake schedule: {reason}")
            }
            SimError::BadFaultSpec { reason } => {
                write!(f, "bad fault spec: {reason}")
            }
        }
    }
}

impl Error for SimError {}
