//! Procedures: resumable per-round state machines, and combinators.
//!
//! Every algorithm in the paper — `EXPLO`, `TZ`, `Communicate`,
//! `GatherKnownUpperBound`, the whole unknown-bound stack — is a
//! [`Procedure`]: a state machine polled once per round that yields one
//! move instruction per poll and eventually completes with a value.
//!
//! # The polling contract
//!
//! * [`Procedure::poll`] is called exactly once per round with the round's
//!   observation. `Poll::Yield(action)` consumes the round;
//!   `Poll::Complete(value)` does **not** consume the round — a parent
//!   procedure must immediately produce the round's action from its next
//!   step (possibly polling the next child in the same call).
//! * [`Procedure::min_wait`] is a *promise*: a lower bound on how many
//!   subsequent polls are guaranteed to yield [`Action::Wait`] regardless of
//!   what is observed. It lets the engine fast-forward quiescent stretches.
//! * [`Procedure::note_skipped`]`(k)` informs the procedure that `k` rounds
//!   elapsed during which (a) it was treated as having waited and (b) the
//!   observation was *identical* to the one most recently polled. Callers
//!   may only pass `k <= min_wait()`. Procedures that count rounds must
//!   advance their counters accordingly.
//!
//! The identical-observation guarantee is what makes `min_wait` sound even
//! for observation-dependent logic (e.g. a wait that aborts when `CurCard`
//! rises): if the current observation does not trigger the abort, identical
//! ones cannot either.

use crate::obs::{Action, Obs, Poll};

/// A resumable mobile-agent computation; see the [module docs](self) for
/// the polling contract.
pub trait Procedure {
    /// The value produced on completion.
    type Output;

    /// Advances by one round; see the module-level contract.
    fn poll(&mut self, obs: &Obs) -> Poll<Self::Output>;

    /// Lower bound on the number of subsequent polls guaranteed to yield
    /// [`Action::Wait`] regardless of observations. The default promises
    /// nothing.
    fn min_wait(&self) -> u64 {
        0
    }

    /// Acknowledges `rounds` skipped rounds with identical observations.
    /// Callers must keep `rounds <= self.min_wait()`.
    fn note_skipped(&mut self, rounds: u64) {
        let _ = rounds;
    }
}

impl<P: Procedure + ?Sized> Procedure for Box<P> {
    type Output = P::Output;

    fn poll(&mut self, obs: &Obs) -> Poll<Self::Output> {
        (**self).poll(obs)
    }

    fn min_wait(&self) -> u64 {
        (**self).min_wait()
    }

    fn note_skipped(&mut self, rounds: u64) {
        (**self).note_skipped(rounds)
    }
}

/// Waits for an exact number of rounds, then completes.
///
/// The paper's `wait x rounds` instruction.
///
/// # Example
///
/// ```
/// use nochatter_sim::proc::{Procedure, WaitRounds};
/// use nochatter_sim::{Action, Obs, Poll};
///
/// let mut w = WaitRounds::new(2);
/// let obs = Obs::synthetic(0, 2, 1, None);
/// assert_eq!(w.poll(&obs), Poll::Yield(Action::Wait));
/// assert_eq!(w.min_wait(), 1);
/// assert_eq!(w.poll(&obs), Poll::Yield(Action::Wait));
/// assert_eq!(w.poll(&obs), Poll::Complete(()));
/// ```
#[derive(Clone, Debug)]
pub struct WaitRounds {
    remaining: u64,
}

impl WaitRounds {
    /// Waits exactly `rounds` rounds (possibly zero).
    pub fn new(rounds: u64) -> Self {
        WaitRounds { remaining: rounds }
    }

    /// Rounds still to wait.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Procedure for WaitRounds {
    type Output = ();

    fn poll(&mut self, _obs: &Obs) -> Poll<()> {
        if self.remaining == 0 {
            Poll::Complete(())
        } else {
            self.remaining -= 1;
            Poll::Yield(Action::Wait)
        }
    }

    fn min_wait(&self) -> u64 {
        self.remaining
    }

    fn note_skipped(&mut self, rounds: u64) {
        debug_assert!(rounds <= self.remaining);
        self.remaining -= rounds.min(self.remaining);
    }
}

/// Runs an inner procedure for *exactly* `rounds` rounds: truncates it if it
/// is still running, pads with waits if it completes early. Completes with
/// the inner output if the inner procedure finished in time.
///
/// This implements the paper's pattern "execute X for exactly T consecutive
/// rounds" (e.g. `TZ(λ)` for `D_i` rounds, Algorithm 3 line 26).
#[derive(Clone, Debug)]
pub struct RunFor<P: Procedure> {
    remaining: u64,
    inner: P,
    inner_result: Option<P::Output>,
}

impl<P: Procedure> RunFor<P> {
    /// Runs `inner` for exactly `rounds` rounds.
    pub fn new(rounds: u64, inner: P) -> Self {
        RunFor {
            remaining: rounds,
            inner,
            inner_result: None,
        }
    }
}

impl<P: Procedure> Procedure for RunFor<P> {
    type Output = Option<P::Output>;

    fn poll(&mut self, obs: &Obs) -> Poll<Self::Output> {
        if self.remaining == 0 {
            return Poll::Complete(self.inner_result.take());
        }
        self.remaining -= 1;
        if self.inner_result.is_some() {
            return Poll::Yield(Action::Wait);
        }
        match self.inner.poll(obs) {
            Poll::Yield(a) => Poll::Yield(a),
            Poll::Complete(out) => {
                self.inner_result = Some(out);
                // The inner procedure completed without consuming the round;
                // this wrapper pads the rest, starting now.
                Poll::Yield(Action::Wait)
            }
        }
    }

    fn min_wait(&self) -> u64 {
        if self.inner_result.is_some() {
            self.remaining
        } else {
            self.inner.min_wait().min(self.remaining)
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        debug_assert!(rounds <= self.min_wait());
        self.remaining -= rounds.min(self.remaining);
        if self.inner_result.is_none() {
            self.inner.note_skipped(rounds);
        }
    }
}

/// Outcome of an [`UntilCardExceeds`] block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupted<T> {
    /// `CurCard` exceeded the threshold; the block was abandoned mid-way.
    /// The observation that triggered the interruption has *not* been
    /// consumed: the caller receives it next.
    Interrupted,
    /// The block ran to completion with this output.
    Finished(T),
}

impl<T> Interrupted<T> {
    /// True if the block was cut short.
    pub fn was_interrupted(&self) -> bool {
        matches!(self, Interrupted::Interrupted)
    }
}

/// The paper's interruptible begin–end block: "execute the following block
/// and interrupt it before its completion as soon as CurCard > c"
/// (Algorithm 3 lines 8 and 23).
#[derive(Clone, Debug)]
pub struct UntilCardExceeds<P> {
    threshold: u32,
    inner: P,
}

impl<P> UntilCardExceeds<P> {
    /// Interrupts `inner` as soon as an observation has `cur_card >
    /// threshold`.
    pub fn new(threshold: u32, inner: P) -> Self {
        UntilCardExceeds { threshold, inner }
    }
}

impl<P: Procedure> Procedure for UntilCardExceeds<P> {
    type Output = Interrupted<P::Output>;

    fn poll(&mut self, obs: &Obs) -> Poll<Self::Output> {
        if obs.cur_card > self.threshold {
            return Poll::Complete(Interrupted::Interrupted);
        }
        self.inner.poll(obs).map(Interrupted::Finished)
    }

    // If the current observation does not exceed the threshold, identical
    // observations cannot either, so the inner promise carries over.
    fn min_wait(&self) -> u64 {
        self.inner.min_wait()
    }

    fn note_skipped(&mut self, rounds: u64) {
        self.inner.note_skipped(rounds);
    }
}

/// Waits until `CurCard` has stayed unchanged for `window` consecutive
/// rounds, counting from (and including) the round of its latest change.
///
/// This is Algorithm 3 lines 16/31: *"wait until having seen `D_{i+1}`
/// consecutive rounds without any variation of CurCard since its latest
/// change (the current round and the round of its latest change
/// included)"*. The streak is seeded by the caller (who has been watching
/// `CurCard` across the surrounding phase) and maintained here.
#[derive(Clone, Debug)]
pub struct WaitCardStable {
    window: u64,
    streak: u64,
    last_card: Option<u32>,
}

impl WaitCardStable {
    /// Waits for `window` unchanged rounds. `streak`/`last_card` seed the
    /// count with observations the caller already made (pass `0, None` to
    /// start fresh).
    pub fn new(window: u64, streak: u64, last_card: Option<u32>) -> Self {
        WaitCardStable {
            window,
            streak,
            last_card,
        }
    }
}

impl Procedure for WaitCardStable {
    type Output = ();

    fn poll(&mut self, obs: &Obs) -> Poll<()> {
        match self.last_card {
            Some(c) if c == obs.cur_card => self.streak += 1,
            _ => self.streak = 1,
        }
        self.last_card = Some(obs.cur_card);
        if self.streak >= self.window {
            Poll::Complete(())
        } else {
            Poll::Yield(Action::Wait)
        }
    }

    // Identical observations keep the streak growing, so completion after
    // the remaining count is guaranteed — but completion is NOT a wait, so
    // the promise stops one short of it.
    fn min_wait(&self) -> u64 {
        (self.window - self.streak.min(self.window)).saturating_sub(1)
    }

    fn note_skipped(&mut self, rounds: u64) {
        debug_assert!(rounds <= self.min_wait());
        self.streak += rounds;
    }
}

/// Follows a fixed port path, one edge per round, then completes. Completes
/// immediately if the path is empty. Does **not** check port existence; use
/// it only for paths known to exist (it is the engine's job to flag invalid
/// ports as protocol errors).
#[derive(Clone, Debug)]
pub struct FollowPath {
    path: Vec<nochatter_graph::Port>,
    next: usize,
}

impl FollowPath {
    /// Follows `path` from front to back.
    pub fn new(path: Vec<nochatter_graph::Port>) -> Self {
        FollowPath { path, next: 0 }
    }
}

impl Procedure for FollowPath {
    type Output = ();

    fn poll(&mut self, _obs: &Obs) -> Poll<()> {
        if self.next >= self.path.len() {
            Poll::Complete(())
        } else {
            let p = self.path[self.next];
            self.next += 1;
            Poll::Yield(Action::TakePort(p))
        }
    }
}

/// Adapter exposing a `Procedure` as an engine-facing
/// [`crate::AgentBehavior`]; see [`ProcBehavior::declaring`].
pub use crate::behavior::ProcBehavior;

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::Port;

    fn obs(card: u32) -> Obs {
        Obs::synthetic(0, 3, card, None)
    }

    /// A procedure that moves through port 0 for `n` rounds then completes
    /// with 7.
    #[derive(Debug)]
    struct Mover {
        left: u32,
    }

    impl Procedure for Mover {
        type Output = u32;
        fn poll(&mut self, _obs: &Obs) -> Poll<u32> {
            if self.left == 0 {
                Poll::Complete(7)
            } else {
                self.left -= 1;
                Poll::Yield(Action::TakePort(Port::new(0)))
            }
        }
    }

    #[test]
    fn wait_rounds_zero_completes_immediately() {
        let mut w = WaitRounds::new(0);
        assert_eq!(w.poll(&obs(1)), Poll::Complete(()));
    }

    #[test]
    fn wait_rounds_skip_contract() {
        let mut w = WaitRounds::new(10);
        assert_eq!(w.poll(&obs(1)), Poll::Yield(Action::Wait));
        assert_eq!(w.min_wait(), 9);
        w.note_skipped(9);
        assert_eq!(w.poll(&obs(1)), Poll::Complete(()));
    }

    #[test]
    fn run_for_truncates() {
        let mut r = RunFor::new(3, Mover { left: 100 });
        for _ in 0..3 {
            assert_eq!(r.poll(&obs(1)), Poll::Yield(Action::TakePort(Port::new(0))));
        }
        assert_eq!(r.poll(&obs(1)), Poll::Complete(None));
    }

    #[test]
    fn run_for_pads_and_reports_inner_output() {
        let mut r = RunFor::new(5, Mover { left: 2 });
        assert_eq!(r.poll(&obs(1)), Poll::Yield(Action::TakePort(Port::new(0))));
        assert_eq!(r.poll(&obs(1)), Poll::Yield(Action::TakePort(Port::new(0))));
        // Inner completes here; wrapper pads with Wait.
        assert_eq!(r.poll(&obs(1)), Poll::Yield(Action::Wait));
        assert_eq!(r.min_wait(), 2);
        r.note_skipped(2);
        assert_eq!(r.poll(&obs(1)), Poll::Complete(Some(7)));
    }

    #[test]
    fn run_for_exact_duration() {
        // Total consumed rounds must be exactly `rounds` in both cases.
        for inner_len in [0u32, 2, 10] {
            let mut r = RunFor::new(4, Mover { left: inner_len });
            let mut consumed = 0;
            while let Poll::Yield(_) = r.poll(&obs(1)) {
                consumed += 1;
            }
            assert_eq!(consumed, 4);
        }
    }

    #[test]
    fn until_card_exceeds_interrupts_without_consuming() {
        let mut b = UntilCardExceeds::new(2, WaitRounds::new(10));
        assert_eq!(b.poll(&obs(2)), Poll::Yield(Action::Wait));
        assert_eq!(b.poll(&obs(3)), Poll::Complete(Interrupted::Interrupted));
    }

    #[test]
    fn until_card_exceeds_finishes() {
        let mut b = UntilCardExceeds::new(5, Mover { left: 1 });
        assert_eq!(b.poll(&obs(1)), Poll::Yield(Action::TakePort(Port::new(0))));
        assert_eq!(b.poll(&obs(1)), Poll::Complete(Interrupted::Finished(7)));
    }

    #[test]
    fn wait_card_stable_counts_streaks() {
        let mut w = WaitCardStable::new(3, 0, None);
        assert_eq!(w.poll(&obs(2)), Poll::Yield(Action::Wait)); // streak 1
        assert_eq!(w.poll(&obs(2)), Poll::Yield(Action::Wait)); // streak 2
        assert_eq!(w.poll(&obs(3)), Poll::Yield(Action::Wait)); // reset to 1
        assert_eq!(w.poll(&obs(3)), Poll::Yield(Action::Wait)); // 2
        assert_eq!(w.poll(&obs(3)), Poll::Complete(())); // 3 -> done
    }

    #[test]
    fn wait_card_stable_seeded() {
        let mut w = WaitCardStable::new(3, 2, Some(4));
        // Seeded with streak 2 at card 4: one more unchanged round finishes.
        assert_eq!(w.poll(&obs(4)), Poll::Complete(()));
        let mut w = WaitCardStable::new(3, 2, Some(4));
        // A change resets.
        assert_eq!(w.poll(&obs(5)), Poll::Yield(Action::Wait));
    }

    #[test]
    fn wait_card_stable_skip_contract() {
        let mut w = WaitCardStable::new(10, 0, None);
        assert_eq!(w.poll(&obs(2)), Poll::Yield(Action::Wait));
        let mw = w.min_wait();
        assert_eq!(mw, 8); // 9 more unchanged rounds needed; last one completes
        w.note_skipped(mw);
        assert_eq!(w.poll(&obs(2)), Poll::Complete(()));
    }

    #[test]
    fn follow_path_emits_ports_in_order() {
        let mut f = FollowPath::new(vec![Port::new(2), Port::new(0)]);
        assert_eq!(f.poll(&obs(1)), Poll::Yield(Action::TakePort(Port::new(2))));
        assert_eq!(f.poll(&obs(1)), Poll::Yield(Action::TakePort(Port::new(0))));
        assert_eq!(f.poll(&obs(1)), Poll::Complete(()));
    }

    #[test]
    fn boxed_procedure_delegates() {
        let mut b: Box<dyn Procedure<Output = ()>> = Box::new(WaitRounds::new(1));
        assert_eq!(b.poll(&obs(1)).action(), Some(Action::Wait));
        assert_eq!(b.min_wait(), 0);
    }
}
