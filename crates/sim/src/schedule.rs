//! Adversarial wake-up schedules.

/// When the adversary wakes each agent.
///
/// Rounds are measured from the first wake-up (round 0). Agents not woken by
/// the adversary sleep until another agent visits their start node — the
/// model's wake-on-visit rule — so a schedule may leave agents to be woken
/// implicitly.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
#[derive(Default)]
pub enum WakeSchedule {
    /// Everyone wakes in round 0.
    #[default]
    Simultaneous,
    /// Only the first agent is woken by the adversary; all others sleep
    /// until visited. The harshest schedule allowed by the model.
    FirstOnly,
    /// Agent `i` wakes at round `i * gap` (agent 0 at 0).
    Staggered {
        /// Rounds between consecutive wake-ups.
        gap: u64,
    },
    /// Explicit wake round per agent; `u64::MAX` means "never woken by the
    /// adversary" (wake-on-visit only). At least one entry must be 0.
    Explicit(Vec<u64>),
}

impl WakeSchedule {
    /// The wake round of each of `k` agents (`u64::MAX` = visit-only).
    ///
    /// # Errors
    ///
    /// Returns `None` if the schedule is malformed for `k` agents (no wake
    /// at round 0, or wrong length).
    pub fn wake_rounds(&self, k: usize) -> Option<Vec<u64>> {
        let rounds = match self {
            WakeSchedule::Simultaneous => vec![0; k],
            WakeSchedule::FirstOnly => {
                let mut v = vec![u64::MAX; k];
                if let Some(first) = v.first_mut() {
                    *first = 0;
                }
                v
            }
            WakeSchedule::Staggered { gap } => {
                (0..k as u64).map(|i| i.saturating_mul(*gap)).collect()
            }
            WakeSchedule::Explicit(v) => {
                if v.len() != k {
                    return None;
                }
                v.clone()
            }
        };
        if rounds.is_empty() || !rounds.contains(&0) {
            return None;
        }
        Some(rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_all_zero() {
        assert_eq!(
            WakeSchedule::Simultaneous.wake_rounds(3),
            Some(vec![0, 0, 0])
        );
    }

    #[test]
    fn first_only_leaves_rest_dormant() {
        assert_eq!(
            WakeSchedule::FirstOnly.wake_rounds(3),
            Some(vec![0, u64::MAX, u64::MAX])
        );
    }

    #[test]
    fn staggered_spacing() {
        assert_eq!(
            WakeSchedule::Staggered { gap: 5 }.wake_rounds(3),
            Some(vec![0, 5, 10])
        );
    }

    #[test]
    fn explicit_requires_matching_len_and_zero() {
        assert_eq!(
            WakeSchedule::Explicit(vec![0, 7]).wake_rounds(2),
            Some(vec![0, 7])
        );
        assert_eq!(WakeSchedule::Explicit(vec![0, 7]).wake_rounds(3), None);
        assert_eq!(WakeSchedule::Explicit(vec![1, 7]).wake_rounds(2), None);
    }

    #[test]
    fn zero_agents_is_malformed() {
        assert_eq!(WakeSchedule::Simultaneous.wake_rounds(0), None);
    }
}
