//! Adversarial wake-up schedules.

use std::error::Error;
use std::fmt;

/// Why a [`WakeSchedule`] is malformed for a given team size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// An explicit schedule's length does not match the team size (this
    /// also covers the degenerate zero-agent team, whose schedule cannot
    /// wake anyone).
    WrongLength {
        /// The team size the schedule was asked for.
        expected: usize,
        /// How many wake rounds the schedule actually provides.
        got: usize,
    },
    /// No agent wakes at round 0 — time is measured from the first
    /// wake-up, so some entry must be 0.
    NoRoundZeroWake,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, got } => write!(
                f,
                "schedule provides {got} wake rounds for {expected} agent(s)"
            ),
            ScheduleError::NoRoundZeroWake => {
                write!(f, "no agent wakes at round 0")
            }
        }
    }
}

impl Error for ScheduleError {}

/// When the adversary wakes each agent.
///
/// Rounds are measured from the first wake-up (round 0). Agents not woken by
/// the adversary sleep until another agent visits their start node — the
/// model's wake-on-visit rule — so a schedule may leave agents to be woken
/// implicitly.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
#[derive(Default)]
pub enum WakeSchedule {
    /// Everyone wakes in round 0.
    #[default]
    Simultaneous,
    /// Only the first agent is woken by the adversary; all others sleep
    /// until visited. The harshest schedule allowed by the model.
    FirstOnly,
    /// Agent `i` wakes at round `i * gap` (agent 0 at 0).
    Staggered {
        /// Rounds between consecutive wake-ups.
        gap: u64,
    },
    /// Explicit wake round per agent; `u64::MAX` means "never woken by the
    /// adversary" (wake-on-visit only). At least one entry must be 0.
    Explicit(Vec<u64>),
}

impl WakeSchedule {
    /// The wake round of each of `k` agents (`u64::MAX` = visit-only).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] describing why the schedule is
    /// malformed for `k` agents: an explicit list of the wrong length, or
    /// no wake at round 0 (which any schedule for zero agents implies).
    pub fn wake_rounds(&self, k: usize) -> Result<Vec<u64>, ScheduleError> {
        let rounds = match self {
            WakeSchedule::Simultaneous => vec![0; k],
            WakeSchedule::FirstOnly => {
                let mut v = vec![u64::MAX; k];
                if let Some(first) = v.first_mut() {
                    *first = 0;
                }
                v
            }
            WakeSchedule::Staggered { gap } => {
                (0..k as u64).map(|i| i.saturating_mul(*gap)).collect()
            }
            WakeSchedule::Explicit(v) => {
                if v.len() != k {
                    return Err(ScheduleError::WrongLength {
                        expected: k,
                        got: v.len(),
                    });
                }
                v.clone()
            }
        };
        if !rounds.contains(&0) {
            return Err(ScheduleError::NoRoundZeroWake);
        }
        Ok(rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_all_zero() {
        assert_eq!(WakeSchedule::Simultaneous.wake_rounds(3), Ok(vec![0, 0, 0]));
    }

    #[test]
    fn first_only_leaves_rest_dormant() {
        assert_eq!(
            WakeSchedule::FirstOnly.wake_rounds(3),
            Ok(vec![0, u64::MAX, u64::MAX])
        );
    }

    #[test]
    fn staggered_spacing() {
        assert_eq!(
            WakeSchedule::Staggered { gap: 5 }.wake_rounds(3),
            Ok(vec![0, 5, 10])
        );
    }

    #[test]
    fn explicit_requires_matching_len_and_zero() {
        assert_eq!(
            WakeSchedule::Explicit(vec![0, 7]).wake_rounds(2),
            Ok(vec![0, 7])
        );
        assert_eq!(
            WakeSchedule::Explicit(vec![0, 7]).wake_rounds(3),
            Err(ScheduleError::WrongLength {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            WakeSchedule::Explicit(vec![1, 7]).wake_rounds(2),
            Err(ScheduleError::NoRoundZeroWake)
        );
    }

    #[test]
    fn zero_agents_is_malformed() {
        assert_eq!(
            WakeSchedule::Simultaneous.wake_rounds(0),
            Err(ScheduleError::NoRoundZeroWake)
        );
    }

    #[test]
    fn schedule_errors_render() {
        assert_eq!(
            ScheduleError::WrongLength {
                expected: 3,
                got: 2
            }
            .to_string(),
            "schedule provides 2 wake rounds for 3 agent(s)"
        );
        assert!(ScheduleError::NoRoundZeroWake
            .to_string()
            .contains("round 0"));
    }
}
