//! The synchronous mobile-agent execution model of *Want to Gather? No Need
//! to Chatter!* (Bouchard, Dieudonné & Pelc, PODC 2020).
//!
//! This crate is the substrate on which every algorithm of the paper runs:
//!
//! * **Rounds.** Agents execute exactly one move instruction per round:
//!   `take port p` or `wait`. Moves are simultaneous; agents crossing the
//!   same edge in opposite directions do not notice each other.
//! * **Weak sensing.** In every round an agent observes only the degree of
//!   its node, the port by which it last entered it, and `CurCard` — the
//!   number of agents at its node. It cannot see labels of co-located
//!   agents, exchange messages, or mark nodes. A *traditional* sensing mode
//!   (co-located labels visible) exists solely for the talking-model
//!   baseline the paper compares against.
//! * **Adversarial wake-up.** The adversary wakes a subset of agents at
//!   chosen rounds; a dormant agent is woken by the first agent that visits
//!   its start node and starts executing in that round.
//! * **Termination.** Agents *declare* (gathering achieved, optionally with
//!   an elected leader and learned graph size); correctness requires all
//!   agents to declare in the same round at the same node, which
//!   [`RunOutcome::gathering`] validates.
//!
//! Algorithms are written as [`Procedure`]s — resumable state machines
//! polled once per round — composed with the combinators in [`proc`]. The
//! deterministic [`Engine`] executes them, with a sound *quiescence
//! fast-forward* that skips stretches of rounds in which provably no
//! observation can change (essential for the unknown-upper-bound algorithm,
//! whose schedule is dominated by enormous waiting periods).
//!
//! Agents live in a data-oriented arena: struct-of-arrays storage, an
//! explicit [`AgentPhase`] lifecycle state machine (`Dormant → Active ⇄
//! Blocked → Declared | Crashed`), and a behavior storage type parameter
//! whose default `Box<dyn AgentBehavior>` is the open extension point
//! (`nochatter_core`'s `BehaviorSlot` instantiates it with an enum so the
//! built-in algorithm stack runs unboxed). The optional [`FaultSpec`]
//! crash adversary kills agents mid-run: a crashed agent stops acting, but
//! its body keeps counting toward `CurCard` — under weak sensing the
//! survivors cannot tell a corpse from a waiting companion.
//!
//! # Example
//!
//! ```
//! use nochatter_graph::{generators, Label, NodeId, Port};
//! use nochatter_sim::{Engine, WakeSchedule};
//! use nochatter_sim::proc::{ProcBehavior, WaitRounds};
//!
//! // Two agents that just wait 10 rounds and then declare.
//! let g = generators::ring(4);
//! let mut engine = Engine::new(&g);
//! for (label, node) in [(1u64, 0u32), (2, 2)] {
//!     engine.add_agent(
//!         Label::new(label).unwrap(),
//!         NodeId::new(node),
//!         Box::new(ProcBehavior::declaring(WaitRounds::new(10))),
//!     );
//! }
//! engine.set_wake_schedule(WakeSchedule::Simultaneous);
//! let outcome = engine.run(1_000)?;
//! assert!(outcome.all_declared());
//! # Ok::<(), nochatter_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod behavior;
mod engine;
mod error;
mod fault;
mod obs;
mod outcome;
mod schedule;
mod trace;

pub mod proc;

pub use batch::BatchEngine;
pub use behavior::{AgentAct, AgentBehavior, Declaration, ForkableBehavior};
pub use engine::{ActiveRun, AgentPhase, Engine, EngineScratch, RunCheckpoint, Sensing};
pub use error::SimError;
pub use fault::{CrashPoint, FaultError, FaultSpec, SEEDED_CRASH_HORIZON};
pub use obs::{Action, Obs, Poll};
pub use outcome::{DeclarationRecord, GatheringReport, RunOutcome, RunStatus, ValidationError};
pub use proc::Procedure;
pub use schedule::{ScheduleError, WakeSchedule};
pub use trace::{Trace, TraceEvent};

// The engine is generic over the round-varying topology abstraction of
// `nochatter_graph::dynamic`; re-export the names engine users need.
// `ScriptedRing` rides along as the explicit choice-list edge adversary —
// the per-round analogue of `FaultSpec::CrashAt` on the crash axis.
pub use nochatter_graph::dynamic::{
    ScriptedRing, SpecView, Static, Topology, TopologySpec, TopologyView,
};
