//! Execution traces for debugging and assertions.

use nochatter_graph::{Label, NodeId, Port};

use crate::behavior::Declaration;

/// One observable event in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// An agent woke up (by the adversary or by being visited).
    Wake {
        /// The agent.
        agent: Label,
        /// The round of wake-up.
        round: u64,
        /// True if woken by a visiting agent rather than the adversary.
        by_visit: bool,
    },
    /// An agent traversed an edge.
    Move {
        /// The agent.
        agent: Label,
        /// The round of the move.
        round: u64,
        /// Node left.
        from: NodeId,
        /// Node entered (occupied from the next round).
        to: NodeId,
        /// The port taken at `from`.
        port: Port,
    },
    /// An agent's move attempt hit an edge absent in that round
    /// (round-varying topologies only); it stayed put.
    Blocked {
        /// The agent.
        agent: Label,
        /// The round of the attempt.
        round: u64,
        /// Where the agent stayed.
        node: NodeId,
        /// The port whose edge was absent.
        port: Port,
    },
    /// An agent was crashed by the fault adversary: it stops acting from
    /// this round on, but its body stays at the node and keeps counting
    /// toward `CurCard`.
    Crashed {
        /// The agent.
        agent: Label,
        /// The round from which it no longer acts.
        round: u64,
        /// Where its body remains.
        node: NodeId,
    },
    /// An agent declared that gathering is achieved.
    Declare {
        /// The agent.
        agent: Label,
        /// The round of the declaration.
        round: u64,
        /// Where it declared.
        node: NodeId,
        /// What it declared.
        declaration: Declaration,
    },
}

impl TraceEvent {
    /// The round the event happened in.
    pub fn round(&self) -> u64 {
        match self {
            TraceEvent::Wake { round, .. }
            | TraceEvent::Move { round, .. }
            | TraceEvent::Blocked { round, .. }
            | TraceEvent::Crashed { round, .. }
            | TraceEvent::Declare { round, .. } => *round,
        }
    }
}

/// A bounded event recorder. Recording stops silently once `capacity` events
/// have been stored (runs can be astronomically long; traces are a debugging
/// aid, not an archive).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were discarded after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced() {
        let mut t = Trace::with_capacity(2);
        for round in 0..5 {
            t.push(TraceEvent::Wake {
                agent: Label::new(1).unwrap(),
                round,
                by_visit: false,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[1].round(), 1);
    }
}
