//! The deterministic synchronous execution engine.

use nochatter_graph::dynamic::{Static, Topology, TopologyView};
use nochatter_graph::{Graph, Label, NodeId};

use crate::behavior::{AgentAct, AgentBehavior};
use crate::error::SimError;
use crate::obs::Obs;
use crate::outcome::{DeclarationRecord, RunOutcome, RunStatus};
use crate::schedule::WakeSchedule;
use crate::trace::{Trace, TraceEvent};

/// What co-located agents can perceive about each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sensing {
    /// The paper's weak model: only `CurCard` is visible.
    #[default]
    Weak,
    /// The traditional model: co-located agents additionally see each
    /// other's labels. Used only by the talking-model baseline.
    Traditional,
}

struct AgentState {
    label: Label,
    behavior: Box<dyn AgentBehavior>,
    pos: NodeId,
    awake: bool,
    just_woken: bool,
    /// The agent's previous move attempt hit an absent edge (round-varying
    /// topologies only); reported through the next observation, then
    /// cleared.
    blocked: bool,
    entry_port: Option<nochatter_graph::Port>,
    declared: Option<DeclarationRecord>,
    adversary_wake: u64,
}

/// Reusable per-run working memory for [`Engine::run_with_scratch`].
///
/// One run needs per-node occupancy state and a few per-agent buffers; a
/// fresh [`Engine::run`] allocates them every time, which dominates the
/// cost of short runs executed in bulk (campaigns, benches, proptests).
/// Threading one `EngineScratch` through repeated runs keeps every buffer's
/// capacity, so steady-state execution allocates nothing.
///
/// The scratch carries no semantic state between runs: a run leaves its
/// dirt behind and the next run's internal `prepare` clears exactly the
/// entries the previous run touched. Reusing one scratch across graphs of
/// different sizes, after failed runs, or across sensing modes is always
/// safe — [`Engine::run`] and [`Engine::run_with_scratch`] produce bitwise
/// identical [`RunOutcome`]s.
#[derive(Default)]
pub struct EngineScratch {
    /// Per-node occupant count (`CurCard` per node). All-zero outside the
    /// occupancy phase except for nodes listed in `touched`.
    card: Vec<u32>,
    /// Per-node bucket of the labels present this round, in increasing
    /// agent order. Empty outside the occupancy phase except for `touched`
    /// nodes.
    occupants: Vec<Vec<Label>>,
    /// The nodes with at least one agent this round — the only entries of
    /// `card`/`occupants` that need clearing, so the per-round wipe is
    /// O(k), not O(n).
    touched: Vec<u32>,
    /// This round's actions, co-indexed with the engine's agents.
    acts: Vec<Option<AgentAct>>,
    /// Sorted co-located labels, recycled through [`Obs::peer_labels`]
    /// under [`Sensing::Traditional`] instead of allocating a fresh vector
    /// per agent per round.
    labels: Vec<Label>,
    /// Agent-index permutation for the sort-based validation.
    validate_order: Vec<usize>,
}

impl EngineScratch {
    /// An empty scratch; buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears whatever the previous run left behind and sizes the buffers
    /// for a graph of `n` nodes and `agent_count` agents. O(touched) for
    /// the clearing plus O(n) only when the node capacity grows.
    fn prepare(&mut self, n: usize, agent_count: usize) {
        for node in self.touched.drain(..) {
            self.card[node as usize] = 0;
            self.occupants[node as usize].clear();
        }
        self.card.resize(n, 0);
        self.occupants.resize_with(n, Vec::new);
        self.acts.clear();
        self.acts.resize(agent_count, None);
        self.labels.clear();
    }
}

/// The synchronous-round executor.
///
/// Build it over a graph, add agents (label, start node, behavior), pick a
/// wake schedule and sensing mode, then [`Engine::run`]. The engine is fully
/// deterministic: identical inputs produce identical runs, bit for bit.
///
/// The engine is generic over a [`TopologyView`]: every round, move
/// resolution consults the view before traversing an edge, so the same
/// loop executes static networks and round-varying ones (periodic outages,
/// seeded edge failures, the dynamic-ring adversary — see
/// [`nochatter_graph::dynamic`]). The default [`Static`] view answers a
/// constant `true` that the optimizer folds away: [`Engine::new`] compiles
/// to exactly the pre-dynamic code. An agent taking a port whose edge is
/// absent this round stays put, keeps its entry port, and sees
/// `blocked: true` in its next [`Obs`].
///
/// See the [crate docs](crate) for a complete example.
pub struct Engine<'g, V: TopologyView = Static> {
    graph: &'g Graph,
    view: V,
    agents: Vec<AgentState>,
    schedule: WakeSchedule,
    sensing: Sensing,
    trace_capacity: Option<usize>,
}

impl<'g> Engine<'g> {
    /// A fresh engine over the static `graph` with no agents, simultaneous
    /// wake-up and weak sensing.
    pub fn new(graph: &'g Graph) -> Self {
        Engine::with_topology(graph, &Static)
    }
}

impl<'g, V: TopologyView> Engine<'g, V> {
    /// A fresh engine over `graph` under a round-varying topology: the
    /// provider's [`TopologyView`] decides, per round, which edges of the
    /// base graph are present.
    pub fn with_topology<T: Topology<View = V>>(graph: &'g Graph, topology: &T) -> Self {
        Engine {
            graph,
            view: topology.view(graph),
            agents: Vec::new(),
            schedule: WakeSchedule::Simultaneous,
            sensing: Sensing::Weak,
            trace_capacity: None,
        }
    }

    /// Adds an agent with the given label, start node and behavior.
    pub fn add_agent(&mut self, label: Label, start: NodeId, behavior: Box<dyn AgentBehavior>) {
        self.agents.push(AgentState {
            label,
            behavior,
            pos: start,
            awake: false,
            just_woken: false,
            blocked: false,
            entry_port: None,
            declared: None,
            adversary_wake: u64::MAX,
        });
    }

    /// Chooses the adversary's wake schedule (default: simultaneous).
    pub fn set_wake_schedule(&mut self, schedule: WakeSchedule) {
        self.schedule = schedule;
    }

    /// Chooses the sensing model (default: weak).
    pub fn set_sensing(&mut self, sensing: Sensing) {
        self.sensing = sensing;
    }

    /// Enables event tracing with the given capacity.
    pub fn record_trace(&mut self, capacity: usize) {
        self.trace_capacity = Some(capacity);
    }

    /// The lexicographically smallest conflicting index pair among agents
    /// sharing a key, or `None`. `order` is sorted by `(key(i), i)`, so
    /// within every run of equal keys indices ascend and the smallest pair
    /// of each run is an adjacent window; O(k log k) overall instead of the
    /// former all-pairs O(k²) scan.
    fn min_duplicate_pair<K: Ord>(
        order: &mut [usize],
        key: impl Fn(usize) -> K,
    ) -> Option<(usize, usize)> {
        order.sort_unstable_by(|&a, &b| key(a).cmp(&key(b)).then(a.cmp(&b)));
        let mut min: Option<(usize, usize)> = None;
        for w in order.windows(2) {
            if key(w[0]) == key(w[1]) {
                let pair = (w[0], w[1]);
                if min.is_none_or(|m| pair < m) {
                    min = Some(pair);
                }
            }
        }
        min
    }

    fn validate(&mut self, order: &mut Vec<usize>) -> Result<(), SimError> {
        if self.agents.is_empty() {
            return Err(SimError::NoAgents);
        }
        // The historical validation scanned agent pairs (i, j) in
        // lexicographic order, checking start-out-of-range at (i, ·) first,
        // then shared starts before duplicate labels at each pair. Keep that
        // report order exactly (so multi-violation setups surface the same
        // error) while finding each candidate with a sort instead of the
        // quadratic scan: out-of-range at index i ranks as (i, i), a
        // conflicting pair as (i, j) with j > i, position before label.
        order.clear();
        order.extend(0..self.agents.len());
        let pos_pair = Self::min_duplicate_pair(order, |i| self.agents[i].pos);
        let label_pair = Self::min_duplicate_pair(order, |i| self.agents[i].label);
        let oob = self
            .agents
            .iter()
            .position(|a| !self.graph.contains(a.pos))
            .map(|i| (i, i));
        // (i, j, check-rank): out-of-range ranks before the pair checks of
        // the same row (its j equals i), position before label at a tie.
        let first = [
            oob.map(|(i, j)| (i, j, 0u8)),
            pos_pair.map(|(i, j)| (i, j, 1u8)),
            label_pair.map(|(i, j)| (i, j, 2u8)),
        ]
        .into_iter()
        .flatten()
        .min();
        match first {
            Some((i, _, 0)) => {
                return Err(SimError::StartOutOfRange {
                    node: self.agents[i].pos,
                })
            }
            Some((i, _, 1)) => {
                return Err(SimError::SharedStart {
                    node: self.agents[i].pos,
                })
            }
            Some((i, _, _)) => {
                return Err(SimError::DuplicateLabel {
                    label: self.agents[i].label,
                })
            }
            None => {}
        }
        let wake = self
            .schedule
            .wake_rounds(self.agents.len())
            .map_err(|reason| SimError::BadWakeSchedule { reason })?;
        for (agent, round) in self.agents.iter_mut().zip(wake) {
            agent.adversary_wake = round;
        }
        Ok(())
    }

    /// Runs until every agent has declared or `max_rounds` have elapsed.
    ///
    /// Allocates a fresh [`EngineScratch`] — when executing many runs in a
    /// row, build one scratch and use [`Engine::run_with_scratch`] instead.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on setup problems or if a behavior commits a
    /// protocol violation (taking a nonexistent port).
    pub fn run(self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        self.run_with_scratch(max_rounds, &mut EngineScratch::new())
    }

    /// [`Engine::run`] against caller-owned working memory: repeated runs
    /// through one [`EngineScratch`] allocate nothing in steady state. The
    /// outcome is bitwise identical to [`Engine::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on setup problems or if a behavior commits a
    /// protocol violation (taking a nonexistent port).
    pub fn run_with_scratch(
        mut self,
        max_rounds: u64,
        scratch: &mut EngineScratch,
    ) -> Result<RunOutcome, SimError> {
        self.validate(&mut scratch.validate_order)?;
        let mut trace = self.trace_capacity.map(Trace::with_capacity);
        let n = self.graph.node_count();
        scratch.prepare(n, self.agents.len());
        let EngineScratch {
            card,
            occupants,
            touched,
            acts,
            labels,
            ..
        } = scratch;
        // Occupancy buckets feed only the traditional-sensing peer-label
        // observation; the silent model pays nothing for them.
        let bucket_occupants = self.sensing == Sensing::Traditional;
        let mut total_moves = 0u64;
        let mut blocked_moves = 0u64;
        let mut engine_iterations = 0u64;
        let mut skipped_rounds = 0u64;
        let mut max_colocation = 0u32;
        let mut round: u64 = 0;
        let mut last_declaration_round = 0u64;

        while round < max_rounds {
            engine_iterations += 1;
            // Advance the topology to this round. Fast-forwarded rounds are
            // skipped soundly: a view is a pure function of the round
            // number, and edge presence is unobservable in a round where
            // every active agent waits.
            self.view.begin_round(round);

            // 1. Adversary wake-ups scheduled for this round.
            for a in &mut self.agents {
                if !a.awake && a.adversary_wake <= round {
                    a.awake = true;
                    a.just_woken = true;
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent::Wake {
                            agent: a.label,
                            round,
                            by_visit: false,
                        });
                    }
                }
            }

            // 2. Occupancy, counting every agent physically present. Only
            // the ≤ k occupied nodes are bucketed and recorded in
            // `touched`; the end-of-round wipe clears exactly those, so no
            // phase of the loop scans all n nodes.
            for a in &self.agents {
                let node = a.pos.index();
                if card[node] == 0 {
                    touched.push(node as u32);
                }
                card[node] += 1;
                if bucket_occupants {
                    occupants[node].push(a.label);
                }
            }
            for &node in touched.iter() {
                max_colocation = max_colocation.max(card[node as usize]);
            }

            // 3. Wake-on-visit: a dormant agent co-located with any awake or
            // declared agent starts executing this round. Two dormant agents
            // can never share a node (starts are distinct and dormant agents
            // do not move), so any co-located company is awake or declared.
            for i in 0..self.agents.len() {
                if self.agents[i].awake {
                    continue;
                }
                if card[self.agents[i].pos.index()] > 1 {
                    self.agents[i].awake = true;
                    self.agents[i].just_woken = true;
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent::Wake {
                            agent: self.agents[i].label,
                            round,
                            by_visit: true,
                        });
                    }
                }
            }

            // 4. Poll every awake, undeclared agent (simultaneously: all
            // observations are computed from the same positions).
            let mut all_waited = true;
            let mut any_active = false;
            for (slot, a) in acts.iter_mut().zip(self.agents.iter_mut()) {
                *slot = None;
                if !a.awake || a.declared.is_some() {
                    continue;
                }
                any_active = true;
                let peer_labels = match self.sensing {
                    Sensing::Weak => None,
                    Sensing::Traditional => {
                        // The node's bucket lists everyone present in agent
                        // order; fill and sort the one scratch buffer, and
                        // lend it to the observation instead of allocating.
                        labels.clear();
                        labels.extend_from_slice(&occupants[a.pos.index()]);
                        labels.sort_unstable();
                        Some(std::mem::take(labels))
                    }
                };
                let mut obs = Obs {
                    round,
                    degree: self.graph.degree(a.pos),
                    cur_card: card[a.pos.index()],
                    entry_port: a.entry_port,
                    just_woken: a.just_woken,
                    blocked: a.blocked,
                    peer_labels,
                };
                let act = a.behavior.on_round(&obs);
                // Reclaim the lent label buffer (and its capacity).
                if let Some(buf) = obs.peer_labels.take() {
                    *labels = buf;
                }
                a.just_woken = false;
                a.blocked = false;
                if !matches!(act, AgentAct::Wait) {
                    all_waited = false;
                }
                *slot = Some(act);
            }

            // 5. Apply actions simultaneously.
            for (act, a) in acts.iter().zip(self.agents.iter_mut()) {
                let Some(act) = *act else { continue };
                match act {
                    AgentAct::Wait => {}
                    AgentAct::TakePort(p) => {
                        match self.graph.neighbor(a.pos, p) {
                            // A port that exists in the base graph but whose
                            // edge is absent this round blocks: the agent
                            // stays put (entry port untouched) and its next
                            // observation reports it. A nonexistent port is
                            // still a protocol violation — dynamics never
                            // change the degree an agent observes.
                            Some(_) if !self.view.edge_present(a.pos, p) => {
                                a.blocked = true;
                                blocked_moves += 1;
                                if let Some(t) = trace.as_mut() {
                                    t.push(TraceEvent::Blocked {
                                        agent: a.label,
                                        round,
                                        node: a.pos,
                                        port: p,
                                    });
                                }
                            }
                            Some((to, back)) => {
                                if let Some(t) = trace.as_mut() {
                                    t.push(TraceEvent::Move {
                                        agent: a.label,
                                        round,
                                        from: a.pos,
                                        to,
                                        port: p,
                                    });
                                }
                                a.pos = to;
                                a.entry_port = Some(back);
                                total_moves += 1;
                            }
                            None => {
                                return Err(SimError::InvalidPort {
                                    agent: a.label,
                                    node: a.pos,
                                    port: p,
                                    round,
                                });
                            }
                        }
                    }
                    AgentAct::Declare(d) => {
                        a.declared = Some(DeclarationRecord {
                            round,
                            node: a.pos,
                            declaration: d,
                        });
                        last_declaration_round = last_declaration_round.max(round);
                        if let Some(t) = trace.as_mut() {
                            t.push(TraceEvent::Declare {
                                agent: a.label,
                                round,
                                node: a.pos,
                                declaration: d,
                            });
                        }
                    }
                }
            }

            // End-of-round wipe: clear exactly the nodes occupied this
            // round (the error return above leaves them for the next
            // `prepare`, which drains the same list).
            for node in touched.drain(..) {
                card[node as usize] = 0;
                occupants[node as usize].clear();
            }

            if self.agents.iter().all(|a| a.declared.is_some()) {
                return Ok(self.finish(
                    RunStatus::AllDeclared,
                    last_declaration_round,
                    total_moves,
                    blocked_moves,
                    engine_iterations,
                    skipped_rounds,
                    max_colocation,
                    trace,
                ));
            }

            round += 1;

            // 6. Quiescence fast-forward: if every active agent waited, no
            // observation can change until either some procedure stops
            // waiting or the adversary wakes someone. Skip ahead by the
            // largest provably quiet stretch.
            if all_waited && any_active {
                let mut skip = u64::MAX;
                for a in &self.agents {
                    if a.awake && a.declared.is_none() {
                        skip = skip.min(a.behavior.min_wait());
                    }
                }
                // Respect pending adversary wake-ups...
                for a in &self.agents {
                    if !a.awake && a.adversary_wake != u64::MAX {
                        skip = skip.min(a.adversary_wake.saturating_sub(round));
                    }
                }
                // ...and the round limit.
                skip = skip.min(max_rounds.saturating_sub(round));
                if skip > 0 && skip != u64::MAX {
                    for a in &mut self.agents {
                        if a.awake && a.declared.is_none() {
                            a.behavior.note_skipped(skip);
                        }
                    }
                    round += skip;
                    skipped_rounds += skip;
                }
            }
        }

        Ok(self.finish(
            RunStatus::RoundLimit,
            max_rounds,
            total_moves,
            blocked_moves,
            engine_iterations,
            skipped_rounds,
            max_colocation,
            trace,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        self,
        status: RunStatus,
        rounds: u64,
        total_moves: u64,
        blocked_moves: u64,
        engine_iterations: u64,
        skipped_rounds: u64,
        max_colocation: u32,
        trace: Option<Trace>,
    ) -> RunOutcome {
        RunOutcome {
            status,
            rounds,
            declarations: self.agents.iter().map(|a| (a.label, a.declared)).collect(),
            total_moves,
            blocked_moves,
            engine_iterations,
            skipped_rounds,
            max_colocation,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Declaration;
    use crate::obs::{Action, Poll};
    use crate::proc::{ProcBehavior, Procedure, WaitRounds};
    use nochatter_graph::{generators, Port};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    /// Declares the moment it sees company.
    struct DeclareOnCompany;
    impl Procedure for DeclareOnCompany {
        type Output = ();
        fn poll(&mut self, obs: &Obs) -> Poll<()> {
            if obs.cur_card > 1 {
                Poll::Complete(())
            } else {
                Poll::Yield(Action::Wait)
            }
        }
    }

    #[test]
    fn rejects_no_agents() {
        let g = generators::ring(4);
        let engine = Engine::new(&g);
        assert!(matches!(engine.run(10), Err(SimError::NoAgents)));
    }

    #[test]
    fn rejects_shared_start() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for l in [1u64, 2] {
            engine.add_agent(
                label(l),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
        }
        assert!(matches!(engine.run(10), Err(SimError::SharedStart { .. })));
    }

    #[test]
    fn rejects_duplicate_label() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.add_agent(
            label(1),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        assert!(matches!(
            engine.run(10),
            Err(SimError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn validation_error_priority_matches_the_old_pairwise_scan() {
        // The historical validator scanned pairs (i, j) lexicographically,
        // out-of-range before the pair checks of row i, position before
        // label at the same pair. Multi-violation setups must keep
        // reporting the same winner.
        let g = generators::ring(4);
        let agent = |engine: &mut Engine<'_>, l: u64, pos: u32| {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
        };
        // Label pair (0, 3) beats position pair (1, 3).
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 1), (3, 2), (1, 1)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::DuplicateLabel { label: l }) if l == label(1)
        ));
        // Position pair (0, 1) beats label pair (1, 2).
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 0), (2, 2)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::SharedStart { node }) if node == NodeId::new(0)
        ));
        // Position pair (0, 2) beats the out-of-range start at index 1.
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 99), (3, 0)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::SharedStart { node }) if node == NodeId::new(0)
        ));
        // ...but an out-of-range start in row 0 beats the pair (1, 2).
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 99u32), (2, 1), (3, 1)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::StartOutOfRange { node }) if node == NodeId::new(99)
        ));
    }

    #[test]
    fn invalid_port_is_reported() {
        struct BadPort;
        impl Procedure for BadPort {
            type Output = ();
            fn poll(&mut self, _obs: &Obs) -> Poll<()> {
                Poll::Yield(Action::TakePort(Port::new(99)))
            }
        }
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(BadPort)),
        );
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(50))),
        );
        match engine.run(10) {
            Err(SimError::InvalidPort { agent, round, .. }) => {
                assert_eq!(agent, label(1));
                assert_eq!(round, 0);
            }
            other => panic!("expected InvalidPort, got {other:?}"),
        }
    }

    #[test]
    fn walker_wakes_sleeper_and_both_declare() {
        let g = generators::ring(5);
        let mut engine = Engine::new(&g);
        // Agent 1 walks; agent 2 sleeps until visited, then declares when it
        // sees company (which happens in its wake round).
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(RunFor5Moves::default())),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(DeclareOnCompany)),
        );
        engine.set_wake_schedule(WakeSchedule::FirstOnly);
        engine.record_trace(64);
        let outcome = engine.run(100).unwrap();
        assert!(outcome.all_declared());
        let trace = outcome.trace.as_ref().unwrap();
        // Agent 2 must have been woken by visit in round 2 (two moves away).
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::Wake { agent, round: 2, by_visit: true } if *agent == label(2)
        )));
    }

    /// Moves clockwise 5 times then completes.
    #[derive(Default)]
    struct RunFor5Moves {
        moves: u32,
    }
    impl Procedure for RunFor5Moves {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> Poll<()> {
            if self.moves >= 5 {
                Poll::Complete(())
            } else {
                self.moves += 1;
                Poll::Yield(Action::TakePort(Port::new(1)))
            }
        }
    }

    #[test]
    fn crossing_agents_swap_without_meeting() {
        // Two agents adjacent on a ring, both stepping toward each other,
        // swap nodes and never observe cur_card > 1.
        struct RecordMax {
            dir: u32,
            max_seen: u32,
            steps: u32,
        }
        impl Procedure for RecordMax {
            type Output = u32;
            fn poll(&mut self, obs: &Obs) -> Poll<u32> {
                self.max_seen = self.max_seen.max(obs.cur_card);
                if self.steps == 0 {
                    Poll::Complete(self.max_seen)
                } else {
                    self.steps -= 1;
                    Poll::Yield(Action::TakePort(Port::new(self.dir)))
                }
            }
        }
        let g = generators::ring(6);
        let mut engine = Engine::new(&g);
        // Agent 1 at node 0 moves clockwise (port 1); agent 2 at node 1
        // moves counterclockwise (port 0). They cross on the same edge.
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(
                RecordMax {
                    dir: 1,
                    max_seen: 0,
                    steps: 1,
                },
                |m| Declaration {
                    leader: None,
                    size: Some(m),
                },
            )),
        );
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::mapping(
                RecordMax {
                    dir: 0,
                    max_seen: 0,
                    steps: 1,
                },
                |m| Declaration {
                    leader: None,
                    size: Some(m),
                },
            )),
        );
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        for (_, rec) in &outcome.declarations {
            // Neither agent ever saw a second agent.
            assert_eq!(rec.unwrap().declaration.size, Some(1));
        }
        // But they did end up on swapped nodes.
        let nodes: Vec<NodeId> = outcome
            .declarations
            .iter()
            .map(|(_, r)| r.unwrap().node)
            .collect();
        assert_eq!(nodes, vec![NodeId::new(1), NodeId::new(0)]);
    }

    #[test]
    fn fast_forward_skips_long_waits() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 2)] {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(1_000_000))),
            );
        }
        let outcome = engine.run(2_000_000).unwrap();
        assert!(outcome.all_declared());
        assert!(
            outcome.engine_iterations < 100,
            "fast-forward should reduce ~1M rounds to a handful of \
             iterations, got {}",
            outcome.engine_iterations
        );
        assert!(outcome.skipped_rounds > 999_000);
        // Declarations still happen in the correct round.
        assert_eq!(outcome.rounds, 1_000_000);
    }

    #[test]
    fn fast_forward_respects_pending_wakeups() {
        // Agent 2 wakes at round 500 and declares instantly; agent 1 waits
        // long. The fast-forward must not jump past round 500.
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(1000))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.set_wake_schedule(WakeSchedule::Explicit(vec![0, 500]));
        let outcome = engine.run(10_000).unwrap();
        assert!(outcome.all_declared());
        let rec2 = outcome.declarations[1].1.unwrap();
        assert_eq!(rec2.round, 500);
    }

    #[test]
    fn traditional_sensing_exposes_labels() {
        struct SeePeers;
        impl AgentBehavior for SeePeers {
            fn on_round(&mut self, obs: &Obs) -> AgentAct {
                let labels = obs.peer_labels.as_ref().expect("traditional mode");
                assert_eq!(labels.len() as u32, obs.cur_card);
                AgentAct::Declare(Declaration {
                    leader: Some(labels[0]),
                    size: None,
                })
            }
        }
        let g = generators::complete(2);
        let mut engine = Engine::new(&g);
        engine.add_agent(label(5), NodeId::new(0), Box::new(SeePeers));
        engine.add_agent(label(3), NodeId::new(1), Box::new(SeePeers));
        engine.set_sensing(Sensing::Traditional);
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        // Each agent was alone, so each elected itself.
        assert_eq!(
            outcome.declarations[0].1.unwrap().declaration.leader,
            Some(label(5))
        );
    }

    #[test]
    fn weak_sensing_hides_labels() {
        struct AssertNoLabels;
        impl AgentBehavior for AssertNoLabels {
            fn on_round(&mut self, obs: &Obs) -> AgentAct {
                assert!(obs.peer_labels.is_none());
                AgentAct::Declare(Declaration::bare())
            }
        }
        let g = generators::complete(2);
        let mut engine = Engine::new(&g);
        engine.add_agent(label(5), NodeId::new(0), Box::new(AssertNoLabels));
        engine.add_agent(label(3), NodeId::new(1), Box::new(AssertNoLabels));
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
    }

    #[test]
    fn round_limit_reports_partial() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(5))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(500))),
        );
        let outcome = engine.run(10).unwrap();
        assert_eq!(outcome.status, RunStatus::RoundLimit);
        assert!(outcome.declarations[0].1.is_some());
        assert!(outcome.declarations[1].1.is_none());
        assert!(outcome.gathering().is_err());
    }

    /// A test topology that blocks every edge before round `until` and
    /// none from then on.
    #[derive(Clone, Copy)]
    struct BlockedUntil {
        until: u64,
    }
    struct BlockedUntilView {
        until: u64,
        round: u64,
    }
    impl TopologyView for BlockedUntilView {
        fn begin_round(&mut self, round: u64) {
            self.round = round;
        }
        fn edge_present(&self, _from: NodeId, _port: Port) -> bool {
            self.round >= self.until
        }
    }
    impl Topology for BlockedUntil {
        type View = BlockedUntilView;
        fn view(&self, _graph: &Graph) -> BlockedUntilView {
            BlockedUntilView {
                until: self.until,
                round: 0,
            }
        }
    }

    #[test]
    fn blocked_moves_stay_put_and_report() {
        // The agent attempts port 1 every round; rounds 0..3 are blocked.
        // It must stay on its start node, keep `entry_port: None`, observe
        // `blocked: true` in rounds 1..=3 (the observation after each
        // blocked attempt), and cross only in round 3.
        struct AssertBlockedSequence;
        impl AgentBehavior for AssertBlockedSequence {
            fn on_round(&mut self, obs: &Obs) -> AgentAct {
                assert_eq!(
                    obs.blocked,
                    (1..=3).contains(&obs.round),
                    "round {}",
                    obs.round
                );
                if obs.blocked {
                    // A blocked agent never moved: entry port unchanged.
                    assert_eq!(obs.entry_port, None);
                }
                if obs.round == 4 {
                    assert_eq!(obs.entry_port, Some(Port::new(0)), "the move succeeded");
                    return AgentAct::Declare(Declaration::bare());
                }
                AgentAct::TakePort(Port::new(1))
            }
        }
        let g = generators::ring(4);
        let mut engine = Engine::with_topology(&g, &BlockedUntil { until: 3 });
        engine.add_agent(label(1), NodeId::new(0), Box::new(AssertBlockedSequence));
        engine.record_trace(64);
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(outcome.total_moves, 1);
        assert_eq!(outcome.blocked_moves, 3);
        let trace = outcome.trace.as_ref().unwrap();
        let blocked: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Blocked {
                    round, node, port, ..
                } => {
                    assert_eq!(*node, NodeId::new(0));
                    assert_eq!(*port, Port::new(1));
                    Some(*round)
                }
                _ => None,
            })
            .collect();
        assert_eq!(blocked, vec![0, 1, 2]);
        assert_eq!(outcome.declarations[0].1.unwrap().node, NodeId::new(1));
    }

    #[test]
    fn absent_edge_does_not_mask_invalid_ports() {
        // Even under a topology that blocks everything, a nonexistent port
        // is a protocol violation, not a blocked move: dynamics never
        // change the degree an agent observes.
        struct BadPort;
        impl Procedure for BadPort {
            type Output = ();
            fn poll(&mut self, _obs: &Obs) -> Poll<()> {
                Poll::Yield(Action::TakePort(Port::new(99)))
            }
        }
        let g = generators::ring(4);
        let mut engine = Engine::with_topology(&g, &BlockedUntil { until: u64::MAX });
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(BadPort)),
        );
        assert!(matches!(engine.run(10), Err(SimError::InvalidPort { .. })));
    }

    #[test]
    fn static_runs_never_block() {
        let g = generators::ring(5);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(RunFor5Moves::default())),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(DeclareOnCompany)),
        );
        let outcome = engine.run(100).unwrap();
        assert_eq!(outcome.blocked_moves, 0);
    }

    #[test]
    fn trace_capacity_overflow_counts_drops_and_keeps_the_earliest_events() {
        // Two walkers generate a steady stream of events; a run with a
        // tiny trace capacity must retain exactly the earliest events of
        // the identical unbounded run and count every later one as
        // dropped.
        let run_with_capacity = |capacity: usize| {
            let g = generators::ring(6);
            let mut engine = Engine::new(&g);
            for (l, pos) in [(1u64, 0u32), (2, 3)] {
                engine.add_agent(
                    label(l),
                    NodeId::new(pos),
                    Box::new(ProcBehavior::declaring(RunFor5Moves::default())),
                );
            }
            engine.record_trace(capacity);
            engine.run(100).unwrap()
        };
        let full = run_with_capacity(1 << 10);
        let full_trace = full.trace.as_ref().unwrap();
        assert_eq!(full_trace.dropped(), 0);
        assert!(
            full_trace.events().len() > 4,
            "need enough events to overflow a capacity of 4"
        );
        let small = run_with_capacity(4);
        let small_trace = small.trace.as_ref().unwrap();
        assert_eq!(small_trace.events().len(), 4);
        assert_eq!(
            small_trace.events(),
            &full_trace.events()[..4],
            "retained events must be the earliest ones, in order"
        );
        assert_eq!(
            small_trace.dropped(),
            (full_trace.events().len() - 4) as u64
        );
        // The truncation is a recording concern only: the run itself is
        // unchanged.
        assert_eq!(small.rounds, full.rounds);
        assert_eq!(small.total_moves, full.total_moves);
    }

    #[test]
    fn cur_card_counts_all_present_agents() {
        struct CountAtStart {
            seen: Option<u32>,
        }
        impl Procedure for CountAtStart {
            type Output = u32;
            fn poll(&mut self, obs: &Obs) -> Poll<u32> {
                match self.seen {
                    None => {
                        self.seen = Some(obs.cur_card);
                        Poll::Yield(Action::Wait)
                    }
                    Some(c) => Poll::Complete(c),
                }
            }
        }
        // Three agents walk to node 0 one by one... simpler: two agents
        // start adjacent; one moves onto the other; both then see card 2.
        let g = generators::path(2);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(CountAtStart { seen: None }, |c| {
                Declaration {
                    leader: None,
                    size: Some(c),
                }
            })),
        );
        struct MoveThenCount {
            moved: bool,
            seen: Option<u32>,
        }
        impl Procedure for MoveThenCount {
            type Output = u32;
            fn poll(&mut self, obs: &Obs) -> Poll<u32> {
                if !self.moved {
                    self.moved = true;
                    return Poll::Yield(Action::TakePort(Port::new(0)));
                }
                match self.seen {
                    None => {
                        self.seen = Some(obs.cur_card);
                        Poll::Yield(Action::Wait)
                    }
                    Some(c) => Poll::Complete(c),
                }
            }
        }
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::mapping(
                MoveThenCount {
                    moved: false,
                    seen: None,
                },
                |c| Declaration {
                    leader: None,
                    size: Some(c),
                },
            )),
        );
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        // Agent 2 saw 2 after moving onto node 0.
        assert_eq!(outcome.declarations[1].1.unwrap().declaration.size, Some(2));
        assert_eq!(outcome.max_colocation, 2);
    }
}
