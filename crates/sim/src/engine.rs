//! The deterministic synchronous execution engine.

use nochatter_graph::dynamic::{Static, Topology, TopologyView};
use nochatter_graph::{Graph, Label, NodeId, Port};

use crate::behavior::{AgentAct, AgentBehavior, ForkableBehavior};
use crate::error::SimError;
use crate::fault::FaultSpec;
use crate::obs::Obs;
use crate::outcome::{DeclarationRecord, RunOutcome, RunStatus};
use crate::schedule::WakeSchedule;
use crate::trace::{Trace, TraceEvent};

/// What co-located agents can perceive about each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sensing {
    /// The paper's weak model: only `CurCard` is visible.
    #[default]
    Weak,
    /// The traditional model: co-located agents additionally see each
    /// other's labels. Used only by the talking-model baseline.
    Traditional,
}

/// An agent's lifecycle phase — the explicit state machine the engine's
/// poll/apply loops match on:
///
/// ```text
/// Dormant ──wake──▶ Active ⇄ Blocked
///    │                 │        │
///    │                 ├──▶ Declared   (terminal)
///    └───────crash────▶┴──▶ Crashed    (terminal)
/// ```
///
/// `Dormant` agents sleep until the adversary's wake round or the first
/// visit. `Active` agents are polled once per round. `Blocked` is the
/// one-observation state after a move attempt hit an absent edge
/// (round-varying topologies only): the agent is still executing, sees
/// `blocked: true` in its next observation, and reverts to `Active` the
/// moment it is polled. `Declared` and `Crashed` are terminal — the agent
/// never acts again, but its body stays on its node and keeps counting
/// toward `CurCard`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AgentPhase {
    /// Asleep; woken by the adversary's schedule or by the first visitor.
    #[default]
    Dormant,
    /// Awake and executing its behavior.
    Active,
    /// Awake; the previous move attempt hit an absent edge, which the next
    /// observation reports (then back to [`AgentPhase::Active`]).
    Blocked,
    /// Declared that gathering is achieved; halted at its node.
    Declared,
    /// Crashed by the fault adversary; its body stays at its node.
    Crashed,
}

impl AgentPhase {
    /// True for the terminal phases ([`AgentPhase::Declared`] and
    /// [`AgentPhase::Crashed`]): the agent will never act again.
    pub fn is_terminal(self) -> bool {
        matches!(self, AgentPhase::Declared | AgentPhase::Crashed)
    }

    /// True for the executing phases ([`AgentPhase::Active`] and
    /// [`AgentPhase::Blocked`]): the agent is polled this round.
    pub fn is_executing(self) -> bool {
        matches!(self, AgentPhase::Active | AgentPhase::Blocked)
    }
}

/// Struct-of-arrays agent storage.
///
/// The round loop touches the small per-agent scalars (phase, position,
/// wake/crash rounds) far more often than the behavior state machines, so
/// each field lives in its own contiguous array instead of one
/// array-of-structs row per agent. Behaviors are stored *inline* in their
/// own vector — generic over `B`, so the built-in algorithm stack
/// enum-dispatches with no per-agent `Box` and no vtable call — while
/// `B = Box<dyn AgentBehavior>` (the default) keeps the open extension
/// point.
struct AgentArena<B> {
    labels: Vec<Label>,
    pos: Vec<NodeId>,
    phase: Vec<AgentPhase>,
    /// True exactly until the first poll after waking.
    just_woken: Vec<bool>,
    entry_port: Vec<Option<Port>>,
    declared: Vec<Option<DeclarationRecord>>,
    /// Adversary wake round (`u64::MAX` = wake-on-visit only).
    adversary_wake: Vec<u64>,
    /// Resolved crash round (`u64::MAX` = never); cleared once applied.
    crash_round: Vec<u64>,
    behaviors: Vec<B>,
}

impl<B> AgentArena<B> {
    fn new() -> Self {
        AgentArena {
            labels: Vec::new(),
            pos: Vec::new(),
            phase: Vec::new(),
            just_woken: Vec::new(),
            entry_port: Vec::new(),
            declared: Vec::new(),
            adversary_wake: Vec::new(),
            crash_round: Vec::new(),
            behaviors: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    fn push(&mut self, label: Label, start: NodeId, behavior: B) {
        self.labels.push(label);
        self.pos.push(start);
        self.phase.push(AgentPhase::Dormant);
        self.just_woken.push(false);
        self.entry_port.push(None);
        self.declared.push(None);
        self.adversary_wake.push(u64::MAX);
        self.crash_round.push(u64::MAX);
        self.behaviors.push(behavior);
    }
}

/// Reusable per-run working memory for [`Engine::run_with_scratch`].
///
/// One run needs per-node occupancy state and a few per-agent buffers; a
/// fresh [`Engine::run`] allocates them every time, which dominates the
/// cost of short runs executed in bulk (campaigns, benches, proptests).
/// Threading one `EngineScratch` through repeated runs keeps every buffer's
/// capacity, so steady-state execution allocates nothing.
///
/// The scratch carries no semantic state between runs: a run leaves its
/// dirt behind and the next run's internal `prepare` clears exactly the
/// entries the previous run touched. Reusing one scratch across graphs of
/// different sizes, after failed runs, across sensing modes or across
/// engines with different behavior storage types is always safe —
/// [`Engine::run`] and [`Engine::run_with_scratch`] produce bitwise
/// identical [`RunOutcome`]s.
#[derive(Default)]
pub struct EngineScratch {
    /// Per-node occupant count (`CurCard` per node). All-zero outside the
    /// occupancy phase except for nodes listed in `touched`.
    card: Vec<u32>,
    /// Per-node bucket of the labels present this round, in increasing
    /// agent order. Empty outside the occupancy phase except for `touched`
    /// nodes.
    occupants: Vec<Vec<Label>>,
    /// The nodes with at least one agent this round — the only entries of
    /// `card`/`occupants` that need clearing, so the per-round wipe is
    /// O(k), not O(n).
    touched: Vec<u32>,
    /// This round's actions, co-indexed with the engine's agents.
    acts: Vec<Option<AgentAct>>,
    /// Sorted co-located labels, recycled through [`Obs::peer_labels`]
    /// under [`Sensing::Traditional`] instead of allocating a fresh vector
    /// per agent per round.
    labels: Vec<Label>,
    /// Agent-index permutation for the sort-based validation.
    validate_order: Vec<usize>,
}

impl EngineScratch {
    /// An empty scratch; buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears whatever the previous run left behind and sizes the buffers
    /// for a graph of `n` nodes and `agent_count` agents. O(touched) for
    /// the clearing plus O(n) only when the node capacity grows.
    ///
    /// Buffers only ever grow: a batch interleaves runs of different sizes
    /// through one scratch, so shrinking for a small run would thrash the
    /// capacity a bigger in-flight run still needs. The round loop indexes
    /// only its own `n` nodes and `agent_count` action slots, so surplus
    /// capacity is invisible.
    fn prepare(&mut self, n: usize, agent_count: usize) {
        wipe_occupancy(&mut self.card, &mut self.occupants, &mut self.touched);
        if self.card.len() < n {
            self.card.resize(n, 0);
            self.occupants.resize_with(n, Vec::new);
        }
        if self.acts.len() < agent_count {
            self.acts.resize(agent_count, None);
        }
        self.labels.clear();
    }
}

/// Restores the all-zero occupancy invariant by clearing exactly the node
/// entries listed in `touched`. The one cleanup shared by
/// [`EngineScratch::prepare`], the invalid-port early return and the dense
/// loop's end-of-round wipe, so the paths cannot drift.
fn wipe_occupancy(card: &mut [u32], occupants: &mut [Vec<Label>], touched: &mut Vec<u32>) {
    for node in touched.drain(..) {
        card[node as usize] = 0;
        occupants[node as usize].clear();
    }
}

/// Everything the round loop accumulates about a run — the context struct
/// handed to the finish step (instead of a parameter per counter).
#[derive(Clone, Default)]
struct RunStats {
    total_moves: u64,
    blocked_moves: u64,
    engine_iterations: u64,
    skipped_rounds: u64,
    /// Behavior polls actually executed (`on_round` calls). The honest
    /// denominator of the sparse round loop's win: the sparse and dense
    /// loops agree on every other number bitwise, but the sparse loop
    /// issues strictly fewer polls in mixed wait/walk regimes.
    polled_agent_rounds: u64,
    max_colocation: u32,
    last_declaration_round: u64,
    last_crash_round: u64,
}

/// The synchronous-round executor.
///
/// Build it over a graph, add agents (label, start node, behavior), pick a
/// wake schedule and sensing mode, then [`Engine::run`]. The engine is fully
/// deterministic: identical inputs produce identical runs, bit for bit.
///
/// The engine is generic along two axes:
///
/// * a [`TopologyView`] `V`: every round, move resolution consults the view
///   before traversing an edge, so the same loop executes static networks
///   and round-varying ones (periodic outages, seeded edge failures, the
///   dynamic-ring adversary — see [`nochatter_graph::dynamic`]). The
///   default [`Static`] view answers a constant `true` that the optimizer
///   folds away. An agent taking a port whose edge is absent this round
///   stays put, keeps its entry port, and sees `blocked: true` in its next
///   [`Obs`].
/// * a behavior storage type `B`: agents live in a struct-of-arrays arena
///   with their behaviors stored inline in a `Vec<B>`. The default
///   `B = Box<dyn AgentBehavior>` is the open extension point (exactly the
///   historical engine); instantiating `B` with an enum such as
///   `nochatter_core`'s `BehaviorSlot` dispatches the whole built-in
///   algorithm stack without a heap allocation or vtable call per agent.
///
/// Agent lifecycle is the explicit [`AgentPhase`] state machine, and the
/// optional [`FaultSpec`] crash adversary ([`Engine::set_faults`]) can move
/// agents to [`AgentPhase::Crashed`] mid-run: they stop acting, their
/// bodies keep counting toward `CurCard`.
///
/// See the [crate docs](crate) for a complete example.
pub struct Engine<'g, V: TopologyView = Static, B: AgentBehavior = Box<dyn AgentBehavior>> {
    graph: &'g Graph,
    view: V,
    agents: AgentArena<B>,
    schedule: WakeSchedule,
    sensing: Sensing,
    faults: FaultSpec,
    trace_capacity: Option<usize>,
    /// Explicit round-loop selection; `None` defers to the
    /// `NOCHATTER_DENSE_LOOP` environment variable at `begin`.
    dense_loop: Option<bool>,
}

/// True when the `NOCHATTER_DENSE_LOOP` environment variable selects the
/// dense reference loop (any non-empty value other than `0`).
fn dense_loop_from_env() -> bool {
    std::env::var("NOCHATTER_DENSE_LOOP").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl<'g> Engine<'g> {
    /// A fresh engine over the static `graph` with no agents, simultaneous
    /// wake-up, weak sensing, boxed behaviors and no faults.
    pub fn new(graph: &'g Graph) -> Self {
        Engine::with_topology(graph, &Static)
    }
}

impl<'g, V: TopologyView> Engine<'g, V> {
    /// A fresh engine over `graph` under a round-varying topology: the
    /// provider's [`TopologyView`] decides, per round, which edges of the
    /// base graph are present. Behaviors are boxed (the open extension
    /// point); use [`Engine::with_parts`] to choose the storage type too.
    pub fn with_topology<T: Topology<View = V>>(graph: &'g Graph, topology: &T) -> Self {
        Engine::with_parts(graph, topology)
    }
}

impl<'g, V: TopologyView, B: AgentBehavior> Engine<'g, V, B> {
    /// The fully generic constructor: choose the round-varying topology
    /// *and* the behavior storage type `B`. `nochatter_core` instantiates
    /// `B` with its `BehaviorSlot` enum so the built-in algorithm stack
    /// runs without per-agent boxing.
    pub fn with_parts<T: Topology<View = V>>(graph: &'g Graph, topology: &T) -> Self {
        Engine {
            graph,
            view: topology.view(graph),
            agents: AgentArena::new(),
            schedule: WakeSchedule::Simultaneous,
            sensing: Sensing::Weak,
            faults: FaultSpec::None,
            trace_capacity: None,
            dense_loop: None,
        }
    }

    /// Selects the round-loop implementation explicitly: `true` forces the
    /// dense O(k)-per-iteration reference loop, `false` the sparse
    /// event-driven one (the default). When unset, the
    /// `NOCHATTER_DENSE_LOOP` environment variable decides at
    /// [`ActiveRun::begin`] — the programmatic override exists so
    /// same-process comparisons (benches, differential tests) never race
    /// on process-global state. The two loops produce bitwise identical
    /// runs; only [`RunOutcome::polled_agent_rounds`] tells them apart.
    pub fn set_dense_loop(&mut self, dense: bool) {
        self.dense_loop = Some(dense);
    }

    /// Adds an agent with the given label, start node and behavior.
    pub fn add_agent(&mut self, label: Label, start: NodeId, behavior: B) {
        self.agents.push(label, start, behavior);
    }

    /// Chooses the adversary's wake schedule (default: simultaneous).
    pub fn set_wake_schedule(&mut self, schedule: WakeSchedule) {
        self.schedule = schedule;
    }

    /// Chooses the sensing model (default: weak).
    pub fn set_sensing(&mut self, sensing: Sensing) {
        self.sensing = sensing;
    }

    /// Chooses the crash-fault adversary (default: [`FaultSpec::None`]).
    /// Resolved against the team during validation; see [`FaultSpec`].
    pub fn set_faults(&mut self, faults: FaultSpec) {
        self.faults = faults;
    }

    /// Enables event tracing with the given capacity.
    pub fn record_trace(&mut self, capacity: usize) {
        self.trace_capacity = Some(capacity);
    }

    /// The lexicographically smallest conflicting index pair among agents
    /// sharing a key, or `None`. `order` is sorted by `(key(i), i)`, so
    /// within every run of equal keys indices ascend and the smallest pair
    /// of each run is an adjacent window; O(k log k) overall instead of the
    /// former all-pairs O(k²) scan.
    fn min_duplicate_pair<K: Ord>(
        order: &mut [usize],
        key: impl Fn(usize) -> K,
    ) -> Option<(usize, usize)> {
        order.sort_unstable_by(|&a, &b| key(a).cmp(&key(b)).then(a.cmp(&b)));
        let mut min: Option<(usize, usize)> = None;
        for w in order.windows(2) {
            if key(w[0]) == key(w[1]) {
                let pair = (w[0], w[1]);
                if min.is_none_or(|m| pair < m) {
                    min = Some(pair);
                }
            }
        }
        min
    }

    fn validate(&mut self, order: &mut Vec<usize>) -> Result<(), SimError> {
        if self.agents.is_empty() {
            return Err(SimError::NoAgents);
        }
        // The historical validation scanned agent pairs (i, j) in
        // lexicographic order, checking start-out-of-range at (i, ·) first,
        // then shared starts before duplicate labels at each pair. Keep that
        // report order exactly (so multi-violation setups surface the same
        // error) while finding each candidate with a sort instead of the
        // quadratic scan: out-of-range at index i ranks as (i, i), a
        // conflicting pair as (i, j) with j > i, position before label.
        order.clear();
        order.extend(0..self.agents.len());
        let pos_pair = Self::min_duplicate_pair(order, |i| self.agents.pos[i]);
        let label_pair = Self::min_duplicate_pair(order, |i| self.agents.labels[i]);
        let oob = self
            .agents
            .pos
            .iter()
            .position(|&p| !self.graph.contains(p))
            .map(|i| (i, i));
        // (i, j, check-rank): out-of-range ranks before the pair checks of
        // the same row (its j equals i), position before label at a tie.
        let first = [
            oob.map(|(i, j)| (i, j, 0u8)),
            pos_pair.map(|(i, j)| (i, j, 1u8)),
            label_pair.map(|(i, j)| (i, j, 2u8)),
        ]
        .into_iter()
        .flatten()
        .min();
        match first {
            Some((i, _, 0)) => {
                return Err(SimError::StartOutOfRange {
                    node: self.agents.pos[i],
                })
            }
            Some((i, _, 1)) => {
                return Err(SimError::SharedStart {
                    node: self.agents.pos[i],
                })
            }
            Some((i, _, _)) => {
                return Err(SimError::DuplicateLabel {
                    label: self.agents.labels[i],
                })
            }
            None => {}
        }
        let wake = self
            .schedule
            .wake_rounds(self.agents.len())
            .map_err(|reason| SimError::BadWakeSchedule { reason })?;
        self.agents.adversary_wake.copy_from_slice(&wake);
        let crashes = self
            .faults
            .crash_rounds(&self.agents.labels)
            .map_err(|reason| SimError::BadFaultSpec { reason })?;
        self.agents.crash_round.copy_from_slice(&crashes);
        Ok(())
    }

    /// Runs until every agent has reached a terminal phase or `max_rounds`
    /// have elapsed.
    ///
    /// Allocates a fresh [`EngineScratch`] — when executing many runs in a
    /// row, build one scratch and use [`Engine::run_with_scratch`] instead.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on setup problems or if a behavior commits a
    /// protocol violation (taking a nonexistent port).
    pub fn run(self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        self.run_with_scratch(max_rounds, &mut EngineScratch::new())
    }

    /// [`Engine::run`] against caller-owned working memory: repeated runs
    /// through one [`EngineScratch`] allocate nothing in steady state. The
    /// outcome is bitwise identical to [`Engine::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on setup problems or if a behavior commits a
    /// protocol violation (taking a nonexistent port).
    pub fn run_with_scratch(
        self,
        max_rounds: u64,
        scratch: &mut EngineScratch,
    ) -> Result<RunOutcome, SimError> {
        let mut run = ActiveRun::begin(self, max_rounds, scratch)?;
        loop {
            if let Some(result) = run.step(scratch) {
                return result;
            }
        }
    }
}

/// Inserts `i` into a sorted worklist, keeping it sorted and duplicate-free.
fn insert_sorted(list: &mut Vec<u32>, i: u32) {
    if let Err(at) = list.binary_search(&i) {
        list.insert(at, i);
    }
}

/// Removes `i` from a sorted worklist if present.
fn remove_sorted(list: &mut Vec<u32>, i: u32) {
    if let Ok(at) = list.binary_search(&i) {
        list.remove(at);
    }
}

/// Per-run state behind the sparse event-driven round loop.
///
/// The dense reference loop pays O(k) per executed iteration: it scans
/// every agent for due crashes and wakes, rebuilds occupancy from all k
/// positions, and polls every executing behavior — even when all but one
/// agent sit in a multi-thousand-round `CurCard`-stability wait. The
/// sparse loop makes an executed iteration cost O(active + dirtied):
///
/// * executing agents live on a sorted **active worklist** and only those
///   are polled; an agent whose behavior returns [`AgentAct::Wait`] with a
///   positive [`AgentBehavior::min_wait`] horizon is **parked** — taken
///   off the worklist and not re-polled until (a) its horizon expires
///   (`park_deadline`), (b) the occupancy of its node changes (the
///   **dirty**-node set, fed incrementally by applied moves), or (c) a
///   pending adversary wake/crash lands on it;
/// * per-node occupancy is **incremental**: built once at `begin`, updated
///   by each applied move instead of rebuilt from all k positions;
/// * adversary wakes and crashes are sorted **event cursors**
///   (`next_wake_round`/`next_crash_round` in spirit): when no event is
///   due this round, the crash and wake phases disappear entirely.
///
/// Determinism is preserved by construction: events fire in the dense
/// loop's exact order (crashes, then adversary wakes, then visit wakes,
/// all in ascending agent order; actions apply in ascending agent order),
/// a parked behavior is caught up with [`AgentBehavior::note_skipped`]
/// before its next poll (valid because parking guarantees the skipped
/// observations were identical), and occupancy of dirtied nodes is
/// sampled exactly when the dense loop would observe it — at the start of
/// the next executed iteration, never mid-apply. Sparse and dense runs
/// are bitwise identical on traces, outcomes and all report bytes; only
/// [`RunOutcome::polled_agent_rounds`] differs.
struct SparseState {
    /// Sorted indices of executing agents polled every executed iteration.
    active: Vec<u32>,
    /// Sorted indices of dormant agents (the visit-wake scan order).
    dormant: Vec<u32>,
    /// Per agent: the round its behavior was last synchronized to
    /// (`u64::MAX` = not parked).
    parked_at: Vec<u64>,
    /// Per agent: the first round its wait promise no longer covers — it
    /// must be re-polled at this round at the latest (`u64::MAX` = not
    /// parked).
    park_deadline: Vec<u64>,
    /// Parked agents bucketed by node, so a dirtied node unparks exactly
    /// its own waiters.
    parked_here: Vec<Vec<u32>>,
    /// How many agents are currently parked.
    parked_count: usize,
    /// Lower bound on the smallest `park_deadline`; a round at or past it
    /// triggers the expiry scan.
    next_deadline: u64,
    /// Incremental per-node occupant count (every body: dormant, declared
    /// and crashed included, exactly like the dense occupancy phase).
    card: Vec<u32>,
    /// Incremental per-node occupant labels (traditional sensing only;
    /// unsorted — the poll sorts its lent buffer, like the dense loop).
    occupants: Vec<Vec<Label>>,
    /// Both endpoints of every move applied in the previous executed
    /// iteration (duplicates allowed). Processed — occupancy sampling,
    /// visit wakes, unparking — at the start of the next executed
    /// iteration, which is exactly when the dense loop first observes the
    /// new positions.
    dirty: Vec<u32>,
    /// `(wake_round, agent)` for every finite adversary wake, sorted; the
    /// cursor makes the wake phase vanish when no wake is due.
    wakes: Vec<(u64, u32)>,
    wake_cursor: usize,
    /// `(crash_round, agent)` for every pending crash, sorted; the cursor
    /// makes the crash phase vanish when no crash is due.
    crashes: Vec<(u64, u32)>,
    crash_cursor: usize,
    /// Agents not yet in a terminal phase (the terminal check without the
    /// dense all-k scan).
    nonterminal: usize,
    /// Snapshot of `active` taken by the poll phase; the apply phase
    /// iterates it so worklist edits mid-apply cannot skew iteration.
    polled: Vec<u32>,
    /// Co-indexed with `polled`: whether this poll may park on `Wait`
    /// (false for blocked or just-woken polls, whose next observation
    /// changes even without external events).
    poll_parkable: Vec<bool>,
    /// Reusable scan buffer for the parked agents a quiescence
    /// fast-forward catches up.
    ff_parked: Vec<u32>,
}

/// Builds the sparse state from the current agent columns. `parked_at`,
/// `park_deadline` and `dirty` are taken verbatim (all-unparked plus every
/// start position at [`ActiveRun::begin`]; a checkpoint's captured vectors
/// on resume); everything else is derived: worklists from the phases,
/// occupancy from the positions, event lists from the wake/crash columns
/// (stale entries — already woken or fired — are skipped by the cursors).
fn build_sparse<B>(
    agents: &AgentArena<B>,
    node_count: usize,
    bucket_occupants: bool,
    parked_at: Vec<u64>,
    park_deadline: Vec<u64>,
    dirty: Vec<u32>,
) -> SparseState {
    let k = agents.len();
    let mut active = Vec::new();
    let mut dormant = Vec::new();
    let mut parked_here: Vec<Vec<u32>> = vec![Vec::new(); node_count];
    let mut parked_count = 0;
    let mut nonterminal = 0;
    for i in 0..k {
        let phase = agents.phase[i];
        if !phase.is_terminal() {
            nonterminal += 1;
        }
        match phase {
            AgentPhase::Dormant => dormant.push(i as u32),
            AgentPhase::Active | AgentPhase::Blocked => {
                if parked_at[i] == u64::MAX {
                    active.push(i as u32);
                } else {
                    parked_here[agents.pos[i].index()].push(i as u32);
                    parked_count += 1;
                }
            }
            AgentPhase::Declared | AgentPhase::Crashed => {}
        }
    }
    let mut card = vec![0u32; node_count];
    let mut occupants: Vec<Vec<Label>> =
        vec![Vec::new(); if bucket_occupants { node_count } else { 0 }];
    for (&pos, &label) in agents.pos.iter().zip(agents.labels.iter()) {
        card[pos.index()] += 1;
        if bucket_occupants {
            occupants[pos.index()].push(label);
        }
    }
    let mut wakes: Vec<(u64, u32)> = agents
        .adversary_wake
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w != u64::MAX)
        .map(|(i, &w)| (w, i as u32))
        .collect();
    wakes.sort_unstable();
    let mut crashes: Vec<(u64, u32)> = agents
        .crash_round
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != u64::MAX)
        .map(|(i, &c)| (c, i as u32))
        .collect();
    crashes.sort_unstable();
    let next_deadline = park_deadline.iter().copied().min().unwrap_or(u64::MAX);
    SparseState {
        active,
        dormant,
        parked_at,
        park_deadline,
        parked_here,
        parked_count,
        next_deadline,
        card,
        occupants,
        dirty,
        wakes,
        wake_cursor: 0,
        crashes,
        crash_cursor: 0,
        nonterminal,
        polled: Vec::new(),
        poll_parkable: Vec::new(),
        ff_parked: Vec::new(),
    }
}

impl SparseState {
    /// Takes a parked agent off the parked set and back onto the active
    /// worklist, catching its behavior up to `round - 1` (the last round
    /// whose observation is known identical to the one it parked on). The
    /// caller is responsible for bucket removal when it drained the bucket
    /// itself.
    fn unpark<B: AgentBehavior>(&mut self, agents: &mut AgentArena<B>, i: u32, round: u64) {
        let iu = i as usize;
        debug_assert!(self.parked_at[iu] != u64::MAX);
        let behind = round - 1 - self.parked_at[iu];
        if behind > 0 {
            agents.behaviors[iu].note_skipped(behind);
        }
        self.parked_at[iu] = u64::MAX;
        self.park_deadline[iu] = u64::MAX;
        self.parked_count -= 1;
        insert_sorted(&mut self.active, i);
    }

    /// Removes a parked agent `i` from its node bucket.
    fn remove_from_bucket(&mut self, node: usize, i: u32) {
        let bucket = &mut self.parked_here[node];
        if let Some(at) = bucket.iter().position(|&a| a == i) {
            bucket.swap_remove(at);
        }
    }
}

/// Polls agent `i` against the current occupancy: one dense-identical
/// observation build plus `on_round` call, shared by the sparse poll phase
/// and the quiescence fast-forward's parked-agent catch-up. The caller
/// accounts the poll and resolves the phase transition.
#[allow(clippy::too_many_arguments)]
fn poll_agent<B: AgentBehavior>(
    graph: &Graph,
    sensing: Sensing,
    agents: &mut AgentArena<B>,
    card: &[u32],
    occupants: &[Vec<Label>],
    label_buf: &mut Vec<Label>,
    round: u64,
    i: usize,
    blocked: bool,
) -> AgentAct {
    let pos = agents.pos[i];
    let peer_labels = match sensing {
        Sensing::Weak => None,
        Sensing::Traditional => {
            // The node's bucket lists everyone present; fill and sort the
            // one scratch buffer, and lend it to the observation instead
            // of allocating (identical bytes to the dense loop's poll).
            label_buf.clear();
            label_buf.extend_from_slice(&occupants[pos.index()]);
            label_buf.sort_unstable();
            Some(std::mem::take(label_buf))
        }
    };
    let mut obs = Obs {
        round,
        degree: graph.degree(pos),
        cur_card: card[pos.index()],
        entry_port: agents.entry_port[i],
        just_woken: agents.just_woken[i],
        blocked,
        peer_labels,
    };
    let act = agents.behaviors[i].on_round(&obs);
    // Reclaim the lent label buffer (and its capacity).
    if let Some(buf) = obs.peer_labels.take() {
        *label_buf = buf;
    }
    agents.just_woken[i] = false;
    act
}

/// How one sparse round-loop iteration ended, handed back across the
/// borrow-splitting boundary so the terminal paths can run `finish` on the
/// whole run.
enum SparseStep {
    Continue,
    Terminal(RunStatus, u64),
    Fail(SimError),
}

/// One validated run being stepped round by round — the engine's loop
/// reified as a state machine.
///
/// [`ActiveRun::begin`] performs validation and setup; every
/// [`ActiveRun::step`] executes exactly one iteration of the round loop
/// (one simulated round plus that round's quiescence fast-forward) against
/// a borrowed [`EngineScratch`], and returns the run's result once it
/// terminates. [`Engine::run_with_scratch`] is a trivial `begin`/`step`
/// driver; [`crate::BatchEngine`] interleaves the steps of many runs
/// through one loop. Both paths execute the *same* code on identical
/// per-run state, so batched outcomes are bitwise identical to solo ones
/// by construction.
///
/// Shared-scratch discipline: a step leaves `card`/`occupants` all-zero
/// (the end-of-round wipe drains `touched`, including on the invalid-port
/// error path), so steps of different runs can interleave through one
/// scratch in any order.
///
/// When the behavior storage is forkable ([`ForkableBehavior`]), a run can
/// additionally be snapshotted mid-flight ([`ActiveRun::checkpoint`]) and
/// another run over the *same graph and team* fast-started from the
/// snapshot ([`ActiveRun::resume_from`]) — the mechanism behind the
/// adversary search's prefix-sharing incremental evaluation.
pub struct ActiveRun<'g, V: TopologyView, B: AgentBehavior> {
    engine: Engine<'g, V, B>,
    trace: Option<Trace>,
    stats: RunStats,
    /// Crash machinery is engaged only while some resolved crash is still
    /// pending: under `FaultSpec::None` this stays 0 and the whole fault
    /// phase is one untaken branch per round.
    pending_crashes: usize,
    /// The crash rounds resolved at `begin`, kept verbatim: the stepping
    /// loop clears `crash_round` entries as crashes fire, and
    /// [`ActiveRun::resume_from`] needs this run's *own* original spec to
    /// reconcile which crashes are still ahead of the resumed round.
    resolved_crashes: Vec<u64>,
    /// Occupancy buckets feed only the traditional-sensing peer-label
    /// observation; the silent model pays nothing for them.
    bucket_occupants: bool,
    /// `Some` = the sparse event-driven loop (the default); `None` = the
    /// dense O(k) reference loop (`NOCHATTER_DENSE_LOOP=1` or
    /// [`Engine::set_dense_loop`]). Both produce bitwise identical runs.
    sparse: Option<SparseState>,
    /// Debug-build contract net for the dense reference loop: per agent,
    /// the absolute round through which its last [`AgentBehavior::min_wait`]
    /// promised further `Wait`s, plus the observation signature (degree,
    /// cur_card, entry_port) the promise was made under. A poll inside the
    /// promised window with an identical signature must yield `Wait` —
    /// catching unsound `min_wait` implementations at the source instead
    /// of as a report byte-diff three layers up. Weak sensing only (a
    /// scalar signature cannot capture traditional peer labels).
    #[cfg(debug_assertions)]
    #[allow(clippy::type_complexity)]
    promise: Vec<(u64, Option<(u32, u32, Option<Port>)>)>,
    round: u64,
    max_rounds: u64,
}

/// A mid-flight snapshot of one [`ActiveRun`]: everything the round loop
/// mutates, captured at a round boundary.
///
/// The checkpoint is deliberately *spec-free*: it stores the per-agent
/// columns (positions, phases, entry ports, declarations, behavior state),
/// the accumulated [`RunOutcome`] counters, the trace so far and the
/// virtual clock — but **not** the graph, the topology view, the wake
/// schedule or the fault spec. A topology view is a pure function of the
/// round number and is re-derived by the next step's `begin_round`; wake
/// and crash rounds belong to the run resumed *into*, which reconciles
/// them against its own spec. That is what makes a checkpoint taken under
/// one adversary spec a valid starting point for a run under a *different*
/// spec, provided both specs agree on every round before
/// [`RunCheckpoint::round`] (see [`ActiveRun::resume_from`]).
pub struct RunCheckpoint<B> {
    pos: Vec<NodeId>,
    phase: Vec<AgentPhase>,
    just_woken: Vec<bool>,
    entry_port: Vec<Option<Port>>,
    declared: Vec<Option<DeclarationRecord>>,
    behaviors: Vec<B>,
    stats: RunStats,
    trace: Option<Trace>,
    /// Sparse-loop park state, captured verbatim so a sparse-resumed run
    /// re-polls exactly when the checkpointed run would have (its
    /// `polled_agent_rounds` stays poll-for-poll identical to stepping
    /// from scratch). A dense checkpoint stores the all-unparked vectors.
    parked_at: Vec<u64>,
    park_deadline: Vec<u64>,
    /// Nodes dirtied by the last executed iteration, still pending their
    /// start-of-round processing at `round`. A dense checkpoint stores
    /// every occupied node — the safe over-approximation that makes a
    /// dense checkpoint resumable into a sparse run.
    dirty: Vec<u32>,
    round: u64,
}

impl<B> RunCheckpoint<B> {
    /// The round the checkpointed run would simulate next — the first
    /// round a resumed run executes.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The engine iterations the checkpointed prefix had executed — the
    /// work a resumed run does *not* repeat (the honest basis for the
    /// search's rounds-saved accounting).
    pub fn executed_rounds(&self) -> u64 {
        self.stats.engine_iterations
    }
}

impl<'g, V: TopologyView, B: AgentBehavior> ActiveRun<'g, V, B> {
    /// Validates the engine's setup and prepares the run for stepping.
    pub fn begin(
        mut engine: Engine<'g, V, B>,
        max_rounds: u64,
        scratch: &mut EngineScratch,
    ) -> Result<Self, SimError> {
        engine.validate(&mut scratch.validate_order)?;
        let trace = engine.trace_capacity.map(Trace::with_capacity);
        scratch.prepare(engine.graph.node_count(), engine.agents.len());
        let bucket_occupants = engine.sensing == Sensing::Traditional;
        let pending_crashes = engine
            .agents
            .crash_round
            .iter()
            .filter(|&&r| r != u64::MAX)
            .count();
        let resolved_crashes = engine.agents.crash_round.clone();
        let k = engine.agents.len();
        let sparse = if engine.dense_loop.unwrap_or_else(dense_loop_from_env) {
            None
        } else {
            // Seeding `dirty` with every start position makes the first
            // executed iteration sample round-0 occupancy exactly like the
            // dense loop does (validation rejects shared starts, so no
            // spurious visit-wake can fire).
            let dirty = engine.agents.pos.iter().map(|p| p.index() as u32).collect();
            Some(build_sparse(
                &engine.agents,
                engine.graph.node_count(),
                bucket_occupants,
                vec![u64::MAX; k],
                vec![u64::MAX; k],
                dirty,
            ))
        };
        Ok(ActiveRun {
            engine,
            trace,
            stats: RunStats::default(),
            pending_crashes,
            resolved_crashes,
            bucket_occupants,
            sparse,
            #[cfg(debug_assertions)]
            promise: vec![(0, None); k],
            round: 0,
            max_rounds,
        })
    }

    /// The round this run's next [`ActiveRun::step`] will simulate. A
    /// batch steps whichever runs are due at the globally smallest next
    /// round; a value at or past the round limit means the next step only
    /// finalizes the outcome.
    pub fn next_round(&self) -> u64 {
        self.round
    }

    /// Executes one iteration of the round loop. Returns `Some` once the
    /// run has terminated (all agents terminal, round limit, or a protocol
    /// violation); the run must not be stepped again after that.
    ///
    /// Dispatches to the sparse event-driven loop (the default) or the
    /// dense O(k) reference loop (`NOCHATTER_DENSE_LOOP=1` or
    /// [`Engine::set_dense_loop`]); the two execute identical runs, bit
    /// for bit, differing only in how many behavior polls they issue
    /// ([`RunOutcome::polled_agent_rounds`]).
    pub fn step(&mut self, scratch: &mut EngineScratch) -> Option<Result<RunOutcome, SimError>> {
        if self.round >= self.max_rounds {
            return Some(Ok(self.finish(RunStatus::RoundLimit, self.max_rounds)));
        }
        if self.sparse.is_some() {
            match self.step_sparse(scratch) {
                SparseStep::Continue => None,
                SparseStep::Terminal(status, rounds) => Some(Ok(self.finish(status, rounds))),
                SparseStep::Fail(e) => Some(Err(e)),
            }
        } else {
            self.step_dense(scratch)
        }
    }

    /// The dense O(k)-per-iteration reference round loop, kept verbatim as
    /// the semantics baseline the sparse loop is pinned against
    /// (`NOCHATTER_DENSE_LOOP=1` selects it).
    fn step_dense(&mut self, scratch: &mut EngineScratch) -> Option<Result<RunOutcome, SimError>> {
        let round = self.round;
        let k = self.engine.agents.len();
        let EngineScratch {
            card,
            occupants,
            touched,
            acts,
            labels: label_buf,
            ..
        } = scratch;
        // The scratch only ever grows (see `prepare`); this run uses
        // exactly its own `k` action slots.
        let acts = &mut acts[..k];

        self.stats.engine_iterations += 1;
        // Advance the topology to this round. Fast-forwarded rounds are
        // skipped soundly: a view is a pure function of the round
        // number, and edge presence is unobservable in a round where
        // every active agent waits.
        self.engine.view.begin_round(round);

        // 0. Crash faults due this round. Crashes precede wake-ups: an
        // agent crashing in its wake round never wakes. A crash round
        // on an already-declared agent resolves to nothing — the
        // declaration stands. Either way the entry is cleared, so
        // `pending_crashes` reaches 0 and the branch disappears.
        if self.pending_crashes > 0 {
            for i in 0..k {
                if self.engine.agents.crash_round[i] <= round {
                    self.engine.agents.crash_round[i] = u64::MAX;
                    self.pending_crashes -= 1;
                    if self.engine.agents.phase[i] == AgentPhase::Declared {
                        continue;
                    }
                    self.engine.agents.phase[i] = AgentPhase::Crashed;
                    self.stats.last_crash_round = self.stats.last_crash_round.max(round);
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEvent::Crashed {
                            agent: self.engine.agents.labels[i],
                            round,
                            node: self.engine.agents.pos[i],
                        });
                    }
                }
            }
        }

        // 1. Adversary wake-ups scheduled for this round.
        for i in 0..k {
            if self.engine.agents.phase[i] == AgentPhase::Dormant
                && self.engine.agents.adversary_wake[i] <= round
            {
                self.engine.agents.phase[i] = AgentPhase::Active;
                self.engine.agents.just_woken[i] = true;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEvent::Wake {
                        agent: self.engine.agents.labels[i],
                        round,
                        by_visit: false,
                    });
                }
            }
        }

        // 2. Occupancy, counting every agent physically present —
        // dormant, declared and crashed bodies included (the paper's
        // sensing model counts bodies, not executions). Only the ≤ k
        // occupied nodes are bucketed and recorded in `touched`; the
        // end-of-round wipe clears exactly those, so no phase of the
        // loop scans all n nodes.
        for (&pos, &label) in self
            .engine
            .agents
            .pos
            .iter()
            .zip(self.engine.agents.labels.iter())
        {
            let node = pos.index();
            if card[node] == 0 {
                touched.push(node as u32);
            }
            card[node] += 1;
            if self.bucket_occupants {
                occupants[node].push(label);
            }
        }
        for &node in touched.iter() {
            self.stats.max_colocation = self.stats.max_colocation.max(card[node as usize]);
        }

        // 3. Wake-on-visit: a dormant agent co-located with any other
        // body starts executing this round. Two dormant agents can
        // never share a node (starts are distinct and dormant agents do
        // not move), so any co-located company is awake, declared or
        // crashed — and a body is a body: a crashed agent wakes a
        // sleeper exactly as a declared one does.
        for i in 0..k {
            if self.engine.agents.phase[i] != AgentPhase::Dormant {
                continue;
            }
            if card[self.engine.agents.pos[i].index()] > 1 {
                self.engine.agents.phase[i] = AgentPhase::Active;
                self.engine.agents.just_woken[i] = true;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEvent::Wake {
                        agent: self.engine.agents.labels[i],
                        round,
                        by_visit: true,
                    });
                }
            }
        }

        // 4. Poll every executing agent (simultaneously: all
        // observations are computed from the same positions). A
        // `Blocked` agent reports its failed attempt through the
        // observation and reverts to `Active`.
        let mut all_waited = true;
        let mut any_active = false;
        for (i, slot) in acts.iter_mut().enumerate() {
            *slot = None;
            let phase = self.engine.agents.phase[i];
            if !phase.is_executing() {
                continue;
            }
            any_active = true;
            let pos = self.engine.agents.pos[i];
            let peer_labels = match self.engine.sensing {
                Sensing::Weak => None,
                Sensing::Traditional => {
                    // The node's bucket lists everyone present in agent
                    // order; fill and sort the one scratch buffer, and
                    // lend it to the observation instead of allocating.
                    label_buf.clear();
                    label_buf.extend_from_slice(&occupants[pos.index()]);
                    label_buf.sort_unstable();
                    Some(std::mem::take(label_buf))
                }
            };
            let mut obs = Obs {
                round,
                degree: self.engine.graph.degree(pos),
                cur_card: card[pos.index()],
                entry_port: self.engine.agents.entry_port[i],
                just_woken: self.engine.agents.just_woken[i],
                blocked: phase == AgentPhase::Blocked,
                peer_labels,
            };
            let act = self.engine.agents.behaviors[i].on_round(&obs);
            self.stats.polled_agent_rounds += 1;
            #[cfg(debug_assertions)]
            if self.engine.sensing == Sensing::Weak {
                let sig = (obs.degree, obs.cur_card, obs.entry_port);
                let fresh = obs.blocked || obs.just_woken;
                let (through, promised) = self.promise[i];
                if !fresh && round <= through && promised == Some(sig) {
                    debug_assert!(
                        matches!(act, AgentAct::Wait),
                        "agent {} acted at round {round} inside its promised wait horizon \
                         (through round {through}) without an observation change",
                        self.engine.agents.labels[i]
                    );
                }
                self.promise[i] = if fresh {
                    (0, None)
                } else {
                    (
                        round.saturating_add(self.engine.agents.behaviors[i].min_wait()),
                        Some(sig),
                    )
                };
            }
            // Reclaim the lent label buffer (and its capacity).
            if let Some(buf) = obs.peer_labels.take() {
                *label_buf = buf;
            }
            self.engine.agents.just_woken[i] = false;
            self.engine.agents.phase[i] = AgentPhase::Active;
            if !matches!(act, AgentAct::Wait) {
                all_waited = false;
            }
            *slot = Some(act);
        }

        // 5. Apply actions simultaneously.
        for (i, act) in acts.iter().enumerate() {
            let Some(act) = *act else { continue };
            match act {
                AgentAct::Wait => {}
                AgentAct::TakePort(p) => {
                    let pos = self.engine.agents.pos[i];
                    match self.engine.graph.neighbor(pos, p) {
                        // A port that exists in the base graph but whose
                        // edge is absent this round blocks: the agent
                        // stays put (entry port untouched) and its next
                        // observation reports it. A nonexistent port is
                        // still a protocol violation — dynamics never
                        // change the degree an agent observes.
                        Some(_) if !self.engine.view.edge_present(pos, p) => {
                            self.engine.agents.phase[i] = AgentPhase::Blocked;
                            self.stats.blocked_moves += 1;
                            if let Some(t) = self.trace.as_mut() {
                                t.push(TraceEvent::Blocked {
                                    agent: self.engine.agents.labels[i],
                                    round,
                                    node: pos,
                                    port: p,
                                });
                            }
                        }
                        Some((to, back)) => {
                            if let Some(t) = self.trace.as_mut() {
                                t.push(TraceEvent::Move {
                                    agent: self.engine.agents.labels[i],
                                    round,
                                    from: pos,
                                    to,
                                    port: p,
                                });
                            }
                            self.engine.agents.pos[i] = to;
                            self.engine.agents.entry_port[i] = Some(back);
                            self.stats.total_moves += 1;
                        }
                        None => {
                            // Leave the scratch clean for whatever steps
                            // next through it (a solo rerun or another run
                            // of the same batch).
                            wipe_occupancy(card, occupants, touched);
                            return Some(Err(SimError::InvalidPort {
                                agent: self.engine.agents.labels[i],
                                node: pos,
                                port: p,
                                round,
                            }));
                        }
                    }
                }
                AgentAct::Declare(d) => {
                    self.engine.agents.declared[i] = Some(DeclarationRecord {
                        round,
                        node: self.engine.agents.pos[i],
                        declaration: d,
                    });
                    self.engine.agents.phase[i] = AgentPhase::Declared;
                    self.stats.last_declaration_round =
                        self.stats.last_declaration_round.max(round);
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEvent::Declare {
                            agent: self.engine.agents.labels[i],
                            round,
                            node: self.engine.agents.pos[i],
                            declaration: d,
                        });
                    }
                }
            }
        }

        // End-of-round wipe: clear exactly the nodes occupied this round,
        // restoring the all-zero scratch invariant interleaved runs rely
        // on.
        wipe_occupancy(card, occupants, touched);

        // A run ends when every agent is terminal. All declared is the
        // paper's successful end; any crash among otherwise-declared
        // agents halts the run early too — nothing can change anymore —
        // but reports `Halted` (the crashed agents never declared).
        if self.engine.agents.phase.iter().all(|p| p.is_terminal()) {
            let crashed = self.engine.agents.phase.contains(&AgentPhase::Crashed);
            let (status, rounds) = if crashed {
                (
                    RunStatus::Halted,
                    self.stats
                        .last_declaration_round
                        .max(self.stats.last_crash_round),
                )
            } else {
                (RunStatus::AllDeclared, self.stats.last_declaration_round)
            };
            return Some(Ok(self.finish(status, rounds)));
        }

        let mut next = round + 1;

        // 6. Quiescence fast-forward: if every active agent waited, no
        // observation can change until some procedure stops waiting,
        // the adversary wakes someone, or a fault crashes someone.
        // Skip ahead by the largest provably quiet stretch.
        if all_waited && any_active {
            let mut skip = u64::MAX;
            for (&phase, behavior) in self
                .engine
                .agents
                .phase
                .iter()
                .zip(self.engine.agents.behaviors.iter())
            {
                if phase.is_executing() {
                    skip = skip.min(behavior.min_wait());
                }
            }
            // Respect pending adversary wake-ups...
            for (&phase, &wake) in self
                .engine
                .agents
                .phase
                .iter()
                .zip(self.engine.agents.adversary_wake.iter())
            {
                if phase == AgentPhase::Dormant && wake != u64::MAX {
                    skip = skip.min(wake.saturating_sub(next));
                }
            }
            // ...pending crashes (a crash mid-stretch must execute in
            // its exact round: the agent stops acting from then on)...
            if self.pending_crashes > 0 {
                for &crash in &self.engine.agents.crash_round {
                    if crash != u64::MAX {
                        skip = skip.min(crash.saturating_sub(next));
                    }
                }
            }
            // ...and the round limit.
            skip = skip.min(self.max_rounds.saturating_sub(next));
            if skip > 0 && skip != u64::MAX {
                for (&phase, behavior) in self
                    .engine
                    .agents
                    .phase
                    .iter()
                    .zip(self.engine.agents.behaviors.iter_mut())
                {
                    if phase.is_executing() {
                        behavior.note_skipped(skip);
                    }
                }
                next += skip;
                self.stats.skipped_rounds += skip;
            }
        }

        self.round = next;
        None
    }

    /// The sparse event-driven round loop: one executed iteration costs
    /// O(active + dirtied) instead of the dense loop's O(k).
    ///
    /// Phase-for-phase it is the dense loop with every all-agents scan
    /// replaced by its sparse equivalent — event cursors for crashes and
    /// adversary wakes, the dirty-node set for occupancy sampling, visit
    /// wakes and unparking, the sorted active worklist for polls and
    /// applies — in the dense loop's exact order, so traces, outcomes and
    /// every report byte match the dense loop bit for bit (see
    /// [`SparseState`] for the full argument).
    fn step_sparse(&mut self, scratch: &mut EngineScratch) -> SparseStep {
        let ActiveRun {
            engine,
            trace,
            stats,
            pending_crashes,
            bucket_occupants,
            sparse,
            round: cur_round,
            max_rounds,
            ..
        } = self;
        let sp = sparse.as_mut().expect("step_sparse requires sparse state");
        let Engine {
            graph,
            view,
            agents,
            sensing,
            ..
        } = engine;
        let graph: &Graph = graph;
        let sensing = *sensing;
        let bucket_occupants = *bucket_occupants;
        let max_rounds = *max_rounds;
        let round = *cur_round;
        let label_buf = &mut scratch.labels;
        let acts = &mut scratch.acts;

        stats.engine_iterations += 1;
        // Advance the topology to this round (fast-forwarded rounds are
        // skipped soundly, exactly as in the dense loop).
        view.begin_round(round);

        // 0. Crash faults due this round. The cursor makes this phase
        // vanish while no crash is due; the sorted `(round, agent)` order
        // reproduces the dense ascending-agent scan. A crash on an
        // already-declared agent resolves to nothing; otherwise the agent
        // is pulled out of whichever sparse home it occupies — dormant
        // list, active worklist or parked bucket — and its body stays.
        while let Some(&(due, i)) = sp.crashes.get(sp.crash_cursor) {
            if due > round {
                break;
            }
            debug_assert_eq!(due, round, "crash events fire in their exact round");
            sp.crash_cursor += 1;
            let iu = i as usize;
            agents.crash_round[iu] = u64::MAX;
            *pending_crashes -= 1;
            if agents.phase[iu] == AgentPhase::Declared {
                continue;
            }
            match agents.phase[iu] {
                AgentPhase::Dormant => remove_sorted(&mut sp.dormant, i),
                _ if sp.parked_at[iu] != u64::MAX => {
                    sp.remove_from_bucket(agents.pos[iu].index(), i);
                    sp.parked_at[iu] = u64::MAX;
                    sp.park_deadline[iu] = u64::MAX;
                    sp.parked_count -= 1;
                }
                _ => remove_sorted(&mut sp.active, i),
            }
            sp.nonterminal -= 1;
            agents.phase[iu] = AgentPhase::Crashed;
            stats.last_crash_round = stats.last_crash_round.max(round);
            if let Some(t) = trace.as_mut() {
                t.push(TraceEvent::Crashed {
                    agent: agents.labels[iu],
                    round,
                    node: agents.pos[iu],
                });
            }
        }

        // 1. Adversary wake-ups due this round. Entries whose agent
        // already woke by visit (or crashed) are stale and skipped; live
        // entries fire exactly at their round, in ascending agent order.
        while let Some(&(due, i)) = sp.wakes.get(sp.wake_cursor) {
            if due > round {
                break;
            }
            sp.wake_cursor += 1;
            let iu = i as usize;
            if agents.phase[iu] != AgentPhase::Dormant {
                continue;
            }
            agents.phase[iu] = AgentPhase::Active;
            agents.just_woken[iu] = true;
            remove_sorted(&mut sp.dormant, i);
            insert_sorted(&mut sp.active, i);
            if let Some(t) = trace.as_mut() {
                t.push(TraceEvent::Wake {
                    agent: agents.labels[iu],
                    round,
                    by_visit: false,
                });
            }
        }

        // 2+3. Occupancy deltas from the previous executed iteration.
        // `card`/`occupants` were already updated by the applied moves;
        // this is where the dense loop would first *observe* the new
        // positions, so this is where max-colocation is sampled, dormant
        // agents that gained company wake (ascending agent order, like the
        // dense scan — a fresh co-location implies a dirtied node, so the
        // scan fires iff the dense one would), and the dirtied nodes'
        // parked waiters are brought back for re-polling.
        if !sp.dirty.is_empty() {
            for di in 0..sp.dirty.len() {
                let node = sp.dirty[di] as usize;
                stats.max_colocation = stats.max_colocation.max(sp.card[node]);
            }
            let mut d = 0;
            while d < sp.dormant.len() {
                let i = sp.dormant[d];
                let iu = i as usize;
                if sp.card[agents.pos[iu].index()] > 1 {
                    agents.phase[iu] = AgentPhase::Active;
                    agents.just_woken[iu] = true;
                    sp.dormant.remove(d);
                    insert_sorted(&mut sp.active, i);
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent::Wake {
                            agent: agents.labels[iu],
                            round,
                            by_visit: true,
                        });
                    }
                } else {
                    d += 1;
                }
            }
            for di in 0..sp.dirty.len() {
                let node = sp.dirty[di] as usize;
                if sp.parked_here[node].is_empty() {
                    continue;
                }
                let mut bucket = std::mem::take(&mut sp.parked_here[node]);
                for &i in &bucket {
                    sp.unpark(agents, i, round);
                }
                bucket.clear();
                sp.parked_here[node] = bucket;
            }
            sp.dirty.clear();
        }

        // Horizon expiry: the rare O(k) scan, taken only when the earliest
        // recorded deadline can actually be due (`next_deadline` is a lazy
        // lower bound — a stale-low value costs one empty scan, never a
        // missed poll).
        if round >= sp.next_deadline {
            let mut min_next = u64::MAX;
            for iu in 0..sp.park_deadline.len() {
                let deadline = sp.park_deadline[iu];
                if deadline == u64::MAX {
                    continue;
                }
                debug_assert!(deadline >= round, "a park deadline was silently passed");
                if deadline <= round {
                    sp.remove_from_bucket(agents.pos[iu].index(), iu as u32);
                    sp.unpark(agents, iu as u32, round);
                } else {
                    min_next = min_next.min(deadline);
                }
            }
            sp.next_deadline = min_next;
        }

        // 4. Poll the active worklist — the dense poll phase restricted to
        // the agents whose next action can differ from the parked `Wait`.
        // The snapshot decouples the apply phase from worklist edits; the
        // co-indexed parkable flags exclude blocked and just-woken polls
        // from parking (their very next observation changes, so the
        // skipped-identical-observation catch-up contract could not hold).
        {
            let SparseState { polled, active, .. } = &mut *sp;
            polled.clear();
            polled.extend_from_slice(active);
        }
        sp.poll_parkable.clear();
        let mut all_waited = true;
        for pi in 0..sp.polled.len() {
            let i = sp.polled[pi];
            let iu = i as usize;
            let phase = agents.phase[iu];
            debug_assert!(phase.is_executing());
            let blocked = phase == AgentPhase::Blocked;
            let parkable = !blocked && !agents.just_woken[iu];
            let act = poll_agent(
                graph,
                sensing,
                agents,
                &sp.card,
                &sp.occupants,
                label_buf,
                round,
                iu,
                blocked,
            );
            stats.polled_agent_rounds += 1;
            agents.phase[iu] = AgentPhase::Active;
            let waited = matches!(act, AgentAct::Wait);
            if !waited {
                all_waited = false;
            }
            sp.poll_parkable.push(parkable && waited);
            acts[iu] = Some(act);
        }

        // 5. Apply actions in ascending agent order, updating occupancy
        // incrementally and recording both endpoints of every applied move
        // as dirty (label swaps dirty too: under traditional sensing the
        // peer-label set changes even where the cardinality does not).
        for pi in 0..sp.polled.len() {
            let i = sp.polled[pi];
            let iu = i as usize;
            let Some(act) = acts[iu].take() else { continue };
            match act {
                AgentAct::Wait => {}
                AgentAct::TakePort(p) => {
                    let pos = agents.pos[iu];
                    match graph.neighbor(pos, p) {
                        Some(_) if !view.edge_present(pos, p) => {
                            agents.phase[iu] = AgentPhase::Blocked;
                            stats.blocked_moves += 1;
                            if let Some(t) = trace.as_mut() {
                                t.push(TraceEvent::Blocked {
                                    agent: agents.labels[iu],
                                    round,
                                    node: pos,
                                    port: p,
                                });
                            }
                        }
                        Some((to, back)) => {
                            if let Some(t) = trace.as_mut() {
                                t.push(TraceEvent::Move {
                                    agent: agents.labels[iu],
                                    round,
                                    from: pos,
                                    to,
                                    port: p,
                                });
                            }
                            let from = pos.index();
                            sp.card[from] -= 1;
                            sp.card[to.index()] += 1;
                            if bucket_occupants {
                                let label = agents.labels[iu];
                                let bucket = &mut sp.occupants[from];
                                if let Some(at) = bucket.iter().position(|&l| l == label) {
                                    bucket.swap_remove(at);
                                }
                                sp.occupants[to.index()].push(label);
                            }
                            agents.pos[iu] = to;
                            agents.entry_port[iu] = Some(back);
                            stats.total_moves += 1;
                            sp.dirty.push(from as u32);
                            sp.dirty.push(to.index() as u32);
                        }
                        // The sparse loop never touched the shared scratch
                        // occupancy, so the error path has nothing to wipe.
                        None => {
                            return SparseStep::Fail(SimError::InvalidPort {
                                agent: agents.labels[iu],
                                node: pos,
                                port: p,
                                round,
                            });
                        }
                    }
                }
                AgentAct::Declare(d) => {
                    agents.declared[iu] = Some(DeclarationRecord {
                        round,
                        node: agents.pos[iu],
                        declaration: d,
                    });
                    agents.phase[iu] = AgentPhase::Declared;
                    remove_sorted(&mut sp.active, i);
                    sp.nonterminal -= 1;
                    stats.last_declaration_round = stats.last_declaration_round.max(round);
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent::Declare {
                            agent: agents.labels[iu],
                            round,
                            node: agents.pos[iu],
                            declaration: d,
                        });
                    }
                }
            }
        }

        // Terminal check via the maintained counter — no all-k phase scan.
        if sp.nonterminal == 0 {
            let crashed = agents.phase.contains(&AgentPhase::Crashed);
            let (status, rounds) = if crashed {
                (
                    RunStatus::Halted,
                    stats.last_declaration_round.max(stats.last_crash_round),
                )
            } else {
                (RunStatus::AllDeclared, stats.last_declaration_round)
            };
            return SparseStep::Terminal(status, rounds);
        }

        let mut next = round + 1;

        // 6. Quiescence fast-forward. Parked agents count as waiting —
        // that is what parking means — so the condition is "every poll
        // this round waited and someone is still executing". To bound the
        // skip by every executing agent's *current* horizon (the dense
        // bound), each parked behavior is caught up and polled once at
        // this round — exactly the poll the dense loop issues in its
        // fast-forward round — then re-parked at the new synchronization
        // point with a fresh horizon.
        if all_waited && (!sp.polled.is_empty() || sp.parked_count > 0) {
            let mut skip = u64::MAX;
            for pi in 0..sp.polled.len() {
                skip = skip.min(agents.behaviors[sp.polled[pi] as usize].min_wait());
            }
            sp.ff_parked.clear();
            for iu in 0..sp.parked_at.len() {
                if sp.parked_at[iu] != u64::MAX {
                    sp.ff_parked.push(iu as u32);
                }
            }
            for fi in 0..sp.ff_parked.len() {
                let iu = sp.ff_parked[fi] as usize;
                let behind = round - 1 - sp.parked_at[iu];
                if behind > 0 {
                    agents.behaviors[iu].note_skipped(behind);
                }
                let act = poll_agent(
                    graph,
                    sensing,
                    agents,
                    &sp.card,
                    &sp.occupants,
                    label_buf,
                    round,
                    iu,
                    false,
                );
                stats.polled_agent_rounds += 1;
                debug_assert!(
                    matches!(act, AgentAct::Wait),
                    "parked agent acted inside its promised wait horizon"
                );
                skip = skip.min(agents.behaviors[iu].min_wait());
            }
            // Respect pending adversary wake-ups: the first entry whose
            // agent is still dormant bounds every later one (stale heads
            // are skipped for good — agents never return to dormant)...
            while let Some(&(w, i)) = sp.wakes.get(sp.wake_cursor) {
                if agents.phase[i as usize] == AgentPhase::Dormant {
                    skip = skip.min(w.saturating_sub(next));
                    break;
                }
                sp.wake_cursor += 1;
            }
            // ...pending crashes, with no phase filter — exactly the dense
            // bound: even a crash aimed at an already-declared agent pins
            // the skip...
            if let Some(&(c, _)) = sp.crashes.get(sp.crash_cursor) {
                skip = skip.min(c.saturating_sub(next));
            }
            // ...and the round limit.
            skip = skip.min(max_rounds.saturating_sub(next));
            if skip > 0 && skip != u64::MAX {
                for pi in 0..sp.polled.len() {
                    agents.behaviors[sp.polled[pi] as usize].note_skipped(skip);
                }
                for fi in 0..sp.ff_parked.len() {
                    agents.behaviors[sp.ff_parked[fi] as usize].note_skipped(skip);
                }
                next += skip;
                stats.skipped_rounds += skip;
            }
            let sync = next - 1;
            for fi in 0..sp.ff_parked.len() {
                let i = sp.ff_parked[fi];
                let iu = i as usize;
                let h = agents.behaviors[iu].min_wait();
                if h == 0 {
                    sp.remove_from_bucket(agents.pos[iu].index(), i);
                    sp.parked_at[iu] = u64::MAX;
                    sp.park_deadline[iu] = u64::MAX;
                    sp.parked_count -= 1;
                    insert_sorted(&mut sp.active, i);
                } else {
                    sp.parked_at[iu] = sync;
                    let deadline = sync.saturating_add(h).saturating_add(1);
                    sp.park_deadline[iu] = deadline;
                    sp.next_deadline = sp.next_deadline.min(deadline);
                }
            }
        }

        // 7. Park this round's parkable waits that carry a positive fresh
        // horizon: off the worklist, into the node bucket, re-polled only
        // by expiry, a dirtied node, or a crash.
        let sync = next - 1;
        for pi in 0..sp.polled.len() {
            if !sp.poll_parkable[pi] {
                continue;
            }
            let i = sp.polled[pi];
            let iu = i as usize;
            let h = agents.behaviors[iu].min_wait();
            if h == 0 {
                continue;
            }
            remove_sorted(&mut sp.active, i);
            sp.parked_here[agents.pos[iu].index()].push(i);
            sp.parked_at[iu] = sync;
            let deadline = sync.saturating_add(h).saturating_add(1);
            sp.park_deadline[iu] = deadline;
            sp.parked_count += 1;
            sp.next_deadline = sp.next_deadline.min(deadline);
        }

        *cur_round = next;
        SparseStep::Continue
    }

    /// Assembles the outcome. Takes the arena's result-bearing columns out
    /// of the run; only called once, on the terminating step.
    fn finish(&mut self, status: RunStatus, rounds: u64) -> RunOutcome {
        let labels = std::mem::take(&mut self.engine.agents.labels);
        let phase = std::mem::take(&mut self.engine.agents.phase);
        let declared = std::mem::take(&mut self.engine.agents.declared);
        let stats = std::mem::take(&mut self.stats);
        let crashed_agents = labels
            .iter()
            .zip(phase.iter())
            .filter(|&(_, &p)| p == AgentPhase::Crashed)
            .map(|(&l, _)| l)
            .collect();
        RunOutcome {
            status,
            rounds,
            declarations: labels.into_iter().zip(declared).collect(),
            crashed_agents,
            total_moves: stats.total_moves,
            blocked_moves: stats.blocked_moves,
            engine_iterations: stats.engine_iterations,
            skipped_rounds: stats.skipped_rounds,
            polled_agent_rounds: stats.polled_agent_rounds,
            max_colocation: stats.max_colocation,
            trace: self.trace.take(),
        }
    }
}

impl<'g, V: TopologyView, B: ForkableBehavior> ActiveRun<'g, V, B> {
    /// Snapshots the run's full mutable state at the current round
    /// boundary (just before the round [`ActiveRun::next_round`] would
    /// simulate).
    ///
    /// Returns `None` if the run has already terminated (its
    /// result-bearing columns are gone) or if any behavior declines to
    /// fork ([`ForkableBehavior::fork`]). A checkpoint at round 0, resumed
    /// into a freshly begun run, reproduces that run exactly.
    pub fn checkpoint(&self) -> Option<RunCheckpoint<B>> {
        // `finish` takes the result-bearing columns out of the arena; a
        // terminated run has nothing coherent left to snapshot.
        if self.engine.agents.pos.len() != self.engine.agents.labels.len()
            || self.engine.agents.labels.is_empty()
        {
            return None;
        }
        let behaviors = self
            .engine
            .agents
            .behaviors
            .iter()
            .map(ForkableBehavior::fork)
            .collect::<Option<Vec<B>>>()?;
        // Sparse park state is captured verbatim, so a sparse-resumed run
        // re-polls exactly when this run would have. A dense run has no
        // park state; its checkpoint stores the all-unparked vectors plus
        // every occupied node as dirty — the safe over-approximation that
        // keeps a dense checkpoint resumable into a sparse run.
        let k = self.engine.agents.len();
        let (parked_at, park_deadline, dirty) = match &self.sparse {
            Some(sp) => (
                sp.parked_at.clone(),
                sp.park_deadline.clone(),
                sp.dirty.clone(),
            ),
            None => (
                vec![u64::MAX; k],
                vec![u64::MAX; k],
                self.engine
                    .agents
                    .pos
                    .iter()
                    .map(|p| p.index() as u32)
                    .collect(),
            ),
        };
        Some(RunCheckpoint {
            pos: self.engine.agents.pos.clone(),
            phase: self.engine.agents.phase.clone(),
            just_woken: self.engine.agents.just_woken.clone(),
            entry_port: self.engine.agents.entry_port.clone(),
            declared: self.engine.agents.declared.clone(),
            behaviors,
            stats: self.stats.clone(),
            trace: self.trace.clone(),
            parked_at,
            park_deadline,
            dirty,
            round: self.round,
        })
    }

    /// Overwrites this freshly begun run's state with the checkpoint's, so
    /// stepping continues from [`RunCheckpoint::round`] instead of round 0.
    ///
    /// Returns `false` — leaving the run untouched — if the team shapes
    /// differ or any checkpointed behavior declines to fork. The fork of
    /// every behavior happens *before* any column is overwritten, so a
    /// failed resume never leaves the run half-written.
    ///
    /// # Validity contract
    ///
    /// The resumed continuation is bitwise identical to stepping this run
    /// from scratch iff this run's configuration and the checkpointed
    /// run's agree on everything the prefix could observe: same graph,
    /// team, sensing, trace capacity, round limit and behaviors; wake
    /// schedules, fault specs and topology specs that agree on every round
    /// **before** `cp.round()`; and every wake or crash round on which the
    /// two specs *disagree* at least `cp.round() + 1`. The strict `+ 1`
    /// matters: the quiescence fast-forward computed in a quiet prefix
    /// round consults future wake/crash rounds when choosing how far to
    /// skip, so a differing value equal to `cp.round()` could have changed
    /// the prefix's skip decisions even though no agent ever acted
    /// differently. Callers (the adversary search) enforce this by
    /// deriving a conservative *divergence round* from the two specs and
    /// only resuming from checkpoints at or below it.
    pub fn resume_from(&mut self, cp: &RunCheckpoint<B>) -> bool {
        let k = self.engine.agents.len();
        if cp.pos.len() != k || cp.behaviors.len() != k {
            return false;
        }
        let Some(behaviors) = cp
            .behaviors
            .iter()
            .map(ForkableBehavior::fork)
            .collect::<Option<Vec<B>>>()
        else {
            return false;
        };
        self.engine.agents.pos.clone_from(&cp.pos);
        self.engine.agents.phase.clone_from(&cp.phase);
        self.engine.agents.just_woken.clone_from(&cp.just_woken);
        self.engine.agents.entry_port.clone_from(&cp.entry_port);
        self.engine.agents.declared.clone_from(&cp.declared);
        self.engine.agents.behaviors = behaviors;
        self.stats = cp.stats.clone();
        self.trace = cp.trace.clone();
        self.round = cp.round;
        // Crash reconciliation against this run's *own* resolved spec:
        // crashes strictly before the resumed round already fired inside
        // the checkpointed prefix (identically, by the validity contract —
        // the copied phases carry them); crashes at or after it are still
        // pending here, whatever the checkpointed run's spec said.
        let mut pending = 0;
        for (slot, &resolved) in self
            .engine
            .agents
            .crash_round
            .iter_mut()
            .zip(&self.resolved_crashes)
        {
            *slot = if resolved != u64::MAX && resolved >= cp.round {
                pending += 1;
                resolved
            } else {
                u64::MAX
            };
        }
        self.pending_crashes = pending;
        match &self.sparse {
            // Sparse resume: rebuild the whole sparse state from the
            // restored columns (worklists from the phases, occupancy from
            // the positions, event lists from the post-reconciliation
            // wake/crash columns), with the checkpoint's park state and
            // pending dirty nodes taken verbatim.
            Some(_) => {
                self.sparse = Some(build_sparse(
                    &self.engine.agents,
                    self.engine.graph.node_count(),
                    self.bucket_occupants,
                    cp.parked_at.clone(),
                    cp.park_deadline.clone(),
                    cp.dirty.clone(),
                ));
            }
            // Dense resume of a sparse checkpoint: the dense loop polls
            // every executing agent every round, so the park state
            // dissolves — catch each parked behavior up to the round
            // before the resumed one (valid: parking guarantees the
            // skipped observations were identical).
            None => {
                for (iu, &pa) in cp.parked_at.iter().enumerate() {
                    if pa != u64::MAX {
                        let behind = cp.round - 1 - pa;
                        if behind > 0 {
                            self.engine.agents.behaviors[iu].note_skipped(behind);
                        }
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        self.promise.iter_mut().for_each(|p| *p = (0, None));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Declaration;
    use crate::fault::CrashPoint;
    use crate::obs::{Action, Poll};
    use crate::proc::{ProcBehavior, Procedure, WaitRounds};
    use nochatter_graph::{generators, Port};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    /// Declares the moment it sees company.
    struct DeclareOnCompany;
    impl Procedure for DeclareOnCompany {
        type Output = ();
        fn poll(&mut self, obs: &Obs) -> Poll<()> {
            if obs.cur_card > 1 {
                Poll::Complete(())
            } else {
                Poll::Yield(Action::Wait)
            }
        }
    }

    #[test]
    fn rejects_no_agents() {
        let g = generators::ring(4);
        let engine = Engine::new(&g);
        assert!(matches!(engine.run(10), Err(SimError::NoAgents)));
    }

    #[test]
    fn rejects_shared_start() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for l in [1u64, 2] {
            engine.add_agent(
                label(l),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
        }
        assert!(matches!(engine.run(10), Err(SimError::SharedStart { .. })));
    }

    #[test]
    fn rejects_duplicate_label() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.add_agent(
            label(1),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        assert!(matches!(
            engine.run(10),
            Err(SimError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn validation_error_priority_matches_the_old_pairwise_scan() {
        // The historical validator scanned pairs (i, j) lexicographically,
        // out-of-range before the pair checks of row i, position before
        // label at the same pair. Multi-violation setups must keep
        // reporting the same winner.
        let g = generators::ring(4);
        let agent = |engine: &mut Engine<'_>, l: u64, pos: u32| {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
        };
        // Label pair (0, 3) beats position pair (1, 3).
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 1), (3, 2), (1, 1)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::DuplicateLabel { label: l }) if l == label(1)
        ));
        // Position pair (0, 1) beats label pair (1, 2).
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 0), (2, 2)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::SharedStart { node }) if node == NodeId::new(0)
        ));
        // Position pair (0, 2) beats the out-of-range start at index 1.
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 99), (3, 0)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::SharedStart { node }) if node == NodeId::new(0)
        ));
        // ...but an out-of-range start in row 0 beats the pair (1, 2).
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 99u32), (2, 1), (3, 1)] {
            agent(&mut engine, l, pos);
        }
        assert!(matches!(
            engine.run(10),
            Err(SimError::StartOutOfRange { node }) if node == NodeId::new(99)
        ));
    }

    #[test]
    fn invalid_port_is_reported() {
        struct BadPort;
        impl Procedure for BadPort {
            type Output = ();
            fn poll(&mut self, _obs: &Obs) -> Poll<()> {
                Poll::Yield(Action::TakePort(Port::new(99)))
            }
        }
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(BadPort)),
        );
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(50))),
        );
        match engine.run(10) {
            Err(SimError::InvalidPort { agent, round, .. }) => {
                assert_eq!(agent, label(1));
                assert_eq!(round, 0);
            }
            other => panic!("expected InvalidPort, got {other:?}"),
        }
    }

    #[test]
    fn walker_wakes_sleeper_and_both_declare() {
        let g = generators::ring(5);
        let mut engine = Engine::new(&g);
        // Agent 1 walks; agent 2 sleeps until visited, then declares when it
        // sees company (which happens in its wake round).
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(RunFor5Moves::default())),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(DeclareOnCompany)),
        );
        engine.set_wake_schedule(WakeSchedule::FirstOnly);
        engine.record_trace(64);
        let outcome = engine.run(100).unwrap();
        assert!(outcome.all_declared());
        let trace = outcome.trace.as_ref().unwrap();
        // Agent 2 must have been woken by visit in round 2 (two moves away).
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::Wake { agent, round: 2, by_visit: true } if *agent == label(2)
        )));
    }

    /// Moves clockwise 5 times then completes.
    #[derive(Default)]
    struct RunFor5Moves {
        moves: u32,
    }
    impl Procedure for RunFor5Moves {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> Poll<()> {
            if self.moves >= 5 {
                Poll::Complete(())
            } else {
                self.moves += 1;
                Poll::Yield(Action::TakePort(Port::new(1)))
            }
        }
    }

    #[test]
    fn crossing_agents_swap_without_meeting() {
        // Two agents adjacent on a ring, both stepping toward each other,
        // swap nodes and never observe cur_card > 1.
        struct RecordMax {
            dir: u32,
            max_seen: u32,
            steps: u32,
        }
        impl Procedure for RecordMax {
            type Output = u32;
            fn poll(&mut self, obs: &Obs) -> Poll<u32> {
                self.max_seen = self.max_seen.max(obs.cur_card);
                if self.steps == 0 {
                    Poll::Complete(self.max_seen)
                } else {
                    self.steps -= 1;
                    Poll::Yield(Action::TakePort(Port::new(self.dir)))
                }
            }
        }
        let g = generators::ring(6);
        let mut engine = Engine::new(&g);
        // Agent 1 at node 0 moves clockwise (port 1); agent 2 at node 1
        // moves counterclockwise (port 0). They cross on the same edge.
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(
                RecordMax {
                    dir: 1,
                    max_seen: 0,
                    steps: 1,
                },
                |m| Declaration {
                    leader: None,
                    size: Some(m),
                },
            )),
        );
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::mapping(
                RecordMax {
                    dir: 0,
                    max_seen: 0,
                    steps: 1,
                },
                |m| Declaration {
                    leader: None,
                    size: Some(m),
                },
            )),
        );
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        for (_, rec) in &outcome.declarations {
            // Neither agent ever saw a second agent.
            assert_eq!(rec.unwrap().declaration.size, Some(1));
        }
        // But they did end up on swapped nodes.
        let nodes: Vec<NodeId> = outcome
            .declarations
            .iter()
            .map(|(_, r)| r.unwrap().node)
            .collect();
        assert_eq!(nodes, vec![NodeId::new(1), NodeId::new(0)]);
    }

    #[test]
    fn fast_forward_skips_long_waits() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 2)] {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(1_000_000))),
            );
        }
        let outcome = engine.run(2_000_000).unwrap();
        assert!(outcome.all_declared());
        assert!(
            outcome.engine_iterations < 100,
            "fast-forward should reduce ~1M rounds to a handful of \
             iterations, got {}",
            outcome.engine_iterations
        );
        assert!(outcome.skipped_rounds > 999_000);
        // Declarations still happen in the correct round.
        assert_eq!(outcome.rounds, 1_000_000);
    }

    #[test]
    fn fast_forward_respects_pending_wakeups() {
        // Agent 2 wakes at round 500 and declares instantly; agent 1 waits
        // long. The fast-forward must not jump past round 500.
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(1000))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.set_wake_schedule(WakeSchedule::Explicit(vec![0, 500]));
        let outcome = engine.run(10_000).unwrap();
        assert!(outcome.all_declared());
        let rec2 = outcome.declarations[1].1.unwrap();
        assert_eq!(rec2.round, 500);
    }

    #[test]
    fn traditional_sensing_exposes_labels() {
        struct SeePeers;
        impl AgentBehavior for SeePeers {
            fn on_round(&mut self, obs: &Obs) -> AgentAct {
                let labels = obs.peer_labels.as_ref().expect("traditional mode");
                assert_eq!(labels.len() as u32, obs.cur_card);
                AgentAct::Declare(Declaration {
                    leader: Some(labels[0]),
                    size: None,
                })
            }
        }
        let g = generators::complete(2);
        let mut engine = Engine::new(&g);
        engine.add_agent(label(5), NodeId::new(0), Box::new(SeePeers));
        engine.add_agent(label(3), NodeId::new(1), Box::new(SeePeers));
        engine.set_sensing(Sensing::Traditional);
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        // Each agent was alone, so each elected itself.
        assert_eq!(
            outcome.declarations[0].1.unwrap().declaration.leader,
            Some(label(5))
        );
    }

    #[test]
    fn weak_sensing_hides_labels() {
        struct AssertNoLabels;
        impl AgentBehavior for AssertNoLabels {
            fn on_round(&mut self, obs: &Obs) -> AgentAct {
                assert!(obs.peer_labels.is_none());
                AgentAct::Declare(Declaration::bare())
            }
        }
        let g = generators::complete(2);
        let mut engine = Engine::new(&g);
        engine.add_agent(label(5), NodeId::new(0), Box::new(AssertNoLabels));
        engine.add_agent(label(3), NodeId::new(1), Box::new(AssertNoLabels));
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
    }

    #[test]
    fn round_limit_reports_partial() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(5))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::declaring(WaitRounds::new(500))),
        );
        let outcome = engine.run(10).unwrap();
        assert_eq!(outcome.status, RunStatus::RoundLimit);
        assert!(outcome.declarations[0].1.is_some());
        assert!(outcome.declarations[1].1.is_none());
        assert!(outcome.gathering().is_err());
    }

    /// A test topology that blocks every edge before round `until` and
    /// none from then on.
    #[derive(Clone, Copy)]
    struct BlockedUntil {
        until: u64,
    }
    struct BlockedUntilView {
        until: u64,
        round: u64,
    }
    impl TopologyView for BlockedUntilView {
        fn begin_round(&mut self, round: u64) {
            self.round = round;
        }
        fn edge_present(&self, _from: NodeId, _port: Port) -> bool {
            self.round >= self.until
        }
    }
    impl Topology for BlockedUntil {
        type View = BlockedUntilView;
        fn view(&self, _graph: &Graph) -> BlockedUntilView {
            BlockedUntilView {
                until: self.until,
                round: 0,
            }
        }
    }

    #[test]
    fn blocked_moves_stay_put_and_report() {
        // The agent attempts port 1 every round; rounds 0..3 are blocked.
        // It must stay on its start node, keep `entry_port: None`, observe
        // `blocked: true` in rounds 1..=3 (the observation after each
        // blocked attempt), and cross only in round 3.
        struct AssertBlockedSequence;
        impl AgentBehavior for AssertBlockedSequence {
            fn on_round(&mut self, obs: &Obs) -> AgentAct {
                assert_eq!(
                    obs.blocked,
                    (1..=3).contains(&obs.round),
                    "round {}",
                    obs.round
                );
                if obs.blocked {
                    // A blocked agent never moved: entry port unchanged.
                    assert_eq!(obs.entry_port, None);
                }
                if obs.round == 4 {
                    assert_eq!(obs.entry_port, Some(Port::new(0)), "the move succeeded");
                    return AgentAct::Declare(Declaration::bare());
                }
                AgentAct::TakePort(Port::new(1))
            }
        }
        let g = generators::ring(4);
        let mut engine = Engine::with_topology(&g, &BlockedUntil { until: 3 });
        engine.add_agent(label(1), NodeId::new(0), Box::new(AssertBlockedSequence));
        engine.record_trace(64);
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        assert_eq!(outcome.total_moves, 1);
        assert_eq!(outcome.blocked_moves, 3);
        let trace = outcome.trace.as_ref().unwrap();
        let blocked: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Blocked {
                    round, node, port, ..
                } => {
                    assert_eq!(*node, NodeId::new(0));
                    assert_eq!(*port, Port::new(1));
                    Some(*round)
                }
                _ => None,
            })
            .collect();
        assert_eq!(blocked, vec![0, 1, 2]);
        assert_eq!(outcome.declarations[0].1.unwrap().node, NodeId::new(1));
    }

    #[test]
    fn absent_edge_does_not_mask_invalid_ports() {
        // Even under a topology that blocks everything, a nonexistent port
        // is a protocol violation, not a blocked move: dynamics never
        // change the degree an agent observes.
        struct BadPort;
        impl Procedure for BadPort {
            type Output = ();
            fn poll(&mut self, _obs: &Obs) -> Poll<()> {
                Poll::Yield(Action::TakePort(Port::new(99)))
            }
        }
        let g = generators::ring(4);
        let mut engine = Engine::with_topology(&g, &BlockedUntil { until: u64::MAX });
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(BadPort)),
        );
        assert!(matches!(engine.run(10), Err(SimError::InvalidPort { .. })));
    }

    #[test]
    fn static_runs_never_block() {
        let g = generators::ring(5);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(RunFor5Moves::default())),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(DeclareOnCompany)),
        );
        let outcome = engine.run(100).unwrap();
        assert_eq!(outcome.blocked_moves, 0);
    }

    #[test]
    fn trace_capacity_overflow_counts_drops_and_keeps_the_earliest_events() {
        // Two walkers generate a steady stream of events; a run with a
        // tiny trace capacity must retain exactly the earliest events of
        // the identical unbounded run and count every later one as
        // dropped.
        let run_with_capacity = |capacity: usize| {
            let g = generators::ring(6);
            let mut engine = Engine::new(&g);
            for (l, pos) in [(1u64, 0u32), (2, 3)] {
                engine.add_agent(
                    label(l),
                    NodeId::new(pos),
                    Box::new(ProcBehavior::declaring(RunFor5Moves::default())),
                );
            }
            engine.record_trace(capacity);
            engine.run(100).unwrap()
        };
        let full = run_with_capacity(1 << 10);
        let full_trace = full.trace.as_ref().unwrap();
        assert_eq!(full_trace.dropped(), 0);
        assert!(
            full_trace.events().len() > 4,
            "need enough events to overflow a capacity of 4"
        );
        let small = run_with_capacity(4);
        let small_trace = small.trace.as_ref().unwrap();
        assert_eq!(small_trace.events().len(), 4);
        assert_eq!(
            small_trace.events(),
            &full_trace.events()[..4],
            "retained events must be the earliest ones, in order"
        );
        assert_eq!(
            small_trace.dropped(),
            (full_trace.events().len() - 4) as u64
        );
        // The truncation is a recording concern only: the run itself is
        // unchanged.
        assert_eq!(small.rounds, full.rounds);
        assert_eq!(small.total_moves, full.total_moves);
    }

    #[test]
    fn cur_card_counts_all_present_agents() {
        struct CountAtStart {
            seen: Option<u32>,
        }
        impl Procedure for CountAtStart {
            type Output = u32;
            fn poll(&mut self, obs: &Obs) -> Poll<u32> {
                match self.seen {
                    None => {
                        self.seen = Some(obs.cur_card);
                        Poll::Yield(Action::Wait)
                    }
                    Some(c) => Poll::Complete(c),
                }
            }
        }
        // Three agents walk to node 0 one by one... simpler: two agents
        // start adjacent; one moves onto the other; both then see card 2.
        let g = generators::path(2);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(CountAtStart { seen: None }, |c| {
                Declaration {
                    leader: None,
                    size: Some(c),
                }
            })),
        );
        struct MoveThenCount {
            moved: bool,
            seen: Option<u32>,
        }
        impl Procedure for MoveThenCount {
            type Output = u32;
            fn poll(&mut self, obs: &Obs) -> Poll<u32> {
                if !self.moved {
                    self.moved = true;
                    return Poll::Yield(Action::TakePort(Port::new(0)));
                }
                match self.seen {
                    None => {
                        self.seen = Some(obs.cur_card);
                        Poll::Yield(Action::Wait)
                    }
                    Some(c) => Poll::Complete(c),
                }
            }
        }
        engine.add_agent(
            label(2),
            NodeId::new(1),
            Box::new(ProcBehavior::mapping(
                MoveThenCount {
                    moved: false,
                    seen: None,
                },
                |c| Declaration {
                    leader: None,
                    size: Some(c),
                },
            )),
        );
        let outcome = engine.run(10).unwrap();
        assert!(outcome.all_declared());
        // Agent 2 saw 2 after moving onto node 0.
        assert_eq!(outcome.declarations[1].1.unwrap().declaration.size, Some(2));
        assert_eq!(outcome.max_colocation, 2);
    }

    // ------------------------------------------------------------------
    // Crash-fault adversary semantics.
    // ------------------------------------------------------------------

    /// Walks clockwise forever.
    struct WalkForever;
    impl Procedure for WalkForever {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> Poll<()> {
            Poll::Yield(Action::TakePort(Port::new(1)))
        }
    }

    fn crash_at(points: &[(u64, u64)]) -> FaultSpec {
        FaultSpec::CrashAt(
            points
                .iter()
                .map(|&(l, round)| CrashPoint {
                    label: label(l),
                    round,
                })
                .collect(),
        )
    }

    #[test]
    fn crashed_agent_stops_moving_but_keeps_its_body() {
        let g = generators::ring(6);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WalkForever)),
        );
        engine.add_agent(
            label(2),
            NodeId::new(3),
            Box::new(ProcBehavior::declaring(WaitRounds::new(20))),
        );
        engine.set_faults(crash_at(&[(1, 2)]));
        engine.record_trace(256);
        let outcome = engine.run(30).unwrap();
        // The walker made exactly 2 moves (rounds 0 and 1) and then froze
        // at node 2.
        assert_eq!(outcome.total_moves, 2);
        assert_eq!(outcome.crashed_agents, vec![label(1)]);
        let trace = outcome.trace.as_ref().unwrap();
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::Crashed { agent, round: 2, node } if *agent == label(1) && *node == NodeId::new(2)
        )));
        // No event of agent 1 after its crash round.
        for e in trace.events() {
            if let TraceEvent::Move { agent, round, .. } = e {
                assert!(*agent != label(1) || *round < 2, "moved after crashing");
            }
        }
        // Agent 2 declared; the run ended Halted (a crash prevented
        // all-declared) at the last declaration round.
        assert_eq!(outcome.status, RunStatus::Halted);
        assert!(outcome.declarations[1].1.is_some());
        assert!(outcome.gathering().is_err());
    }

    #[test]
    fn crashed_body_still_counts_toward_cur_card_and_wakes_sleepers() {
        // Agent 1 walks two steps and crashes on the sleeper's node; the
        // dormant agent 2 is woken by the crashed body and sees card 2.
        let g = generators::ring(5);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WalkForever)),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(DeclareOnCompany)),
        );
        engine.set_wake_schedule(WakeSchedule::FirstOnly);
        engine.set_faults(crash_at(&[(1, 2)]));
        engine.record_trace(64);
        let outcome = engine.run(20).unwrap();
        let trace = outcome.trace.as_ref().unwrap();
        // The body arrives at node 2 in round 2 (observed from round 2 on)
        // and the crash (start of round 2) does not remove it: the sleeper
        // wakes by visit and declares on company.
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::Wake { agent, by_visit: true, .. } if *agent == label(2)
        )));
        assert!(outcome.declarations[1].1.is_some(), "sleeper declared");
        assert_eq!(outcome.crashed_agents, vec![label(1)]);
    }

    #[test]
    fn crash_in_wake_round_preempts_the_wake() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(3))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        engine.set_wake_schedule(WakeSchedule::Explicit(vec![0, 5]));
        engine.set_faults(crash_at(&[(2, 5)]));
        engine.record_trace(64);
        let outcome = engine.run(100).unwrap();
        // Agent 2 never woke and never declared.
        let trace = outcome.trace.as_ref().unwrap();
        assert!(!trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Wake { agent, .. } if *agent == label(2))));
        assert_eq!(outcome.crashed_agents, vec![label(2)]);
        assert_eq!(outcome.status, RunStatus::Halted);
        // The surviving agent still declared in its own round 3.
        assert_eq!(outcome.declarations[0].1.unwrap().round, 3);
        assert_eq!(outcome.rounds, 5, "halt at the crash that ended the run");
    }

    #[test]
    fn fast_forward_respects_pending_crashes() {
        // Both agents wait enormously long; one crashes at round 700. The
        // fast-forward must stop exactly there (the crash is an event), and
        // the crashed agent must not declare when its wait would end.
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 2)] {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(1000))),
            );
        }
        engine.set_faults(crash_at(&[(2, 700)]));
        engine.record_trace(64);
        let outcome = engine.run(10_000).unwrap();
        assert!(
            outcome.engine_iterations < 50,
            "fast-forward must stay engaged around the crash, got {} iterations",
            outcome.engine_iterations
        );
        let trace = outcome.trace.as_ref().unwrap();
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::Crashed { agent, round: 700, .. } if *agent == label(2)
        )));
        assert_eq!(outcome.declarations[0].1.unwrap().round, 1000);
        assert!(outcome.declarations[1].1.is_none());
        assert_eq!(outcome.status, RunStatus::Halted);
        assert_eq!(outcome.rounds, 1000);
    }

    #[test]
    fn crash_after_declaration_is_void() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(1))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(1))),
        );
        engine.set_faults(crash_at(&[(1, 5)]));
        let outcome = engine.run(100).unwrap();
        // Both declared in round 1; the round-5 crash finds a declared
        // agent and resolves to nothing.
        assert_eq!(outcome.status, RunStatus::AllDeclared);
        assert!(outcome.crashed_agents.is_empty());
        assert!(outcome.gathering().is_err() || outcome.all_declared());
    }

    #[test]
    fn all_crashed_halts_at_the_last_crash() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 2)] {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(1000))),
            );
        }
        engine.set_faults(crash_at(&[(1, 3), (2, 9)]));
        let outcome = engine.run(10_000).unwrap();
        assert_eq!(outcome.status, RunStatus::Halted);
        assert_eq!(outcome.rounds, 9);
        assert_eq!(outcome.crashed_agents, vec![label(1), label(2)]);
        assert!(outcome.gathering_surviving().is_err());
    }

    #[test]
    fn unknown_crash_target_is_a_setup_error() {
        let g = generators::ring(4);
        let mut engine = Engine::new(&g);
        for (l, pos) in [(1u64, 0u32), (2, 2)] {
            engine.add_agent(
                label(l),
                NodeId::new(pos),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
        }
        engine.set_faults(crash_at(&[(9, 1)]));
        assert!(matches!(engine.run(10), Err(SimError::BadFaultSpec { .. })));
    }

    #[test]
    fn survivors_gathering_validates_among_the_living() {
        // Agent 1 crashes dormant; agents 2 and 3 gather and declare
        // consistently. Full validation fails (agent 1 never declared);
        // the surviving validation succeeds.
        let g = generators::path(3);
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(50))),
        );
        let declare_together = || {
            Box::new(ProcBehavior::mapping(WaitRounds::new(2), |()| {
                Declaration::with_leader(Label::new(2).unwrap())
            }))
        };
        engine.add_agent(label(2), NodeId::new(0), declare_together());
        engine.add_agent(label(3), NodeId::new(1), declare_together());
        engine.set_faults(crash_at(&[(1, 0)]));
        let outcome = engine.run(100).unwrap();
        assert!(outcome.gathering().is_err());
        let report = outcome.gathering_surviving();
        // The two survivors declared in the same round with the same
        // leader but at *different* nodes — surviving validation still
        // checks full consistency.
        assert!(matches!(
            report,
            Err(crate::outcome::ValidationError::DifferentNodes { .. })
        ));
    }
}
