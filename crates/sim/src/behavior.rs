//! Engine-facing agent behaviors and declarations.

use nochatter_graph::{Label, Port};

use crate::obs::{Action, Obs, Poll};
use crate::proc::Procedure;

/// What an agent announces when it terminates.
///
/// The gathering algorithms elect a leader as a by-product (Theorems 3.1 and
/// 4.1); the unknown-bound algorithm additionally learns the exact graph
/// size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Declaration {
    /// The elected leader's label, if the algorithm elects one.
    pub leader: Option<Label>,
    /// The learned graph size, if the algorithm learns it.
    pub size: Option<u32>,
}

impl Declaration {
    /// A bare "gathering achieved" declaration.
    pub fn bare() -> Self {
        Declaration {
            leader: None,
            size: None,
        }
    }

    /// A declaration electing `leader`.
    pub fn with_leader(leader: Label) -> Self {
        Declaration {
            leader: Some(leader),
            size: None,
        }
    }
}

/// An agent's choice for one round, as seen by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentAct {
    /// Stay put.
    Wait,
    /// Traverse an edge.
    TakePort(Port),
    /// Declare that gathering is achieved and halt (the agent remains at its
    /// node and keeps counting toward `CurCard`).
    Declare(Declaration),
}

/// A deterministic agent program, driven by the engine once per round.
///
/// Implemented for you by [`ProcBehavior`], which adapts any
/// [`Procedure`] whose output is a [`Declaration`] (or `()`).
/// The `min_wait`/`note_skipped` pair follows the same contract as
/// [`Procedure`] and powers both the engine's quiescence fast-forward and
/// the sparse round loop's per-agent parking: an agent that waits with a
/// positive horizon is taken off the poll worklist until the horizon
/// expires, its node's occupancy changes, or an adversary event lands.
/// The contract is what makes that sound — `min_wait` must hold under
/// identical observations, and a violation acts *later* than promised,
/// not just slower (`crates/sim/tests/promises.rs` property-tests every
/// built-in combinator against it, and debug builds assert it live).
pub trait AgentBehavior {
    /// Decides this round's action from the observation.
    fn on_round(&mut self, obs: &Obs) -> AgentAct;

    /// See [`Procedure::min_wait`].
    fn min_wait(&self) -> u64 {
        0
    }

    /// See [`Procedure::note_skipped`].
    fn note_skipped(&mut self, rounds: u64) {
        let _ = rounds;
    }

    /// A boxed copy of the behavior's *current* state, or `None` if the
    /// behavior cannot be duplicated mid-run.
    ///
    /// This is the escape hatch that lets run checkpointing
    /// ([`crate::RunCheckpoint`]) work through the open
    /// `Box<dyn AgentBehavior>` extension point: a behavior that opts in
    /// returns a fresh box whose subsequent `on_round`s are
    /// indistinguishable from the original's. The default declines, which
    /// makes checkpointing unavailable (callers fall back to from-scratch
    /// evaluation) rather than subtly wrong.
    fn clone_box(&self) -> Option<Box<dyn AgentBehavior>> {
        None
    }
}

/// A behavior whose mid-run state can be duplicated — the storage-level
/// capability behind [`crate::ActiveRun::checkpoint`].
///
/// Unlike plain [`Clone`], forking is *fallible*: the boxed extension
/// point implements it by asking the underlying behavior for
/// [`AgentBehavior::clone_box`], which defaults to declining. A `Some`
/// fork must be behaviorally indistinguishable from the original — every
/// future `on_round`/`min_wait`/`note_skipped` answer identical — or
/// checkpoint/resume determinism breaks.
pub trait ForkableBehavior: AgentBehavior + Sized {
    /// A copy of the behavior's current state, or `None` if this behavior
    /// cannot be duplicated.
    fn fork(&self) -> Option<Self>;
}

impl ForkableBehavior for Box<dyn AgentBehavior> {
    fn fork(&self) -> Option<Self> {
        (**self).clone_box()
    }
}

impl<B: AgentBehavior + Clone> ForkableBehavior for Box<B> {
    fn fork(&self) -> Option<Self> {
        Some(self.clone())
    }
}

/// Boxed behaviors delegate — this is what lets the engine's generic
/// behavior storage default to `Box<dyn AgentBehavior>` (the open
/// extension point) while enum storage dispatches without a vtable.
impl<T: AgentBehavior + ?Sized> AgentBehavior for Box<T> {
    fn on_round(&mut self, obs: &Obs) -> AgentAct {
        (**self).on_round(obs)
    }

    fn min_wait(&self) -> u64 {
        (**self).min_wait()
    }

    fn note_skipped(&mut self, rounds: u64) {
        (**self).note_skipped(rounds)
    }
}

/// Adapts a [`Procedure`] into an [`AgentBehavior`]: when the procedure
/// completes, the agent declares.
///
/// # Example
///
/// ```
/// use nochatter_sim::proc::{ProcBehavior, WaitRounds};
/// use nochatter_sim::{AgentAct, AgentBehavior, Obs};
///
/// let mut b = ProcBehavior::declaring(WaitRounds::new(1));
/// let obs = Obs::synthetic(0, 2, 1, None);
/// assert_eq!(b.on_round(&obs), AgentAct::Wait);
/// assert!(matches!(b.on_round(&obs), AgentAct::Declare(_)));
/// ```
#[derive(Clone)]
pub struct ProcBehavior<P, F> {
    inner: P,
    into_declaration: F,
    done: bool,
}

impl<P> ProcBehavior<P, fn(P::Output) -> Declaration>
where
    P: Procedure,
{
    /// The completed procedure's output is discarded and a bare declaration
    /// is made. Useful for substrate tests and examples.
    pub fn declaring(inner: P) -> Self {
        ProcBehavior {
            inner,
            into_declaration: |_| Declaration::bare(),
            done: false,
        }
    }
}

impl<P, F> ProcBehavior<P, F>
where
    P: Procedure,
    F: FnMut(P::Output) -> Declaration,
{
    /// Declares with a value derived from the procedure's output.
    pub fn mapping(inner: P, into_declaration: F) -> Self {
        ProcBehavior {
            inner,
            into_declaration,
            done: false,
        }
    }
}

impl<P, F> AgentBehavior for ProcBehavior<P, F>
where
    P: Procedure,
    F: FnMut(P::Output) -> Declaration,
{
    fn on_round(&mut self, obs: &Obs) -> AgentAct {
        if self.done {
            // The engine stops polling declared agents; be safe anyway.
            return AgentAct::Wait;
        }
        match self.inner.poll(obs) {
            Poll::Yield(Action::Wait) => AgentAct::Wait,
            Poll::Yield(Action::TakePort(p)) => AgentAct::TakePort(p),
            Poll::Complete(out) => {
                self.done = true;
                AgentAct::Declare((self.into_declaration)(out))
            }
        }
    }

    fn min_wait(&self) -> u64 {
        if self.done {
            u64::MAX
        } else {
            self.inner.min_wait()
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        if !self.done {
            self.inner.note_skipped(rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::WaitRounds;

    #[test]
    fn declares_once_then_waits() {
        let mut b = ProcBehavior::declaring(WaitRounds::new(0));
        let obs = Obs::synthetic(0, 1, 1, None);
        assert!(matches!(b.on_round(&obs), AgentAct::Declare(_)));
        assert_eq!(b.on_round(&obs), AgentAct::Wait);
    }

    #[test]
    fn mapping_carries_output() {
        struct Now;
        impl Procedure for Now {
            type Output = u32;
            fn poll(&mut self, _: &Obs) -> Poll<u32> {
                Poll::Complete(9)
            }
        }
        let mut b = ProcBehavior::mapping(Now, |n| Declaration {
            leader: Label::new(n as u64),
            size: Some(n),
        });
        let obs = Obs::synthetic(0, 1, 1, None);
        match b.on_round(&obs) {
            AgentAct::Declare(d) => {
                assert_eq!(d.leader, Label::new(9));
                assert_eq!(d.size, Some(9));
            }
            other => panic!("expected declaration, got {other:?}"),
        }
    }

    #[test]
    fn min_wait_forwards() {
        let b = ProcBehavior::declaring(WaitRounds::new(5));
        assert_eq!(b.min_wait(), 5);
    }
}
