//! The crash-fault adversary: agents that stop acting mid-run.
//!
//! The adversarial-model literature around the source paper (Di Luna et
//! al., *Gathering in Dynamic Rings*) treats agent *death* as a core
//! robustness question, the natural sibling of the dynamic-edge adversary:
//! an agent that crashes stops executing its algorithm forever, but its
//! body stays where it fell. Under the paper's weak sensing model that is
//! the interesting, honest semantics — a crashed body keeps counting
//! toward `CurCard`, so survivors cannot distinguish it from a waiting
//! agent.
//!
//! A [`FaultSpec`] resolves, *before the run starts*, into one crash round
//! per agent ([`FaultSpec::crash_rounds`]). Crash presence is therefore a
//! pure function of the round number — exactly the contract the
//! round-varying topologies obey — which is what keeps the engine's
//! quiescence fast-forward sound: a skip is simply capped at the next
//! pending crash round.

use std::error::Error;
use std::fmt;

use nochatter_graph::rng::derive_seed;
use nochatter_graph::Label;

/// Salt separating per-agent crash derivation from other consumers of a
/// fault seed.
const SALT_CRASH: u64 = 0xC4A5;

/// [`FaultSpec::SeededCrash`] stops flipping coins after this many rounds:
/// an agent that survives the first `2^16` rounds never crashes. The cap
/// bounds the setup-time resolution scan; every campaign workload this
/// repository runs gathers well inside it.
pub const SEEDED_CRASH_HORIZON: u64 = 1 << 16;

/// One scheduled crash of a [`FaultSpec::CrashAt`] list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// The agent to crash.
    pub label: Label,
    /// The round from which it no longer acts (its body stays put and
    /// keeps counting toward `CurCard`).
    pub round: u64,
}

/// The crash-fault adversary of one run.
///
/// Mirrors the design of [`nochatter_graph::dynamic::TopologySpec`]: a
/// plain-data description that the engine resolves deterministically, so a
/// faulty scenario is reproducible bit for bit and a fault-free one
/// ([`FaultSpec::None`]) costs nothing on the hot path.
#[derive(Clone, Debug, PartialEq, Default)]
#[non_exhaustive]
pub enum FaultSpec {
    /// No crashes — the paper's model, and the default.
    #[default]
    None,
    /// Crash the named agents at the named rounds (each label at most
    /// once). The deterministic axis for differential experiments: "the
    /// same cell, minus agent 5 from round 256 on".
    CrashAt(Vec<CrashPoint>),
    /// Every agent independently flips a seeded coin each round and
    /// crashes on the first success — a per-round crash probability `p`,
    /// realized exactly like the seeded edge-failure topology (an integer
    /// threshold on a hash of `(seed, label, round)`, no floating-point
    /// state). At most `max_crashes` agents actually crash: the earliest
    /// tentative crash rounds win, ties broken by agent order. Coins stop
    /// after [`SEEDED_CRASH_HORIZON`] rounds.
    SeededCrash {
        /// Per-round crash probability, clamped to `[0, 1]`.
        p: f64,
        /// The adversary's seed (part of the scenario's identity).
        seed: u64,
        /// Upper bound on how many agents crash (`0` disables the axis).
        max_crashes: u32,
    },
}

/// Why a [`FaultSpec`] is malformed for a given team.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// A [`FaultSpec::CrashAt`] entry names a label that is not in the
    /// team.
    UnknownCrashTarget {
        /// The phantom label.
        label: Label,
    },
    /// A [`FaultSpec::CrashAt`] list names the same label twice.
    DuplicateCrashTarget {
        /// The doubly-crashed label.
        label: Label,
    },
    /// A [`FaultSpec::SeededCrash`] probability is not a finite number in
    /// `[0, 1]`.
    BadProbability,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownCrashTarget { label } => {
                write!(f, "crash target {label} is not in the team")
            }
            FaultError::DuplicateCrashTarget { label } => {
                write!(f, "label {label} is listed to crash twice")
            }
            FaultError::BadProbability => {
                write!(f, "crash probability must be a finite number in [0, 1]")
            }
        }
    }
}

impl Error for FaultError {}

impl FaultSpec {
    /// True for the fault-free adversary (the paper's model).
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSpec::None)
    }

    /// The short name used in scenario keys and reports: `"none"`,
    /// `"crash<label>@<round>[+...]"` or `"sc<permille>@<seed>x<max>"`.
    pub fn short_name(&self) -> String {
        match self {
            FaultSpec::None => "none".into(),
            FaultSpec::CrashAt(points) => {
                let body = points
                    .iter()
                    .map(|c| format!("{}@{}", c.label, c.round))
                    .collect::<Vec<_>>()
                    .join("+");
                format!("crash{body}")
            }
            FaultSpec::SeededCrash {
                p,
                seed,
                max_crashes,
            } => format!(
                "sc{}@{seed}x{max_crashes}",
                (p.clamp(0.0, 1.0) * 1000.0).round() as u64
            ),
        }
    }

    /// Whether the spec can run over a team with these labels (a
    /// [`FaultSpec::CrashAt`] must only name team members). Matrix
    /// expansion uses this to skip incompatible cells, mirroring
    /// `TopologySpec::compatible_with`.
    pub fn compatible_with(&self, labels: &[Label]) -> bool {
        match self {
            FaultSpec::CrashAt(points) => points.iter().all(|c| labels.contains(&c.label)),
            _ => true,
        }
    }

    /// Resolves the spec into one crash round per agent of `labels` (in
    /// the given agent order; `u64::MAX` = never crashes). An agent does
    /// not act in its crash round or any later round.
    ///
    /// This is the entire adversary: a pure function of the spec and the
    /// team, computed once before the run, which is what keeps crash
    /// presence a pure function of the round number (and the engine's
    /// quiescence fast-forward sound). Tests replay traces against it.
    ///
    /// # Errors
    ///
    /// See [`FaultError`].
    pub fn crash_rounds(&self, labels: &[Label]) -> Result<Vec<u64>, FaultError> {
        match self {
            FaultSpec::None => Ok(vec![u64::MAX; labels.len()]),
            FaultSpec::CrashAt(points) => {
                let mut rounds = vec![u64::MAX; labels.len()];
                for c in points {
                    let i = labels
                        .iter()
                        .position(|&l| l == c.label)
                        .ok_or(FaultError::UnknownCrashTarget { label: c.label })?;
                    if rounds[i] != u64::MAX {
                        return Err(FaultError::DuplicateCrashTarget { label: c.label });
                    }
                    rounds[i] = c.round;
                }
                Ok(rounds)
            }
            FaultSpec::SeededCrash {
                p,
                seed,
                max_crashes,
            } => {
                if !p.is_finite() || *p < 0.0 || *p > 1.0 {
                    return Err(FaultError::BadProbability);
                }
                // The same integer-threshold trick the seeded edge-failure
                // topology uses: the per-round coin for (agent, round) is
                // `hash(seed, label, round) < p * 2^64`.
                let threshold = (*p * u64::MAX as f64) as u64;
                let mut tentative: Vec<(u64, usize)> = Vec::new();
                for (i, label) in labels.iter().enumerate() {
                    if let Some(round) = (0..SEEDED_CRASH_HORIZON).find(|&round| {
                        derive_seed(*seed, &[SALT_CRASH, label.value(), round]) < threshold
                    }) {
                        tentative.push((round, i));
                    }
                }
                // The earliest `max_crashes` tentative crashes win; ties
                // break by agent order (the sort key's second component).
                tentative.sort_unstable();
                let mut rounds = vec![u64::MAX; labels.len()];
                for &(round, i) in tentative.iter().take(*max_crashes as usize) {
                    rounds[i] = round;
                }
                Ok(rounds)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn team(vs: &[u64]) -> Vec<Label> {
        vs.iter().map(|&v| label(v)).collect()
    }

    #[test]
    fn none_never_crashes() {
        assert!(FaultSpec::None.is_none());
        assert_eq!(
            FaultSpec::None.crash_rounds(&team(&[2, 3])),
            Ok(vec![u64::MAX; 2])
        );
    }

    #[test]
    fn crash_at_resolves_by_label() {
        let spec = FaultSpec::CrashAt(vec![CrashPoint {
            label: label(5),
            round: 64,
        }]);
        assert_eq!(
            spec.crash_rounds(&team(&[3, 5, 9])),
            Ok(vec![u64::MAX, 64, u64::MAX])
        );
        assert!(spec.compatible_with(&team(&[3, 5, 9])));
        assert!(!spec.compatible_with(&team(&[2, 3])));
    }

    #[test]
    fn crash_at_rejects_phantoms_and_duplicates() {
        let phantom = FaultSpec::CrashAt(vec![CrashPoint {
            label: label(7),
            round: 1,
        }]);
        assert_eq!(
            phantom.crash_rounds(&team(&[2, 3])),
            Err(FaultError::UnknownCrashTarget { label: label(7) })
        );
        let dup = FaultSpec::CrashAt(vec![
            CrashPoint {
                label: label(2),
                round: 1,
            },
            CrashPoint {
                label: label(2),
                round: 9,
            },
        ]);
        assert_eq!(
            dup.crash_rounds(&team(&[2, 3])),
            Err(FaultError::DuplicateCrashTarget { label: label(2) })
        );
    }

    #[test]
    fn seeded_crash_is_deterministic_and_capped() {
        let spec = FaultSpec::SeededCrash {
            p: 0.2,
            seed: 9,
            max_crashes: 1,
        };
        let a = spec.crash_rounds(&team(&[2, 3, 9])).unwrap();
        let b = spec.crash_rounds(&team(&[2, 3, 9])).unwrap();
        assert_eq!(a, b, "resolution must be deterministic");
        let crashed = a.iter().filter(|&&r| r != u64::MAX).count();
        assert_eq!(crashed, 1, "max_crashes caps the adversary");
    }

    #[test]
    fn seeded_crash_p_one_kills_at_round_zero() {
        let spec = FaultSpec::SeededCrash {
            p: 1.0,
            seed: 1,
            max_crashes: 8,
        };
        assert_eq!(spec.crash_rounds(&team(&[2, 3])), Ok(vec![0, 0]));
    }

    #[test]
    fn seeded_crash_p_zero_spares_everyone() {
        let spec = FaultSpec::SeededCrash {
            p: 0.0,
            seed: 1,
            max_crashes: 8,
        };
        assert_eq!(
            spec.crash_rounds(&team(&[2, 3])),
            Ok(vec![u64::MAX, u64::MAX])
        );
    }

    #[test]
    fn bad_probability_is_rejected() {
        for p in [f64::NAN, -0.1, 1.5] {
            let spec = FaultSpec::SeededCrash {
                p,
                seed: 1,
                max_crashes: 1,
            };
            assert_eq!(
                spec.crash_rounds(&team(&[2, 3])),
                Err(FaultError::BadProbability)
            );
        }
    }

    #[test]
    fn short_names_are_stable() {
        assert_eq!(FaultSpec::None.short_name(), "none");
        let spec = FaultSpec::CrashAt(vec![
            CrashPoint {
                label: label(3),
                round: 64,
            },
            CrashPoint {
                label: label(5),
                round: 256,
            },
        ]);
        assert_eq!(spec.short_name(), "crash3@64+5@256");
        assert_eq!(
            FaultSpec::SeededCrash {
                p: 0.05,
                seed: 9,
                max_crashes: 2
            }
            .short_name(),
            "sc50@9x2"
        );
    }
}
