//! Batched multi-run execution: many independent runs stepped through one
//! engine loop.
//!
//! Campaign workloads are dominated by *families* of short runs that share
//! a shape: the silent/talking twins, the static/dynamic twins and the
//! fault twins of one instance all run the same team over the same graph
//! with the same seed. Executing them one after another repays the
//! per-run setup every time and walks the per-node scratch cold for every
//! run. [`BatchEngine`] instead collects K configured [`Engine`]s and
//! steps them through **one** loop: each round of the global clock, every
//! run due at that round executes exactly one solo iteration against the
//! shared [`EngineScratch`], so the struct-of-arrays agent columns and the
//! per-node occupancy buffers stay hot across the whole batch, and callers
//! amortize whatever per-batch setup (parameter corpora, topology specs)
//! the runs share.
//!
//! **Determinism and equivalence.** A batched run's result is bitwise
//! identical to running the same engine solo via
//! [`Engine::run_with_scratch`] — not by careful reimplementation but by
//! construction: both paths drive the same internal per-run state machine
//! (`ActiveRun`), whose `step` executes one iteration of the historical
//! round loop, including that run's own quiescence fast-forward. The
//! batch's global clock is simply `min` over the runs' next due rounds, so
//! a run that fast-forwards past its siblings is left alone until the
//! clock catches up; runs due in the same global round step in push
//! order. The shared scratch is restored to its all-zero invariant at the
//! end of every step, so interleaving is invisible to the runs. The
//! sparse round loop composes for free: each `ActiveRun` owns its own
//! worklists, park state, incremental occupancy and event cursors, so
//! runs in one batch park and wake their agents independently while
//! sharing only the semantic-state-free scratch buffers.
//!
//! Failure is per-run: a run whose behavior commits a protocol violation
//! resolves to its own `Err` and the rest of the batch keeps going.

use crate::behavior::AgentBehavior;
use crate::engine::{ActiveRun, Engine, EngineScratch};
use crate::error::SimError;
use crate::outcome::RunOutcome;
use nochatter_graph::dynamic::{Static, TopologyView};

/// A batch of configured engines executed through one interleaved round
/// loop. See the module docs at the top of this file for the execution
/// model and the bitwise-equivalence guarantee.
///
/// Runs may differ in graph, team size, schedule, sensing, faults,
/// topology view state and round limit; they only share the scratch and
/// the loop. Build each run with the usual [`Engine`] API,
/// [`push`](BatchEngine::push) it with its round limit, then
/// [`run`](BatchEngine::run) the batch.
///
/// # Example
///
/// ```
/// use nochatter_graph::{generators, Label, NodeId};
/// use nochatter_sim::proc::{ProcBehavior, WaitRounds};
/// use nochatter_sim::{BatchEngine, Engine, EngineScratch, WakeSchedule};
///
/// let g = generators::ring(4);
/// let mut batch = BatchEngine::new();
/// for wait in [3u64, 9] {
///     let mut engine = Engine::new(&g);
///     for (label, node) in [(1u64, 0u32), (2, 2)] {
///         engine.add_agent(
///             Label::new(label).unwrap(),
///             NodeId::new(node),
///             Box::new(ProcBehavior::declaring(WaitRounds::new(wait))),
///         );
///     }
///     engine.set_wake_schedule(WakeSchedule::Simultaneous);
///     batch.push(engine, 1_000);
/// }
/// let mut scratch = EngineScratch::new();
/// let outcomes = batch.run(&mut scratch);
/// assert!(outcomes.iter().all(|o| o.as_ref().unwrap().all_declared()));
/// ```
pub struct BatchEngine<'g, V: TopologyView = Static, B: AgentBehavior = Box<dyn AgentBehavior>> {
    runs: Vec<(Engine<'g, V, B>, u64)>,
}

impl<'g, V: TopologyView, B: AgentBehavior> Default for BatchEngine<'g, V, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'g, V: TopologyView, B: AgentBehavior> BatchEngine<'g, V, B> {
    /// An empty batch.
    pub fn new() -> Self {
        BatchEngine { runs: Vec::new() }
    }

    /// Adds a configured engine to the batch with its round limit. Results
    /// come back in push order.
    pub fn push(&mut self, engine: Engine<'g, V, B>, max_rounds: u64) {
        self.runs.push((engine, max_rounds));
    }

    /// How many runs the batch holds.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs have been pushed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Executes every run of the batch through one interleaved loop,
    /// returning each run's result in push order. Setup errors (bad wake
    /// schedule, duplicate labels, …) and protocol violations resolve to
    /// that run's `Err`; the other runs are unaffected.
    pub fn run(self, scratch: &mut EngineScratch) -> Vec<Result<RunOutcome, SimError>> {
        let count = self.runs.len();
        let mut results: Vec<Option<Result<RunOutcome, SimError>>> =
            (0..count).map(|_| None).collect();
        // Validate and prepare every run up front; `prepare` only grows the
        // shared buffers, so they end up sized for the largest run.
        let mut live: Vec<(usize, ActiveRun<'g, V, B>)> = Vec::with_capacity(count);
        for (index, (engine, max_rounds)) in self.runs.into_iter().enumerate() {
            match ActiveRun::begin(engine, max_rounds, scratch) {
                Ok(run) => live.push((index, run)),
                Err(e) => results[index] = Some(Err(e)),
            }
        }
        // The global clock: always the smallest next due round over the
        // live runs. Quiescent runs fast-forward themselves ahead and sit
        // out the intermediate ticks.
        while !live.is_empty() {
            let clock = live
                .iter()
                .map(|(_, run)| run.next_round())
                .min()
                .expect("live is non-empty");
            let mut i = 0;
            while i < live.len() {
                if live[i].1.next_round() == clock {
                    if let Some(result) = live[i].1.step(scratch) {
                        let (index, _) = live.swap_remove(i);
                        results[index] = Some(result);
                        continue; // the swapped-in run is checked at `i`
                    }
                }
                i += 1;
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every run terminates"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Declaration;
    use crate::fault::{CrashPoint, FaultSpec};
    use crate::obs::{Action, Obs, Poll};
    use crate::proc::{ProcBehavior, Procedure, WaitRounds};
    use crate::schedule::WakeSchedule;
    use crate::Sensing;
    use nochatter_graph::dynamic::{DynamicRing, TopologySpec};
    use nochatter_graph::{generators, Graph, Label, NodeId, Port};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    /// Walks clockwise `steps` times, then declares.
    struct Walk {
        steps: u32,
    }
    impl Procedure for Walk {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> Poll<()> {
            if self.steps == 0 {
                Poll::Complete(())
            } else {
                self.steps -= 1;
                Poll::Yield(Action::TakePort(Port::new(1)))
            }
        }
    }

    /// A diverse little fleet of engines over `graph`: different waits,
    /// walks, schedules, sensing modes, faults and trace settings.
    fn fleet(graph: &Graph) -> Vec<(Engine<'_>, u64)> {
        let mut engines = Vec::new();
        for (i, wait) in [0u64, 7, 1_000_000].into_iter().enumerate() {
            let mut e = Engine::new(graph);
            e.add_agent(
                label(2),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(WaitRounds::new(wait))),
            );
            e.add_agent(
                label(3),
                NodeId::new(2),
                Box::new(ProcBehavior::declaring(Walk { steps: 3 })),
            );
            if i == 1 {
                e.set_sensing(Sensing::Traditional);
                e.set_faults(FaultSpec::CrashAt(vec![CrashPoint {
                    label: label(3),
                    round: 1,
                }]));
            }
            if i == 2 {
                e.set_wake_schedule(WakeSchedule::Explicit(vec![0, 500]));
                e.record_trace(64);
            }
            engines.push((e, 2_000_000u64));
        }
        engines
    }

    #[test]
    fn batch_matches_solo_bitwise_including_traces_and_counters() {
        let g = generators::ring(6);
        let solo: Vec<String> = fleet(&g)
            .into_iter()
            .map(|(e, limit)| format!("{:?}", e.run(limit)))
            .collect();
        let mut batch = BatchEngine::new();
        for (e, limit) in fleet(&g) {
            batch.push(e, limit);
        }
        let mut scratch = EngineScratch::new();
        let batched: Vec<String> = batch
            .run(&mut scratch)
            .into_iter()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(solo, batched);
    }

    #[test]
    fn runs_over_different_graphs_and_views_interleave_safely() {
        let small = generators::ring(4);
        let big = generators::ring(9);
        let spec = TopologySpec::Ring(DynamicRing { seed: 7 });
        let build = || {
            let mut a = Engine::with_topology(&big, &spec);
            a.add_agent(
                label(2),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(Walk { steps: 6 })),
            );
            a.add_agent(
                label(5),
                NodeId::new(4),
                Box::new(ProcBehavior::declaring(Walk { steps: 6 })),
            );
            let mut b = Engine::with_topology(&small, &TopologySpec::Static);
            b.add_agent(
                label(2),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(WaitRounds::new(40))),
            );
            b.add_agent(
                label(3),
                NodeId::new(2),
                Box::new(ProcBehavior::declaring(WaitRounds::new(2))),
            );
            (a, b)
        };
        let (sa, sb) = build();
        let solo = (format!("{:?}", sa.run(500)), format!("{:?}", sb.run(500)));
        let (ba, bb) = build();
        let mut batch = BatchEngine::new();
        batch.push(ba, 500);
        batch.push(bb, 500);
        let mut scratch = EngineScratch::new();
        let got = batch.run(&mut scratch);
        assert_eq!(format!("{:?}", got[0]), solo.0);
        assert_eq!(format!("{:?}", got[1]), solo.1);
    }

    #[test]
    fn per_run_failures_leave_siblings_intact() {
        struct BadPort;
        impl Procedure for BadPort {
            type Output = ();
            fn poll(&mut self, _obs: &Obs) -> Poll<()> {
                Poll::Yield(Action::TakePort(Port::new(99)))
            }
        }
        let g = generators::ring(5);
        let mut batch = BatchEngine::new();
        // Run 0: setup error (duplicate labels).
        let mut dup = Engine::new(&g);
        for node in [0u32, 2] {
            dup.add_agent(
                label(7),
                NodeId::new(node),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
        }
        batch.push(dup, 100);
        // Run 1: protocol violation in round 0.
        let mut bad = Engine::new(&g);
        bad.add_agent(
            label(2),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(BadPort)),
        );
        batch.push(bad, 100);
        // Run 2: healthy.
        let mut ok = Engine::new(&g);
        ok.add_agent(
            label(2),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(3))),
        );
        ok.add_agent(
            label(3),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(WaitRounds::new(3))),
        );
        batch.push(ok, 100);
        let mut scratch = EngineScratch::new();
        let results = batch.run(&mut scratch);
        assert!(matches!(results[0], Err(SimError::DuplicateLabel { .. })));
        assert!(matches!(results[1], Err(SimError::InvalidPort { .. })));
        let healthy = results[2].as_ref().unwrap();
        assert!(healthy.all_declared());
        assert_eq!(
            format!("{:?}", results[2]),
            {
                let mut solo = Engine::new(&g);
                solo.add_agent(
                    label(2),
                    NodeId::new(0),
                    Box::new(ProcBehavior::declaring(WaitRounds::new(3))),
                );
                solo.add_agent(
                    label(3),
                    NodeId::new(2),
                    Box::new(ProcBehavior::declaring(WaitRounds::new(3))),
                );
                format!("{:?}", solo.run(100))
            },
            "a failing sibling must not perturb a healthy run"
        );
    }

    #[test]
    fn round_limited_and_declaring_runs_mix() {
        let g = generators::ring(4);
        let mut batch = BatchEngine::new();
        for (wait, limit) in [(5u64, 3u64), (5, 100)] {
            let mut e = Engine::new(&g);
            e.add_agent(
                label(2),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(WaitRounds::new(wait))),
            );
            e.add_agent(
                label(3),
                NodeId::new(2),
                Box::new(ProcBehavior::declaring(WaitRounds::new(wait))),
            );
            batch.push(e, limit);
        }
        let mut scratch = EngineScratch::new();
        let results = batch.run(&mut scratch);
        assert_eq!(
            results[0].as_ref().unwrap().status,
            crate::outcome::RunStatus::RoundLimit
        );
        assert!(results[1].as_ref().unwrap().all_declared());
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch: BatchEngine<'_> = BatchEngine::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        let mut scratch = EngineScratch::new();
        assert!(batch.run(&mut scratch).is_empty());
    }

    #[test]
    fn traditional_sensing_peers_are_isolated_between_interleaved_runs() {
        // Two traditional-sensing runs over the same graph, different
        // teams: an agent declaring the peer set it sees must never see a
        // sibling run's labels.
        struct DeclarePeerCount;
        impl crate::behavior::AgentBehavior for DeclarePeerCount {
            fn on_round(&mut self, obs: &Obs) -> crate::behavior::AgentAct {
                let peers = obs.peer_labels.as_ref().expect("traditional mode");
                crate::behavior::AgentAct::Declare(Declaration {
                    leader: None,
                    size: Some(peers.len() as u32),
                })
            }
        }
        let g = generators::complete(3);
        let mut batch: BatchEngine<'_, Static> = BatchEngine::new();
        for team in [[2u64, 3], [40, 50]] {
            let mut e = Engine::new(&g);
            for (i, l) in team.into_iter().enumerate() {
                e.add_agent(label(l), NodeId::new(i as u32), Box::new(DeclarePeerCount));
            }
            e.set_sensing(Sensing::Traditional);
            batch.push(e, 10);
        }
        let mut scratch = EngineScratch::new();
        for result in batch.run(&mut scratch) {
            let outcome = result.unwrap();
            for (_, rec) in &outcome.declarations {
                // Everyone is alone on its node: exactly itself in view.
                assert_eq!(rec.unwrap().declaration.size, Some(1));
            }
        }
    }
}
