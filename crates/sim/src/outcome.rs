//! Run outcomes and gathering validation.

use std::error::Error;
use std::fmt;

use nochatter_graph::{Label, NodeId};

use crate::behavior::Declaration;
use crate::trace::Trace;

/// An agent's terminal declaration, with where and when it was made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeclarationRecord {
    /// The round of the declaration.
    pub round: u64,
    /// The node at which the agent declared.
    pub node: NodeId,
    /// The declared content.
    pub declaration: Declaration,
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every agent declared.
    AllDeclared,
    /// Every agent reached a terminal phase, but at least one crashed
    /// instead of declaring (crash-fault runs only) — nothing could change
    /// anymore, so the engine halted early.
    Halted,
    /// The round limit was hit first.
    RoundLimit,
}

/// Everything measured about one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// How the run ended.
    pub status: RunStatus,
    /// The round of the last declaration (or the round limit). Time is
    /// measured from the wake-up of the earliest agent, as in the paper.
    pub rounds: u64,
    /// Per agent (in insertion order): its label and its declaration if any.
    pub declarations: Vec<(Label, Option<DeclarationRecord>)>,
    /// Agents crashed by the fault adversary, in insertion order (empty
    /// under `FaultSpec::None`). A crashed agent never declares, but its
    /// body keeps counting toward `CurCard` for the rest of the run.
    pub crashed_agents: Vec<Label>,
    /// Total edge traversals performed by all agents.
    pub total_moves: u64,
    /// Move attempts that hit an edge absent in their round (round-varying
    /// topologies only; always 0 on a static topology). Blocked attempts
    /// are not counted in [`RunOutcome::total_moves`].
    pub blocked_moves: u64,
    /// Rounds actually executed by the engine loop (excluding fast-forwarded
    /// ones); a cost metric for the simulator itself.
    pub engine_iterations: u64,
    /// Rounds skipped by the quiescence fast-forward.
    pub skipped_rounds: u64,
    /// Behavior polls actually executed (`on_round` calls) — the honest
    /// cost denominator of the sparse round loop. This is the *only*
    /// field on which the sparse and dense (`NOCHATTER_DENSE_LOOP=1`)
    /// loops may differ: the sparse loop skips polls whose answer is
    /// promised by a wait horizon, everything else is bitwise identical.
    /// Excluded from the deterministic lab reports for exactly that
    /// reason; surfaced as a campaign-level trajectory aggregate instead.
    pub polled_agent_rounds: u64,
    /// The largest number of co-located agents ever observed.
    pub max_colocation: u32,
    /// The recorded trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

impl RunOutcome {
    /// True if every agent declared.
    pub fn all_declared(&self) -> bool {
        self.status == RunStatus::AllDeclared
    }

    /// Validates the paper's gathering requirements: every agent declared,
    /// all in the same round, at the same node, with consistent leader and
    /// size claims, and (if elected) a leader belonging to the team.
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement.
    pub fn gathering(&self) -> Result<GatheringReport, ValidationError> {
        let mut records = Vec::with_capacity(self.declarations.len());
        for (label, rec) in &self.declarations {
            match rec {
                Some(r) => records.push((*label, *r)),
                None => return Err(ValidationError::NotAllDeclared { agent: *label }),
            }
        }
        self.validate_records(&records)
    }

    /// [`RunOutcome::gathering`] restricted to the agents that did *not*
    /// crash: every surviving agent must have declared, consistently. The
    /// crash-fault experiments' success criterion — a crashed agent can
    /// never declare, so full validation is unsatisfiable the moment the
    /// adversary acts, but the survivors' agreement is still the paper's
    /// gathering property. The elected leader may be any team member,
    /// crashed or not (a label learned before the crash is still a valid
    /// election). With no crashes this is exactly [`RunOutcome::gathering`].
    ///
    /// # Errors
    ///
    /// [`ValidationError::NoSurvivors`] if every agent crashed; otherwise
    /// the first violated requirement among the survivors.
    pub fn gathering_surviving(&self) -> Result<GatheringReport, ValidationError> {
        let mut records = Vec::with_capacity(self.declarations.len());
        for (label, rec) in &self.declarations {
            if self.crashed_agents.contains(label) {
                continue;
            }
            match rec {
                Some(r) => records.push((*label, *r)),
                None => return Err(ValidationError::NotAllDeclared { agent: *label }),
            }
        }
        if records.is_empty() {
            return Err(ValidationError::NoSurvivors);
        }
        self.validate_records(&records)
    }

    /// The shared consistency check behind both validators: same round,
    /// same node, same leader and size claims, leader in the team. The
    /// team for the leader check is the full declaration list (crashed
    /// members included), not just `records`.
    fn validate_records(
        &self,
        records: &[(Label, DeclarationRecord)],
    ) -> Result<GatheringReport, ValidationError> {
        let (first_label, first) = records[0];
        for &(label, r) in &records[1..] {
            if r.round != first.round {
                return Err(ValidationError::DifferentRounds {
                    a: first_label,
                    b: label,
                });
            }
            if r.node != first.node {
                return Err(ValidationError::DifferentNodes {
                    a: first_label,
                    b: label,
                });
            }
            if r.declaration.leader != first.declaration.leader {
                return Err(ValidationError::DifferentLeaders {
                    a: first_label,
                    b: label,
                });
            }
            if r.declaration.size != first.declaration.size {
                return Err(ValidationError::DifferentSizes {
                    a: first_label,
                    b: label,
                });
            }
        }
        if let Some(leader) = first.declaration.leader {
            if !self.declarations.iter().any(|&(l, _)| l == leader) {
                return Err(ValidationError::LeaderNotInTeam { leader });
            }
        }
        Ok(GatheringReport {
            round: first.round,
            node: first.node,
            leader: first.declaration.leader,
            size: first.declaration.size,
        })
    }
}

/// A validated successful gathering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatheringReport {
    /// The common declaration round.
    pub round: u64,
    /// The common gathering node.
    pub node: NodeId,
    /// The commonly elected leader, if any.
    pub leader: Option<Label>,
    /// The commonly learned size, if any.
    pub size: Option<u32>,
}

/// A violated gathering requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// Some agent never declared.
    NotAllDeclared {
        /// The silent agent.
        agent: Label,
    },
    /// Two agents declared in different rounds.
    DifferentRounds {
        /// First agent.
        a: Label,
        /// Second agent.
        b: Label,
    },
    /// Two agents declared at different nodes.
    DifferentNodes {
        /// First agent.
        a: Label,
        /// Second agent.
        b: Label,
    },
    /// Two agents elected different leaders.
    DifferentLeaders {
        /// First agent.
        a: Label,
        /// Second agent.
        b: Label,
    },
    /// Two agents learned different sizes.
    DifferentSizes {
        /// First agent.
        a: Label,
        /// Second agent.
        b: Label,
    },
    /// The elected leader is not a team member.
    LeaderNotInTeam {
        /// The phantom leader.
        leader: Label,
    },
    /// Every agent crashed — there is no surviving gathering to validate
    /// (only [`RunOutcome::gathering_surviving`] reports this).
    NoSurvivors,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NotAllDeclared { agent } => {
                write!(f, "agent {agent} never declared")
            }
            ValidationError::DifferentRounds { a, b } => {
                write!(f, "agents {a} and {b} declared in different rounds")
            }
            ValidationError::DifferentNodes { a, b } => {
                write!(f, "agents {a} and {b} declared at different nodes")
            }
            ValidationError::DifferentLeaders { a, b } => {
                write!(f, "agents {a} and {b} elected different leaders")
            }
            ValidationError::DifferentSizes { a, b } => {
                write!(f, "agents {a} and {b} learned different sizes")
            }
            ValidationError::LeaderNotInTeam { leader } => {
                write!(f, "elected leader {leader} is not a team member")
            }
            ValidationError::NoSurvivors => {
                write!(f, "every agent crashed; no survivors to validate")
            }
        }
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn record(round: u64, node: u32, leader: Option<u64>) -> DeclarationRecord {
        DeclarationRecord {
            round,
            node: NodeId::new(node),
            declaration: Declaration {
                leader: leader.map(|l| Label::new(l).unwrap()),
                size: None,
            },
        }
    }

    fn outcome(declarations: Vec<(Label, Option<DeclarationRecord>)>) -> RunOutcome {
        RunOutcome {
            status: if declarations.iter().all(|(_, d)| d.is_some()) {
                RunStatus::AllDeclared
            } else {
                RunStatus::RoundLimit
            },
            rounds: 10,
            declarations,
            crashed_agents: Vec::new(),
            total_moves: 0,
            blocked_moves: 0,
            engine_iterations: 0,
            skipped_rounds: 0,
            polled_agent_rounds: 0,
            max_colocation: 2,
            trace: None,
        }
    }

    #[test]
    fn accepts_consistent_gathering() {
        let o = outcome(vec![
            (label(1), Some(record(9, 2, Some(1)))),
            (label(4), Some(record(9, 2, Some(1)))),
        ]);
        let report = o.gathering().unwrap();
        assert_eq!(report.round, 9);
        assert_eq!(report.node, NodeId::new(2));
        assert_eq!(report.leader, Some(label(1)));
    }

    #[test]
    fn rejects_missing_declaration() {
        let o = outcome(vec![(label(1), Some(record(9, 2, None))), (label(4), None)]);
        assert!(matches!(
            o.gathering(),
            Err(ValidationError::NotAllDeclared { .. })
        ));
    }

    #[test]
    fn rejects_different_rounds_nodes_leaders() {
        let o = outcome(vec![
            (label(1), Some(record(9, 2, Some(1)))),
            (label(4), Some(record(8, 2, Some(1)))),
        ]);
        assert!(matches!(
            o.gathering(),
            Err(ValidationError::DifferentRounds { .. })
        ));
        let o = outcome(vec![
            (label(1), Some(record(9, 2, Some(1)))),
            (label(4), Some(record(9, 3, Some(1)))),
        ]);
        assert!(matches!(
            o.gathering(),
            Err(ValidationError::DifferentNodes { .. })
        ));
        let o = outcome(vec![
            (label(1), Some(record(9, 2, Some(1)))),
            (label(4), Some(record(9, 2, Some(4)))),
        ]);
        assert!(matches!(
            o.gathering(),
            Err(ValidationError::DifferentLeaders { .. })
        ));
    }

    #[test]
    fn surviving_validation_skips_crashed_agents() {
        // Agent 4 crashed and never declared: full validation fails, the
        // surviving validation accepts the singleton gathering — and a
        // leader that happens to be the crashed agent is still in-team.
        let mut o = outcome(vec![
            (label(1), Some(record(9, 2, Some(4)))),
            (label(4), None),
        ]);
        o.crashed_agents = vec![label(4)];
        assert!(matches!(
            o.gathering(),
            Err(ValidationError::NotAllDeclared { .. })
        ));
        let report = o.gathering_surviving().unwrap();
        assert_eq!(report.leader, Some(label(4)));
        // A surviving agent that never declared still fails.
        let mut o = outcome(vec![
            (label(1), Some(record(9, 2, None))),
            (label(4), None),
            (label(6), None),
        ]);
        o.crashed_agents = vec![label(4)];
        assert!(matches!(
            o.gathering_surviving(),
            Err(ValidationError::NotAllDeclared { agent }) if agent == label(6)
        ));
        // Everyone crashed: no survivors.
        let mut o = outcome(vec![(label(1), None), (label(4), None)]);
        o.crashed_agents = vec![label(1), label(4)];
        assert!(matches!(
            o.gathering_surviving(),
            Err(ValidationError::NoSurvivors)
        ));
    }

    #[test]
    fn rejects_phantom_leader() {
        let o = outcome(vec![
            (label(1), Some(record(9, 2, Some(7)))),
            (label(4), Some(record(9, 2, Some(7)))),
        ]);
        assert!(matches!(
            o.gathering(),
            Err(ValidationError::LeaderNotInTeam { .. })
        ));
    }
}
