//! Observations and actions: everything an agent can see and do in a round.

use nochatter_graph::{Label, Port};

/// What an agent observes at the start of a round, before choosing its move
/// instruction.
///
/// This is exactly the information the paper's weak model grants (§1.2):
/// the degree of the current node, the port of the most recent entry, and
/// the current number of co-located agents. `peer_labels` is populated only
/// under [`crate::Sensing::Traditional`] and exists for the talking-model
/// baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obs {
    /// The current round (global, from the first wake-up).
    pub round: u64,
    /// Degree of the node the agent occupies.
    pub degree: u32,
    /// `CurCard`: the number of agents (including this one) at the node.
    pub cur_card: u32,
    /// The port by which the agent most recently entered the current node;
    /// `None` if it has not moved since waking. Persists across waits.
    pub entry_port: Option<Port>,
    /// True exactly on the first observation after the agent wakes.
    pub just_woken: bool,
    /// True exactly on the first observation after a move attempt hit an
    /// edge absent in that round (round-varying topologies only — see
    /// [`nochatter_graph::dynamic`]). The agent stayed put and its entry
    /// port is unchanged. Always false on a static topology.
    pub blocked: bool,
    /// Labels of all co-located agents (including self), sorted; only under
    /// traditional sensing. Always `None` in the paper's weak model.
    pub peer_labels: Option<Vec<Label>>,
}

impl Obs {
    /// A synthetic observation, for driving procedures in unit tests.
    pub fn synthetic(round: u64, degree: u32, cur_card: u32, entry_port: Option<Port>) -> Self {
        Obs {
            round,
            degree,
            cur_card,
            entry_port,
            just_woken: round == 0,
            blocked: false,
            peer_labels: None,
        }
    }
}

/// A move instruction: the one thing an agent does each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Stay at the current node this round.
    Wait,
    /// Traverse the edge with this local port number.
    TakePort(Port),
}

/// The result of polling a [`crate::Procedure`] for one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Poll<T> {
    /// The procedure's move instruction for this round.
    Yield(Action),
    /// The procedure finished *without consuming the round*; the caller must
    /// obtain this round's action from whatever runs next.
    Complete(T),
}

impl<T> Poll<T> {
    /// Maps the completion value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Poll<U> {
        match self {
            Poll::Yield(a) => Poll::Yield(a),
            Poll::Complete(t) => Poll::Complete(f(t)),
        }
    }

    /// Returns the action if yielded.
    pub fn action(&self) -> Option<Action> {
        match self {
            Poll::Yield(a) => Some(*a),
            Poll::Complete(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_obs_round_zero_is_just_woken() {
        let o = Obs::synthetic(0, 2, 1, None);
        assert!(o.just_woken);
        let o = Obs::synthetic(5, 2, 1, Some(Port::new(1)));
        assert!(!o.just_woken);
        assert_eq!(o.entry_port, Some(Port::new(1)));
    }

    #[test]
    fn poll_map_preserves_yield() {
        let p: Poll<u32> = Poll::Yield(Action::Wait);
        assert_eq!(p.map(|x| x + 1), Poll::Yield(Action::Wait));
        let p: Poll<u32> = Poll::Complete(4);
        assert_eq!(p.map(|x| x + 1), Poll::Complete(5));
    }

    #[test]
    fn poll_action_accessor() {
        let p: Poll<()> = Poll::Yield(Action::TakePort(Port::new(3)));
        assert_eq!(p.action(), Some(Action::TakePort(Port::new(3))));
        let p: Poll<u8> = Poll::Complete(1);
        assert_eq!(p.action(), None);
    }
}
