//! Negative-path coverage for spec validation: malformed fault specs,
//! malformed wake schedules and incompatible topologies must surface the
//! *exact* error variant — not merely "some error" — both from the specs'
//! own resolution methods and through the engine's setup mapping
//! (`SimError::BadFaultSpec` / `SimError::BadWakeSchedule`). The adversary
//! search builds candidates out of exactly these specs, so a vague or
//! drifting rejection would silently corrupt its objective scores.

use nochatter_graph::dynamic::{is_cycle, DynamicRing, ScriptedRing};
use nochatter_graph::{generators, Label, NodeId};
use nochatter_sim::proc::{ProcBehavior, WaitRounds};
use nochatter_sim::{
    CrashPoint, Engine, FaultError, FaultSpec, ScheduleError, SimError, TopologySpec, WakeSchedule,
};

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

fn team(vs: &[u64]) -> Vec<Label> {
    vs.iter().map(|&v| label(v)).collect()
}

/// A two-agent ring engine ready to run (the standard setup of the fault
/// suite), so each test perturbs exactly one spec.
fn ring_engine(g: &nochatter_graph::Graph) -> Engine<'_> {
    let mut engine = Engine::new(g);
    for (l, pos) in [(2u64, 0u32), (3, 2)] {
        engine.add_agent(
            label(l),
            NodeId::new(pos),
            Box::new(ProcBehavior::declaring(WaitRounds::new(4))),
        );
    }
    engine
}

#[test]
fn phantom_crash_target_maps_to_the_exact_fault_error() {
    let spec = FaultSpec::CrashAt(vec![CrashPoint {
        label: label(9),
        round: 1,
    }]);
    assert_eq!(
        spec.crash_rounds(&team(&[2, 3])),
        Err(FaultError::UnknownCrashTarget { label: label(9) })
    );
    let g = generators::ring(4);
    let mut engine = ring_engine(&g);
    engine.set_faults(spec);
    assert_eq!(
        engine.run(10).unwrap_err(),
        SimError::BadFaultSpec {
            reason: FaultError::UnknownCrashTarget { label: label(9) },
        }
    );
}

#[test]
fn duplicate_crash_target_maps_to_the_exact_fault_error() {
    let spec = FaultSpec::CrashAt(vec![
        CrashPoint {
            label: label(3),
            round: 1,
        },
        CrashPoint {
            label: label(3),
            round: 8,
        },
    ]);
    assert_eq!(
        spec.crash_rounds(&team(&[2, 3])),
        Err(FaultError::DuplicateCrashTarget { label: label(3) })
    );
    let g = generators::ring(4);
    let mut engine = ring_engine(&g);
    engine.set_faults(spec);
    assert_eq!(
        engine.run(10).unwrap_err(),
        SimError::BadFaultSpec {
            reason: FaultError::DuplicateCrashTarget { label: label(3) },
        }
    );
}

#[test]
fn phantom_target_is_reported_before_a_later_duplicate() {
    // A list that is wrong twice over: the resolution scans in list order,
    // so the phantom (first offending entry) must win — pinning the error
    // priority keeps `assert_eq!` tests on compound lists deterministic.
    let spec = FaultSpec::CrashAt(vec![
        CrashPoint {
            label: label(9),
            round: 1,
        },
        CrashPoint {
            label: label(2),
            round: 2,
        },
        CrashPoint {
            label: label(2),
            round: 3,
        },
    ]);
    assert_eq!(
        spec.crash_rounds(&team(&[2, 3])),
        Err(FaultError::UnknownCrashTarget { label: label(9) })
    );
}

#[test]
fn bad_crash_probability_maps_to_the_exact_fault_error() {
    for p in [f64::NAN, f64::INFINITY, -0.25, 1.01] {
        let spec = FaultSpec::SeededCrash {
            p,
            seed: 1,
            max_crashes: 1,
        };
        assert_eq!(
            spec.crash_rounds(&team(&[2, 3])),
            Err(FaultError::BadProbability),
            "p = {p}"
        );
        let g = generators::ring(4);
        let mut engine = ring_engine(&g);
        engine.set_faults(spec);
        assert_eq!(
            engine.run(10).unwrap_err(),
            SimError::BadFaultSpec {
                reason: FaultError::BadProbability,
            }
        );
    }
}

#[test]
fn wrong_length_explicit_schedule_maps_to_the_exact_schedule_error() {
    let schedule = WakeSchedule::Explicit(vec![0, 1, 2]);
    assert_eq!(
        schedule.wake_rounds(2),
        Err(ScheduleError::WrongLength {
            expected: 2,
            got: 3,
        })
    );
    let g = generators::ring(4);
    let mut engine = ring_engine(&g);
    engine.set_wake_schedule(schedule);
    assert_eq!(
        engine.run(10).unwrap_err(),
        SimError::BadWakeSchedule {
            reason: ScheduleError::WrongLength {
                expected: 2,
                got: 3,
            },
        }
    );
}

#[test]
fn no_round_zero_wake_maps_to_the_exact_schedule_error() {
    // Finite but shifted, and fully dormant: both miss the round-0 anchor.
    for rounds in [vec![1, 7], vec![u64::MAX, u64::MAX]] {
        let schedule = WakeSchedule::Explicit(rounds.clone());
        assert_eq!(
            schedule.wake_rounds(2),
            Err(ScheduleError::NoRoundZeroWake),
            "rounds = {rounds:?}"
        );
        let g = generators::ring(4);
        let mut engine = ring_engine(&g);
        engine.set_wake_schedule(schedule);
        assert_eq!(
            engine.run(10).unwrap_err(),
            SimError::BadWakeSchedule {
                reason: ScheduleError::NoRoundZeroWake,
            }
        );
    }
}

#[test]
fn dynamic_ring_specs_are_incompatible_with_non_cycles() {
    let path = generators::path(4);
    let star = generators::star(5);
    let ring = generators::ring(4);
    assert!(!is_cycle(&path));
    assert!(!is_cycle(&star));
    let dring = TopologySpec::Ring(DynamicRing { seed: 3 });
    assert!(dring.compatible_with(&ring));
    assert!(!dring.compatible_with(&path));
    assert!(!dring.compatible_with(&star));
    let sring = TopologySpec::Scripted(ScriptedRing {
        script: vec![0, ScriptedRing::KEEP_ALL],
    });
    assert!(sring.compatible_with(&ring));
    assert!(!sring.compatible_with(&path));
    assert!(!sring.compatible_with(&star));
}

#[test]
fn scripted_ring_scripts_are_validated_edge_by_edge() {
    let ring = generators::ring(4); // 4 edges: valid ids are 0..4
    assert!(ScriptedRing {
        script: vec![0, 3, ScriptedRing::KEEP_ALL],
    }
    .valid_for(&ring));
    // An empty script has no per-round choice to make.
    assert!(!ScriptedRing { script: vec![] }.valid_for(&ring));
    // An out-of-range edge id names nothing removable.
    assert!(!ScriptedRing { script: vec![4] }.valid_for(&ring));
    assert!(!TopologySpec::Scripted(ScriptedRing { script: vec![4] }).compatible_with(&ring));
}
