//! The engine's reproducibility contract, property-tested: two runs built
//! from identical inputs (graph, agents, wake schedule, behavior seeds)
//! produce bitwise-identical traces and outcomes.
//!
//! This is the foundation the `nochatter-lab` campaign runner stands on —
//! sharding scenarios across worker threads can only be deterministic if
//! each individual run is.

use std::cell::RefCell;

use proptest::prelude::*;

use nochatter_graph::generators::Family;
use nochatter_graph::rng::Rng;
use nochatter_graph::{Graph, Label, NodeId, Port};
use nochatter_sim::proc::{ProcBehavior, Procedure};
use nochatter_sim::{Action, Declaration, Engine, EngineScratch, Obs, Poll, Sensing, WakeSchedule};

/// A seeded random walker: each round it either waits or takes a random
/// port, for a seed-determined number of rounds, then declares how many
/// moves it made. Exercises moves, waits, co-location and wake-on-visit in
/// one behavior while staying a pure function of its seed.
struct SeededWalker {
    rng: Rng,
    steps: u32,
    moves: u32,
}

impl SeededWalker {
    fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let steps = rng.range(40) as u32;
        SeededWalker {
            rng,
            steps,
            moves: 0,
        }
    }
}

impl Procedure for SeededWalker {
    type Output = u32;
    fn poll(&mut self, obs: &Obs) -> Poll<u32> {
        if self.steps == 0 {
            return Poll::Complete(self.moves);
        }
        self.steps -= 1;
        if self.rng.bool() {
            Poll::Yield(Action::Wait)
        } else {
            self.moves += 1;
            Poll::Yield(Action::TakePort(Port::new(
                self.rng.range(u64::from(obs.degree)) as u32,
            )))
        }
    }
}

fn build_engine<'g>(
    graph: &'g Graph,
    starts: &[u32],
    seed: u64,
    schedule: &WakeSchedule,
) -> Engine<'g> {
    let mut engine = Engine::new(graph);
    engine.record_trace(1 << 14);
    for (i, &start) in starts.iter().enumerate() {
        let agent_seed = nochatter_graph::rng::derive_seed(seed, &[i as u64]);
        engine.add_agent(
            Label::new(i as u64 + 1).unwrap(),
            NodeId::new(start),
            Box::new(ProcBehavior::mapping(SeededWalker::new(agent_seed), |m| {
                Declaration {
                    leader: None,
                    size: Some(m),
                }
            })),
        );
    }
    engine.set_wake_schedule(schedule.clone());
    engine
}

fn scenario_strategy() -> impl Strategy<Value = (Graph, Vec<u32>, u64, WakeSchedule)> {
    (0usize..4, 4u32..9, any::<u64>(), 0u64..3).prop_map(|(family, n, seed, sched)| {
        let family = [
            Family::Ring,
            Family::Grid,
            Family::RandomTree,
            Family::RandomConnected,
        ][family];
        let graph = family.instantiate(n, seed);
        let n_actual = graph.node_count() as u32;
        // Three agents spread over the graph (distinct nodes).
        let starts = vec![0, n_actual / 3 + 1, 2 * n_actual / 3 + 1];
        let schedule = match sched {
            0 => WakeSchedule::Simultaneous,
            1 => WakeSchedule::FirstOnly,
            _ => WakeSchedule::Staggered { gap: seed % 7 + 1 },
        };
        (graph, starts, seed, schedule)
    })
}

proptest! {
    #[test]
    fn identical_inputs_give_bitwise_identical_runs(
        (graph, starts, seed, schedule) in scenario_strategy()
    ) {
        // Starts must be distinct for a valid engine setup.
        prop_assume!(starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]);
        let a = build_engine(&graph, &starts, seed, &schedule).run(500).unwrap();
        let b = build_engine(&graph, &starts, seed, &schedule).run(500).unwrap();
        // Debug formatting covers every field of the outcome, declarations
        // included — and the traces, event for event.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        prop_assert_eq!(ta.events(), tb.events());
        prop_assert_eq!(ta.dropped(), tb.dropped());
    }

    /// `run` and `run_with_scratch` are the same computation: for random
    /// scenarios under both sensing modes, the outcomes and traces are
    /// bitwise identical. The scratch persists across proptest cases (and
    /// is deliberately left dirty between them), so this also pins the
    /// reuse contract across different graphs, team placements and
    /// schedules.
    #[test]
    fn run_with_scratch_is_bitwise_identical_to_run(
        (graph, starts, seed, schedule) in scenario_strategy(),
        traditional in any::<bool>(),
    ) {
        thread_local! {
            static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::new());
        }
        prop_assume!(starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]);
        let sensing = if traditional { Sensing::Traditional } else { Sensing::Weak };
        let mut fresh = build_engine(&graph, &starts, seed, &schedule);
        fresh.set_sensing(sensing);
        let a = fresh.run(500).unwrap();
        let b = SCRATCH.with(|scratch| {
            let mut reused = build_engine(&graph, &starts, seed, &schedule);
            reused.set_sensing(sensing);
            reused.run_with_scratch(500, &mut scratch.borrow_mut()).unwrap()
        });
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        prop_assert_eq!(ta.events(), tb.events());
        prop_assert_eq!(ta.dropped(), tb.dropped());
    }

    #[test]
    fn different_behavior_seeds_diverge_somewhere(base in any::<u64>()) {
        // Sanity for the property above: the walker actually *uses* its
        // seed, so two different seeds produce different traces for at
        // least one of a handful of attempts (a fixed walk would make the
        // determinism test vacuous).
        let graph = Family::Ring.instantiate(6, 1);
        let starts = [0u32, 2, 4];
        let mut diverged = false;
        for offset in 0..5u64 {
            let a = build_engine(&graph, &starts, base.wrapping_add(offset), &WakeSchedule::Simultaneous)
                .run(500)
                .unwrap();
            let b = build_engine(&graph, &starts, base.wrapping_add(offset + 1), &WakeSchedule::Simultaneous)
                .run(500)
                .unwrap();
            if format!("{a:?}") != format!("{b:?}") {
                diverged = true;
                break;
            }
        }
        prop_assert!(diverged, "seeded walker ignores its seed");
    }
}
