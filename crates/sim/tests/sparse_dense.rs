//! The sparse round loop's equivalence contract, property-tested: for any
//! scenario, the event-driven loop (per-agent wait horizons, dirty-node
//! re-polling, event cursors) and the dense reference loop produce bitwise
//! identical outcomes and traces. The *only* field allowed to differ is
//! `polled_agent_rounds` — the honest measure of the work the sparse loop
//! avoids — and even that may only ever be *lower* under the sparse loop.
//!
//! The property sweeps graph families, sensing modes, wake schedules,
//! static and round-varying topologies, crash faults, and a behavior mix
//! that parks agents on real `min_wait` horizons (so all three re-poll
//! triggers — horizon expiry, occupancy change, adversary events — fire in
//! anger). Unit tests below pin each trigger ordering individually.

use std::collections::VecDeque;

use proptest::prelude::*;

use nochatter_graph::dynamic::{PeriodicEdges, SeededEdgeFailure};
use nochatter_graph::generators::Family;
use nochatter_graph::rng::Rng;
use nochatter_graph::{Graph, Label, NodeId, Port};
use nochatter_sim::proc::{
    ProcBehavior, Procedure, RunFor, UntilCardExceeds, WaitCardStable, WaitRounds,
};
use nochatter_sim::{
    Action, AgentBehavior, CrashPoint, Declaration, Engine, FaultSpec, Obs, Poll, RunOutcome,
    Sensing, TopologySpec, WakeSchedule,
};

/// A seeded random walker (same shape as the determinism suite's): waits
/// or takes a random port for a seed-determined number of rounds, then
/// declares its move count. The movers are what dirty nodes and wake the
/// parked waiters below.
struct SeededWalker {
    rng: Rng,
    steps: u32,
    moves: u32,
}

impl SeededWalker {
    fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let steps = rng.range(60) as u32;
        SeededWalker {
            rng,
            steps,
            moves: 0,
        }
    }
}

impl Procedure for SeededWalker {
    type Output = u32;
    fn poll(&mut self, obs: &Obs) -> Poll<u32> {
        if self.steps == 0 {
            return Poll::Complete(self.moves);
        }
        self.steps -= 1;
        if self.rng.bool() {
            Poll::Yield(Action::Wait)
        } else {
            self.moves += 1;
            Poll::Yield(Action::TakePort(Port::new(
                self.rng.range(u64::from(obs.degree)) as u32,
            )))
        }
    }
}

fn declare(size: u32) -> Declaration {
    Declaration {
        leader: None,
        size: Some(size),
    }
}

/// Picks a behavior for agent `i` from a seed-determined mix. Movers
/// dominate slot 0–1 so runs stay lively; the rest are wait-heavy
/// combinators with genuine `min_wait` horizons, so the sparse loop
/// actually parks them (and must wake them back up correctly).
fn mixed_behavior(seed: u64, i: usize) -> Box<dyn AgentBehavior> {
    let s = nochatter_graph::rng::derive_seed(seed, &[i as u64]);
    match s % 5 {
        0 | 1 => Box::new(ProcBehavior::mapping(SeededWalker::new(s), declare)),
        2 => Box::new(ProcBehavior::mapping(WaitRounds::new(s % 80), |()| {
            declare(0)
        })),
        3 => Box::new(ProcBehavior::mapping(
            UntilCardExceeds::new(1, WaitRounds::new(400)),
            |out| declare(out.was_interrupted() as u32),
        )),
        _ => Box::new(ProcBehavior::mapping(
            RunFor::new(s % 97, WaitCardStable::new(s % 6 + 2, 0, None)),
            |out| declare(out.is_some() as u32),
        )),
    }
}

type ScenarioDraw = (
    Graph,
    Vec<u32>,
    u64,
    WakeSchedule,
    Sensing,
    TopologySpec,
    FaultSpec,
);

fn scenario_strategy() -> impl Strategy<Value = ScenarioDraw> {
    (
        (0usize..4, 4u32..9, any::<u64>(), 0u64..3),
        (any::<bool>(), 0usize..3, 0usize..4),
    )
        .prop_map(|((family, n, seed, sched), (traditional, topo, fault))| {
            let family = [
                Family::Ring,
                Family::Grid,
                Family::RandomTree,
                Family::RandomConnected,
            ][family];
            let graph = family.instantiate(n, seed);
            let n_actual = graph.node_count() as u32;
            let starts = vec![0, n_actual / 3 + 1, 2 * n_actual / 3 + 1];
            let schedule = match sched {
                0 => WakeSchedule::Simultaneous,
                1 => WakeSchedule::FirstOnly,
                _ => WakeSchedule::Staggered { gap: seed % 7 + 1 },
            };
            let sensing = if traditional {
                Sensing::Traditional
            } else {
                Sensing::Weak
            };
            let topo = match topo {
                0 => TopologySpec::Static,
                1 => TopologySpec::Periodic(PeriodicEdges {
                    period: 3,
                    offset: seed % 3,
                }),
                _ => TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.3, seed }),
            };
            // Crash rounds stretch past typical park horizons so crashes
            // preempt parked agents, not just active ones.
            let fault = match fault {
                0 => FaultSpec::None,
                1 => FaultSpec::CrashAt(vec![CrashPoint {
                    label: Label::new(2).unwrap(),
                    round: seed % 150,
                }]),
                2 => FaultSpec::CrashAt(vec![
                    CrashPoint {
                        label: Label::new(1).unwrap(),
                        round: seed % 60,
                    },
                    CrashPoint {
                        label: Label::new(3).unwrap(),
                        round: seed % 150,
                    },
                ]),
                _ => FaultSpec::SeededCrash {
                    p: 0.02,
                    seed,
                    max_crashes: 2,
                },
            };
            (graph, starts, seed, schedule, sensing, topo, fault)
        })
}

fn distinct(starts: &[u32]) -> bool {
    starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]
}

#[allow(clippy::too_many_arguments)]
fn run_mode(
    graph: &Graph,
    starts: &[u32],
    seed: u64,
    schedule: &WakeSchedule,
    sensing: Sensing,
    topo: &TopologySpec,
    fault: &FaultSpec,
    dense: bool,
) -> RunOutcome {
    let mut engine = Engine::with_topology(graph, topo);
    engine.set_dense_loop(dense);
    engine.record_trace(1 << 14);
    engine.set_sensing(sensing);
    for (i, &start) in starts.iter().enumerate() {
        engine.add_agent(
            Label::new(i as u64 + 1).unwrap(),
            NodeId::new(start),
            mixed_behavior(seed, i),
        );
    }
    engine.set_wake_schedule(schedule.clone());
    engine.set_faults(fault.clone());
    engine.run(500).unwrap()
}

/// Debug-compare two outcomes with `polled_agent_rounds` masked out — it is
/// the one field the loops are allowed to disagree on.
fn assert_equal_masking_polls(
    sparse: &RunOutcome,
    dense: &RunOutcome,
) -> Result<(), TestCaseError> {
    let mut s = sparse.clone();
    let mut d = dense.clone();
    s.polled_agent_rounds = 0;
    d.polled_agent_rounds = 0;
    prop_assert_eq!(format!("{s:?}"), format!("{d:?}"));
    let (ts, td) = (
        sparse.trace.as_ref().unwrap(),
        dense.trace.as_ref().unwrap(),
    );
    prop_assert_eq!(ts.events(), td.events());
    prop_assert_eq!(ts.dropped(), td.dropped());
    prop_assert!(
        sparse.polled_agent_rounds <= dense.polled_agent_rounds,
        "sparse loop polled more ({}) than dense ({})",
        sparse.polled_agent_rounds,
        dense.polled_agent_rounds
    );
    Ok(())
}

proptest! {
    /// The headline contract: sparse and dense loops are bitwise identical
    /// on every outcome field and every trace event, across topologies,
    /// sensing modes, schedules and crash faults — and the sparse loop
    /// never polls a behavior the dense loop wouldn't have.
    #[test]
    fn sparse_and_dense_loops_are_bitwise_identical(
        (graph, starts, seed, schedule, sensing, topo, fault) in scenario_strategy()
    ) {
        prop_assume!(distinct(&starts));
        let sparse = run_mode(&graph, &starts, seed, &schedule, sensing, &topo, &fault, false);
        let dense = run_mode(&graph, &starts, seed, &schedule, sensing, &topo, &fault, true);
        assert_equal_masking_polls(&sparse, &dense)?;
    }
}

// ---------------------------------------------------------------------------
// Trigger-ordering unit tests: each re-poll trigger pinned in isolation.
// ---------------------------------------------------------------------------

/// BFS the port-path from `from` to `to` (the graphs here are small and
/// connected, so a path always exists).
fn port_path(graph: &Graph, from: NodeId, to: NodeId) -> Vec<Port> {
    let mut prev: Vec<Option<(NodeId, Port)>> = vec![None; graph.node_count()];
    let mut queue = VecDeque::from([from]);
    let mut seen = vec![false; graph.node_count()];
    seen[from.index()] = true;
    while let Some(node) = queue.pop_front() {
        if node == to {
            break;
        }
        for port in 0..graph.degree(node) {
            let port = Port::new(port);
            let (next, _) = graph.neighbor(node, port).unwrap();
            if !seen[next.index()] {
                seen[next.index()] = true;
                prev[next.index()] = Some((node, port));
                queue.push_back(next);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let (node, port) = prev[cur.index()].expect("graph is connected");
        path.push(port);
        cur = node;
    }
    path.reverse();
    path
}

/// A mover that walks a fixed path, then waits forever. Used to deliver an
/// occupancy change to a parked agent at a known round.
struct PathThenIdle {
    path: std::vec::IntoIter<Port>,
}

impl Procedure for PathThenIdle {
    type Output = ();
    fn poll(&mut self, _obs: &Obs) -> Poll<()> {
        match self.path.next() {
            Some(p) => Poll::Yield(Action::TakePort(p)),
            None => Poll::Yield(Action::Wait),
        }
    }
    fn min_wait(&self) -> u64 {
        if self.path.as_slice().is_empty() {
            u64::MAX
        } else {
            0
        }
    }
}

/// Runs the same setup under both loops and checks outcome equality (polls
/// masked); returns the sparse outcome for further assertions.
fn run_pair<'g>(mut build: impl FnMut(bool) -> Engine<'g>) -> RunOutcome {
    let mut go = |dense: bool| {
        let mut engine = build(dense);
        engine.set_dense_loop(dense);
        engine.run(500).unwrap()
    };
    let sparse = go(false);
    let dense = go(true);
    let mut s = sparse.clone();
    let mut d = dense.clone();
    s.polled_agent_rounds = 0;
    d.polled_agent_rounds = 0;
    assert_eq!(format!("{s:?}"), format!("{d:?}"));
    assert_eq!(
        sparse.trace.as_ref().unwrap().events(),
        dense.trace.as_ref().unwrap().events()
    );
    assert!(sparse.polled_agent_rounds <= dense.polled_agent_rounds);
    sparse
}

/// Trigger 1 — horizon expiry: a lone `WaitRounds` agent parks on its full
/// horizon, is re-polled only when the horizon runs out, and still declares
/// at exactly the same round as under the dense loop.
#[test]
fn horizon_expiry_re_polls_at_the_promised_round() {
    let graph = Family::Ring.instantiate(6, 1);
    let sparse = run_pair(|_| {
        let mut engine = Engine::new(&graph);
        engine.record_trace(64);
        engine.add_agent(
            Label::new(1).unwrap(),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(WaitRounds::new(40), |()| declare(0)))
                as Box<dyn AgentBehavior>,
        );
        engine
    });
    let (_, rec) = &sparse.declarations[0];
    assert_eq!(rec.unwrap().round, 40);
    // A lone waiter is pure quiescence: fast-forward covers the wait in a
    // handful of polls, nowhere near one poll per round.
    assert!(
        sparse.polled_agent_rounds < 10,
        "expected a fast-forwarded park, got {} polls",
        sparse.polled_agent_rounds
    );
}

/// Trigger 2 — occupancy change: an agent parked on a huge horizon
/// (`UntilCardExceeds` over `WaitRounds(400)`) must be woken the moment a
/// walker reaches its node, long before the horizon expires.
#[test]
fn occupancy_change_preempts_a_parked_horizon() {
    let graph = Family::Grid.instantiate(6, 3);
    let target = NodeId::new(0);
    let start = NodeId::new(graph.node_count() as u32 - 1);
    let path = port_path(&graph, start, target);
    let arrival = path.len() as u64; // moves land at end of rounds 0..len-1
    let sparse = run_pair(|_| {
        let mut engine = Engine::new(&graph);
        engine.record_trace(256);
        engine.add_agent(
            Label::new(1).unwrap(),
            target,
            Box::new(ProcBehavior::mapping(
                UntilCardExceeds::new(1, WaitRounds::new(400)),
                |out| declare(out.was_interrupted() as u32),
            )) as Box<dyn AgentBehavior>,
        );
        engine.add_agent(
            Label::new(2).unwrap(),
            start,
            Box::new(ProcBehavior::mapping(
                PathThenIdle {
                    path: path.clone().into_iter(),
                },
                |()| declare(0),
            )) as Box<dyn AgentBehavior>,
        );
        engine
    });
    let (_, rec) = &sparse.declarations[0];
    let rec = rec.expect("the parked agent must be interrupted and declare");
    assert_eq!(
        rec.declaration.size,
        Some(1),
        "declaration must record the interruption"
    );
    assert_eq!(
        rec.round, arrival,
        "the parked agent must act in the round the walker arrives, \
         not when its 400-round horizon expires"
    );
}

/// Trigger 3 — adversary events: a crash lands on an agent parked behind a
/// huge horizon at exactly its scheduled round, and a wake-schedule event
/// activates a dormant agent mid-quiescence. Both must preempt parking.
#[test]
fn crash_preempts_a_parked_horizon() {
    let graph = Family::Ring.instantiate(5, 1);
    let sparse = run_pair(|_| {
        let mut engine = Engine::new(&graph);
        engine.record_trace(64);
        engine.add_agent(
            Label::new(1).unwrap(),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(WaitRounds::new(10_000), |()| {
                declare(0)
            })) as Box<dyn AgentBehavior>,
        );
        engine.add_agent(
            Label::new(2).unwrap(),
            NodeId::new(2),
            Box::new(ProcBehavior::mapping(WaitRounds::new(3), |()| declare(0)))
                as Box<dyn AgentBehavior>,
        );
        engine.set_faults(FaultSpec::CrashAt(vec![CrashPoint {
            label: Label::new(1).unwrap(),
            round: 123,
        }]));
        engine
    });
    assert_eq!(sparse.crashed_agents, vec![Label::new(1).unwrap()]);
    let crash = sparse
        .trace
        .as_ref()
        .unwrap()
        .events()
        .iter()
        .find_map(|e| match e {
            nochatter_sim::TraceEvent::Crashed { round, .. } => Some(*round),
            _ => None,
        })
        .expect("crash must be traced");
    assert_eq!(
        crash, 123,
        "the crash must land in its exact round even though the victim \
         was parked until round 10000"
    );
}

/// A staggered wake re-activates a dormant agent while everyone else is
/// parked; the woken agent's moves then dirty nodes as usual.
#[test]
fn staggered_wake_fires_during_quiescence() {
    let graph = Family::Ring.instantiate(6, 2);
    run_pair(|_| {
        let mut engine = Engine::new(&graph);
        engine.record_trace(256);
        for (i, start) in [0u32, 2, 4].into_iter().enumerate() {
            engine.add_agent(
                Label::new(i as u64 + 1).unwrap(),
                NodeId::new(start),
                Box::new(ProcBehavior::mapping(
                    WaitRounds::new(50 + 10 * i as u64),
                    |()| declare(0),
                )) as Box<dyn AgentBehavior>,
            );
        }
        engine.set_wake_schedule(WakeSchedule::Staggered { gap: 17 });
        engine
    });
}

// ---------------------------------------------------------------------------
// Checkpoint/resume mid-wait, across every donor-mode x resume-mode pair.
// ---------------------------------------------------------------------------

/// A cloneable seeded walker (forkable, unlike the boxed-dyn mix above):
/// the engine's checkpoint machinery requires behaviors that can be
/// duplicated mid-run.
#[derive(Clone)]
struct CloneWalker {
    rng: Rng,
    steps: u32,
}

impl Procedure for CloneWalker {
    type Output = u32;
    fn poll(&mut self, obs: &Obs) -> Poll<u32> {
        if self.steps == 0 {
            return Poll::Complete(0);
        }
        self.steps -= 1;
        if self.rng.bool() {
            Poll::Yield(Action::Wait)
        } else {
            Poll::Yield(Action::TakePort(Port::new(
                self.rng.range(u64::from(obs.degree)) as u32,
            )))
        }
    }
}

/// One concrete, cloneable behavior type covering the whole mix (the
/// engine's behavior storage must unify on a single `B` for `Box<B>` to be
/// forkable via `Clone`).
#[derive(Clone)]
enum MixedProc {
    Walk(CloneWalker),
    Idle(WaitRounds),
    Card(UntilCardExceeds<WaitRounds>),
}

impl Procedure for MixedProc {
    type Output = u32;
    fn poll(&mut self, obs: &Obs) -> Poll<u32> {
        match self {
            MixedProc::Walk(p) => p.poll(obs),
            MixedProc::Idle(p) => p.poll(obs).map(|()| 0),
            MixedProc::Card(p) => p.poll(obs).map(|out| out.was_interrupted() as u32),
        }
    }
    fn min_wait(&self) -> u64 {
        match self {
            MixedProc::Walk(p) => p.min_wait(),
            MixedProc::Idle(p) => p.min_wait(),
            MixedProc::Card(p) => p.min_wait(),
        }
    }
    fn note_skipped(&mut self, rounds: u64) {
        match self {
            MixedProc::Walk(p) => p.note_skipped(rounds),
            MixedProc::Idle(p) => p.note_skipped(rounds),
            MixedProc::Card(p) => p.note_skipped(rounds),
        }
    }
}

type ForkableMix = Box<ProcBehavior<MixedProc, fn(u32) -> Declaration>>;

fn forkable_engine(graph: &Graph, dense: bool) -> Engine<'_, nochatter_sim::Static, ForkableMix> {
    let mut engine: Engine<'_, nochatter_sim::Static, ForkableMix> =
        Engine::with_parts(graph, &nochatter_sim::Static);
    engine.set_dense_loop(dense);
    engine.record_trace(1 << 12);
    let procs = [
        MixedProc::Walk(CloneWalker {
            rng: Rng::seed_from(11),
            steps: 30,
        }),
        MixedProc::Idle(WaitRounds::new(60)),
        MixedProc::Idle(WaitRounds::new(75)),
        MixedProc::Card(UntilCardExceeds::new(1, WaitRounds::new(300))),
    ];
    for (i, proc_) in procs.into_iter().enumerate() {
        engine.add_agent(
            Label::new(i as u64 + 1).unwrap(),
            NodeId::new(i as u32 * 2),
            Box::new(ProcBehavior::mapping(
                proc_,
                declare as fn(u32) -> Declaration,
            )),
        );
    }
    engine
}

/// A checkpoint taken while agents sit parked mid-`min_wait` resumes
/// bitwise into either loop, from either loop: the park state is either
/// carried verbatim (sparse→sparse), dissolved by catching behaviors up
/// (→dense), or rebuilt from the captured columns (dense→sparse).
#[test]
fn mid_wait_checkpoints_resume_bitwise_across_mode_pairs() {
    use nochatter_sim::{ActiveRun, EngineScratch};

    let graph = Family::Ring.instantiate(9, 4);
    // Reference outcome: a fresh dense run, polls masked below.
    let reference = {
        let mut scratch = EngineScratch::new();
        forkable_engine(&graph, true)
            .run_with_scratch(500, &mut scratch)
            .unwrap()
    };
    for donor_dense in [false, true] {
        for resume_dense in [false, true] {
            let mut scratch = EngineScratch::new();
            let mut donor =
                ActiveRun::begin(forkable_engine(&graph, donor_dense), 500, &mut scratch).unwrap();
            // Step into the thick of the waits: the two `WaitRounds`
            // agents are parked under the sparse loop by round 12.
            while donor.next_round() < 12 {
                assert!(
                    donor.step(&mut scratch).is_none(),
                    "the run must still be live at round 12"
                );
            }
            let cp = donor.checkpoint().expect("forkable behaviors snapshot");
            let mut resumed =
                ActiveRun::begin(forkable_engine(&graph, resume_dense), 500, &mut scratch).unwrap();
            assert!(resumed.resume_from(&cp), "shapes match, behaviors fork");
            let outcome = loop {
                if let Some(result) = resumed.step(&mut scratch) {
                    break result.unwrap();
                }
            };
            let mut masked = outcome.clone();
            let mut expected = reference.clone();
            masked.polled_agent_rounds = 0;
            expected.polled_agent_rounds = 0;
            assert_eq!(
                format!("{masked:?}"),
                format!("{expected:?}"),
                "mid-wait resume diverged for donor_dense={donor_dense} \
                 resume_dense={resume_dense}"
            );
            assert_eq!(
                outcome.trace.as_ref().unwrap().events(),
                reference.trace.as_ref().unwrap().events()
            );
        }
    }
}

/// The sparse loop's whole point, measured: a mostly-parked team costs far
/// fewer behavior polls than the dense loop's poll-everyone-every-round.
#[test]
fn parked_agents_slash_polled_rounds() {
    let graph = Family::Ring.instantiate(8, 1);
    let run = |dense: bool| {
        let mut engine = Engine::new(&graph);
        engine.set_dense_loop(dense);
        // One walker circles the ring; seven waiters park on long horizons.
        engine.add_agent(
            Label::new(1).unwrap(),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(
                PathThenIdle {
                    path: vec![Port::new(0); 64].into_iter(),
                },
                |()| declare(0),
            )) as Box<dyn AgentBehavior>,
        );
        for i in 1..8u32 {
            engine.add_agent(
                Label::new(u64::from(i) + 1).unwrap(),
                NodeId::new(i),
                Box::new(ProcBehavior::mapping(WaitRounds::new(100_000), |()| {
                    declare(0)
                })) as Box<dyn AgentBehavior>,
            );
        }
        engine.run(64).unwrap()
    };
    let sparse = run(false);
    let dense = run(true);
    assert_eq!(sparse.rounds, dense.rounds);
    assert!(
        sparse.polled_agent_rounds * 2 <= dense.polled_agent_rounds,
        "expected at least a 2x poll reduction, got sparse {} vs dense {}",
        sparse.polled_agent_rounds,
        dense.polled_agent_rounds
    );
}
