//! The crash-fault adversary's two contracts, property-tested — the same
//! pin discipline the dynamic-topology refactor used:
//!
//! 1. **Fault-free is free.** An engine with `set_faults(FaultSpec::None)`
//!    is bitwise identical to one whose fault adversary was never touched —
//!    across graph families, sensing modes, wake schedules, static and
//!    dynamic topologies, through a deliberately dirty shared scratch.
//!    Together with the golden smoke campaign (byte-identical to the
//!    pre-refactor recording), this pins the crash machinery as a pure
//!    extension of the lifecycle state machine.
//!
//! 2. **Crashes are faithful.** Replaying a faulty run's trace against the
//!    spec's own [`FaultSpec::crash_rounds`] resolution shows every
//!    `Crashed` event at exactly the resolved round, and no agent acting
//!    (moving, blocking or declaring) at or after its crash round — the
//!    adversary kills exactly whom it promised, exactly when, and the
//!    engine never animates a corpse.

use std::cell::RefCell;

use proptest::prelude::*;

use nochatter_graph::dynamic::{PeriodicEdges, SeededEdgeFailure};
use nochatter_graph::generators::Family;
use nochatter_graph::rng::Rng;
use nochatter_graph::{Graph, Label, NodeId, Port};
use nochatter_sim::proc::{ProcBehavior, Procedure};
use nochatter_sim::{
    Action, AgentPhase, CrashPoint, Declaration, Engine, EngineScratch, FaultSpec, Obs, Poll,
    RunOutcome, Sensing, TopologySpec, TopologyView, TraceEvent, WakeSchedule,
};

/// A seeded random walker (same shape as the determinism suite's): waits
/// or takes a random port for a seed-determined number of rounds, then
/// declares its move count.
struct SeededWalker {
    rng: Rng,
    steps: u32,
    moves: u32,
}

impl SeededWalker {
    fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let steps = rng.range(60) as u32;
        SeededWalker {
            rng,
            steps,
            moves: 0,
        }
    }
}

impl Procedure for SeededWalker {
    type Output = u32;
    fn poll(&mut self, obs: &Obs) -> Poll<u32> {
        if self.steps == 0 {
            return Poll::Complete(self.moves);
        }
        self.steps -= 1;
        if self.rng.bool() {
            Poll::Yield(Action::Wait)
        } else {
            self.moves += 1;
            Poll::Yield(Action::TakePort(Port::new(
                self.rng.range(u64::from(obs.degree)) as u32,
            )))
        }
    }
}

fn add_walkers<V: TopologyView>(
    engine: &mut Engine<'_, V>,
    starts: &[u32],
    seed: u64,
    schedule: &WakeSchedule,
    sensing: Sensing,
) {
    engine.record_trace(1 << 14);
    engine.set_sensing(sensing);
    for (i, &start) in starts.iter().enumerate() {
        let agent_seed = nochatter_graph::rng::derive_seed(seed, &[i as u64]);
        engine.add_agent(
            Label::new(i as u64 + 1).unwrap(),
            NodeId::new(start),
            Box::new(ProcBehavior::mapping(SeededWalker::new(agent_seed), |m| {
                Declaration {
                    leader: None,
                    size: Some(m),
                }
            })),
        );
    }
    engine.set_wake_schedule(schedule.clone());
}

type ScenarioDraw = (Graph, Vec<u32>, u64, WakeSchedule, Sensing, TopologySpec);

fn scenario_strategy() -> impl Strategy<Value = ScenarioDraw> {
    (
        0usize..4,
        4u32..9,
        any::<u64>(),
        0u64..3,
        any::<bool>(),
        0usize..3,
    )
        .prop_map(|(family, n, seed, sched, traditional, topo)| {
            let family = [
                Family::Ring,
                Family::Grid,
                Family::RandomTree,
                Family::RandomConnected,
            ][family];
            let graph = family.instantiate(n, seed);
            let n_actual = graph.node_count() as u32;
            let starts = vec![0, n_actual / 3 + 1, 2 * n_actual / 3 + 1];
            let schedule = match sched {
                0 => WakeSchedule::Simultaneous,
                1 => WakeSchedule::FirstOnly,
                _ => WakeSchedule::Staggered { gap: seed % 7 + 1 },
            };
            let sensing = if traditional {
                Sensing::Traditional
            } else {
                Sensing::Weak
            };
            let topo = match topo {
                0 => TopologySpec::Static,
                1 => TopologySpec::Periodic(PeriodicEdges {
                    period: 3,
                    offset: seed % 3,
                }),
                _ => TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.3, seed }),
            };
            (graph, starts, seed, schedule, sensing, topo)
        })
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    (0usize..3, 0u64..120, 0u64..120, any::<u64>()).prop_map(|(kind, r1, r2, seed)| match kind {
        0 => FaultSpec::CrashAt(vec![CrashPoint {
            label: Label::new(2).unwrap(),
            round: r1,
        }]),
        1 => FaultSpec::CrashAt(vec![
            CrashPoint {
                label: Label::new(1).unwrap(),
                round: r1,
            },
            CrashPoint {
                label: Label::new(3).unwrap(),
                round: r2,
            },
        ]),
        _ => FaultSpec::SeededCrash {
            p: 0.02,
            seed,
            max_crashes: 2,
        },
    })
}

fn distinct(starts: &[u32]) -> bool {
    starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]
}

proptest! {
    /// Contract 1: `FaultSpec::None` is bitwise identical to never touching
    /// the fault adversary, with the fault-free run sharing one dirty
    /// scratch across cases.
    #[test]
    fn fault_none_is_bitwise_identical_to_no_faults(
        (graph, starts, seed, schedule, sensing, topo) in scenario_strategy()
    ) {
        thread_local! {
            static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::new());
        }
        prop_assume!(distinct(&starts));
        let untouched = {
            let mut engine = Engine::with_topology(&graph, &topo);
            add_walkers(&mut engine, &starts, seed, &schedule, sensing);
            engine.run(500).unwrap()
        };
        let explicit_none = SCRATCH.with(|scratch| {
            let mut engine = Engine::with_topology(&graph, &topo);
            add_walkers(&mut engine, &starts, seed, &schedule, sensing);
            engine.set_faults(FaultSpec::None);
            engine.run_with_scratch(500, &mut scratch.borrow_mut()).unwrap()
        });
        prop_assert_eq!(format!("{untouched:?}"), format!("{explicit_none:?}"));
        prop_assert_eq!(
            untouched.trace.as_ref().unwrap().events(),
            explicit_none.trace.as_ref().unwrap().events()
        );
        prop_assert!(untouched.crashed_agents.is_empty());
    }

    /// Contract 2: replay every faulty trace against the spec's own
    /// resolution — crashes land exactly where promised, nobody acts at or
    /// after their crash round, and the outcome's crash list matches.
    #[test]
    fn crash_traces_replay_against_the_spec(
        (graph, starts, seed, schedule, sensing, topo) in scenario_strategy(),
        fault in fault_strategy(),
    ) {
        prop_assume!(distinct(&starts));
        let mut engine = Engine::with_topology(&graph, &topo);
        add_walkers(&mut engine, &starts, seed, &schedule, sensing);
        engine.set_faults(fault.clone());
        let outcome = engine.run(500).unwrap();
        let labels: Vec<Label> = (1..=3).map(|v| Label::new(v).unwrap()).collect();
        let resolved = fault.crash_rounds(&labels).unwrap();
        let crash_round_of = |agent: Label| resolved[(agent.value() - 1) as usize];
        let trace = outcome.trace.as_ref().unwrap();
        prop_assert_eq!(trace.dropped(), 0);
        let mut crashed_seen: Vec<Label> = Vec::new();
        for event in trace.events() {
            match *event {
                TraceEvent::Crashed { agent, round, .. } => {
                    // A crash may land *after* its nominal round only if the
                    // agent had already... no: the engine applies overdue
                    // crashes in their exact round (fast-forward is capped),
                    // so the trace round must equal the resolution — unless
                    // the agent declared first, in which case no event exists.
                    prop_assert_eq!(round, crash_round_of(agent));
                    crashed_seen.push(agent);
                }
                TraceEvent::Move { agent, round, .. }
                | TraceEvent::Blocked { agent, round, .. }
                | TraceEvent::Declare { agent, round, .. }
                | TraceEvent::Wake { agent, round, .. } => {
                    prop_assert!(
                        round < crash_round_of(agent),
                        "agent {agent} acted in round {round}, at/after its crash \
                         round {}",
                        crash_round_of(agent)
                    );
                }
                _ => {}
            }
        }
        // Trace events arrive in round order; the outcome lists crashed
        // agents in insertion order. Same set either way.
        crashed_seen.sort_unstable();
        prop_assert_eq!(crashed_seen, {
            let mut v = outcome.crashed_agents.clone();
            v.sort_unstable();
            v
        });
        // Every agent with a resolved crash round inside the run either
        // crashed or had already declared before the crash round.
        for (&label, &crash) in labels.iter().zip(resolved.iter()) {
            if crash >= outcome.rounds.min(500) {
                continue;
            }
            if outcome.crashed_agents.contains(&label) {
                continue;
            }
            let declared = outcome
                .declarations
                .iter()
                .find(|(l, _)| *l == label)
                .and_then(|(_, r)| *r);
            prop_assert!(
                declared.is_some_and(|r| r.round <= crash),
                "agent {label} neither crashed at {crash} nor declared before it"
            );
        }
        // A crashed agent never declares.
        for crashed in &outcome.crashed_agents {
            let rec = outcome
                .declarations
                .iter()
                .find(|(l, _)| l == crashed)
                .unwrap();
            prop_assert!(rec.1.is_none());
        }
    }

    /// Faulty runs are themselves deterministic: same spec, same inputs,
    /// same bits.
    #[test]
    fn faulty_runs_are_deterministic(
        (graph, starts, seed, schedule, sensing, topo) in scenario_strategy(),
        fault in fault_strategy(),
    ) {
        prop_assume!(distinct(&starts));
        let run = || {
            let mut engine = Engine::with_topology(&graph, &topo);
            add_walkers(&mut engine, &starts, seed, &schedule, sensing);
            engine.set_faults(fault.clone());
            engine.run(500).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

/// The phase helpers agree on which phases are terminal/executing (the
/// engine loops match on these — a drift here would silently corrupt the
/// lifecycle machine).
#[test]
fn agent_phase_predicates_partition_the_lifecycle() {
    use AgentPhase::*;
    for phase in [Dormant, Active, Blocked, Declared, Crashed] {
        assert!(
            !(phase.is_terminal() && phase.is_executing()),
            "{phase:?} cannot be both terminal and executing"
        );
    }
    assert!(Declared.is_terminal() && Crashed.is_terminal());
    assert!(Active.is_executing() && Blocked.is_executing());
    assert!(!Dormant.is_terminal() && !Dormant.is_executing());
}

/// A deliberately dense seeded-crash run exercises real crashes (the
/// proptests would hold vacuously if the drawn specs never fired).
#[test]
fn seeded_crashes_actually_fire() {
    let graph = Family::Ring.instantiate(6, 1);
    let mut engine = Engine::new(&graph);
    add_walkers(
        &mut engine,
        &[0, 2, 4],
        7,
        &WakeSchedule::Simultaneous,
        Sensing::Weak,
    );
    engine.set_faults(FaultSpec::SeededCrash {
        p: 0.5,
        seed: 3,
        max_crashes: 2,
    });
    let outcome: RunOutcome = engine.run(500).unwrap();
    assert_eq!(
        outcome.crashed_agents.len(),
        2,
        "p = 0.5 with max_crashes = 2 must kill exactly two walkers"
    );
}
