//! The topology generalization's two contracts, property-tested:
//!
//! 1. **Static is free.** Running through the dynamic machinery with
//!    [`TopologySpec::Static`] is bitwise identical to [`Engine::new`]'s
//!    default static path — across graph families, sensing modes and wake
//!    schedules, through a deliberately dirty shared scratch. Together
//!    with the golden smoke campaign (byte-identical to the pre-refactor
//!    recording), this pins the refactor as a pure generalization.
//!
//! 2. **Dynamics are faithful.** Every `Move` in a dynamic run's trace
//!    crossed an edge that an independently-built view confirms present in
//!    that round, and every `Blocked` event names an edge absent in that
//!    round — the engine never teleports through an outage and never
//!    blocks a live edge.

use std::cell::RefCell;

use proptest::prelude::*;

use nochatter_graph::dynamic::{DynamicRing, PeriodicEdges, SeededEdgeFailure};
use nochatter_graph::generators::Family;
use nochatter_graph::rng::Rng;
use nochatter_graph::{Graph, Label, NodeId, Port};
use nochatter_sim::proc::{ProcBehavior, Procedure};
use nochatter_sim::{
    Action, Declaration, Engine, EngineScratch, Obs, Poll, Sensing, Topology, TopologySpec,
    TopologyView, TraceEvent, WakeSchedule,
};

/// A seeded random walker (same shape as the determinism suite's): waits
/// or takes a random port for a seed-determined number of rounds, then
/// declares its move count.
struct SeededWalker {
    rng: Rng,
    steps: u32,
    moves: u32,
}

impl SeededWalker {
    fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let steps = rng.range(40) as u32;
        SeededWalker {
            rng,
            steps,
            moves: 0,
        }
    }
}

impl Procedure for SeededWalker {
    type Output = u32;
    fn poll(&mut self, obs: &Obs) -> Poll<u32> {
        if self.steps == 0 {
            return Poll::Complete(self.moves);
        }
        self.steps -= 1;
        if self.rng.bool() {
            Poll::Yield(Action::Wait)
        } else {
            self.moves += 1;
            Poll::Yield(Action::TakePort(Port::new(
                self.rng.range(u64::from(obs.degree)) as u32,
            )))
        }
    }
}

fn add_walkers<V: TopologyView>(
    engine: &mut Engine<'_, V>,
    starts: &[u32],
    seed: u64,
    schedule: &WakeSchedule,
    sensing: Sensing,
) {
    engine.record_trace(1 << 14);
    engine.set_sensing(sensing);
    for (i, &start) in starts.iter().enumerate() {
        let agent_seed = nochatter_graph::rng::derive_seed(seed, &[i as u64]);
        engine.add_agent(
            Label::new(i as u64 + 1).unwrap(),
            NodeId::new(start),
            Box::new(ProcBehavior::mapping(SeededWalker::new(agent_seed), |m| {
                Declaration {
                    leader: None,
                    size: Some(m),
                }
            })),
        );
    }
    engine.set_wake_schedule(schedule.clone());
}

fn scenario_strategy() -> impl Strategy<Value = (Graph, Vec<u32>, u64, WakeSchedule, Sensing)> {
    (0usize..4, 4u32..9, any::<u64>(), 0u64..3, any::<bool>()).prop_map(
        |(family, n, seed, sched, traditional)| {
            let family = [
                Family::Ring,
                Family::Grid,
                Family::RandomTree,
                Family::RandomConnected,
            ][family];
            let graph = family.instantiate(n, seed);
            let n_actual = graph.node_count() as u32;
            let starts = vec![0, n_actual / 3 + 1, 2 * n_actual / 3 + 1];
            let schedule = match sched {
                0 => WakeSchedule::Simultaneous,
                1 => WakeSchedule::FirstOnly,
                _ => WakeSchedule::Staggered { gap: seed % 7 + 1 },
            };
            let sensing = if traditional {
                Sensing::Traditional
            } else {
                Sensing::Weak
            };
            (graph, starts, seed, schedule, sensing)
        },
    )
}

proptest! {
    /// The static-oracle property: the default engine (the pre-refactor
    /// code path, monomorphized over the zero-cost `Static` view) and the
    /// dynamic machinery running `TopologySpec::Static` produce bitwise
    /// identical outcomes — across families, sensing modes and wake
    /// schedules, with the spec-view run sharing one dirty scratch.
    #[test]
    fn static_spec_view_is_bitwise_identical_to_the_static_engine(
        (graph, starts, seed, schedule, sensing) in scenario_strategy()
    ) {
        thread_local! {
            static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::new());
        }
        prop_assume!(starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]);
        let mut oracle = Engine::new(&graph);
        add_walkers(&mut oracle, &starts, seed, &schedule, sensing);
        let a = oracle.run(500).unwrap();
        let b = SCRATCH.with(|scratch| {
            let mut engine = Engine::with_topology(&graph, &TopologySpec::Static);
            add_walkers(&mut engine, &starts, seed, &schedule, sensing);
            engine.run_with_scratch(500, &mut scratch.borrow_mut()).unwrap()
        });
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        prop_assert_eq!(ta.events(), tb.events());
        prop_assert_eq!(a.blocked_moves, 0);
        prop_assert_eq!(b.blocked_moves, 0);
    }

    /// Replay every dynamic trace against an independently built view:
    /// moves only over present edges, blocks only on absent ones, and the
    /// blocked-move counter matches the trace.
    #[test]
    fn dynamic_traces_respect_edge_presence(
        (graph, starts, seed, schedule, sensing) in scenario_strategy(),
        which in 0usize..3,
    ) {
        prop_assume!(starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]);
        let spec = match which {
            0 => TopologySpec::Periodic(PeriodicEdges { period: 3, offset: seed % 3 }),
            1 => TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.3, seed }),
            _ => TopologySpec::Ring(DynamicRing { seed }),
        };
        prop_assume!(spec.compatible_with(&graph));
        let mut engine = Engine::with_topology(&graph, &spec);
        add_walkers(&mut engine, &starts, seed, &schedule, sensing);
        let outcome = engine.run(500).unwrap();
        let mut replay = spec.view(&graph);
        let mut blocked_seen = 0u64;
        for event in outcome.trace.as_ref().unwrap().events() {
            match *event {
                TraceEvent::Move { round, from, port, .. } => {
                    replay.begin_round(round);
                    prop_assert!(
                        replay.edge_present(from, port),
                        "moved through an absent edge in round {round}"
                    );
                }
                TraceEvent::Blocked { round, node, port, .. } => {
                    replay.begin_round(round);
                    prop_assert!(
                        !replay.edge_present(node, port),
                        "blocked on a present edge in round {round}"
                    );
                    blocked_seen += 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(outcome.trace.as_ref().unwrap().dropped(), 0);
        prop_assert_eq!(outcome.blocked_moves, blocked_seen);
    }

    /// Dynamic runs are themselves deterministic: same spec, same inputs,
    /// same bits.
    #[test]
    fn dynamic_runs_are_deterministic(
        (graph, starts, seed, schedule, sensing) in scenario_strategy()
    ) {
        prop_assume!(starts[0] != starts[1] && starts[1] != starts[2] && starts[0] != starts[2]);
        let spec = TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.25, seed });
        let run = || {
            let mut engine = Engine::with_topology(&graph, &spec);
            add_walkers(&mut engine, &starts, seed, &schedule, sensing);
            engine.run(500).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

/// A dense-outage run actually exercises blocking (the proptests above
/// would hold vacuously if no edge were ever absent).
#[test]
fn heavy_failure_rate_produces_blocked_moves() {
    let graph = Family::Ring.instantiate(6, 1);
    let spec = TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.9, seed: 5 });
    let mut engine = Engine::with_topology(&graph, &spec);
    add_walkers(
        &mut engine,
        &[0, 2, 4],
        7,
        &WakeSchedule::Simultaneous,
        Sensing::Weak,
    );
    let outcome = engine.run(500).unwrap();
    assert!(
        outcome.blocked_moves > 0,
        "a 90% failure rate must block some of the walkers' moves"
    );
}
