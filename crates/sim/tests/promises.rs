//! The `min_wait`/`note_skipped` promise contract, property-tested against
//! every wait combinator the paper's algorithms are built from.
//!
//! The sparse round loop parks an agent for its full `min_wait` horizon and
//! catches it up with one `note_skipped` call, so the whole loop is only as
//! correct as these two guarantees:
//!
//! 1. **The horizon is honest.** After any poll, `min_wait() = h` promises
//!    the next `h` polls under *identical observations* all yield
//!    [`Action::Wait`] — a procedure acting earlier would act later than it
//!    should once parked.
//! 2. **Skipping is polling.** `note_skipped(k)` for any `k <= h` leaves
//!    the procedure in a state indistinguishable from `k` identical polls:
//!    every subsequent poll answer (under arbitrary observations) matches,
//!    as does the remaining `min_wait`.
//!
//! The engine additionally `debug_assert`s guarantee 1 on every poll of the
//! dense loop's promise tracker; these tests pin both guarantees directly
//! at the combinator level, where a violation is easiest to localize.

use std::fmt::Debug;

use proptest::prelude::*;

use nochatter_graph::Port;
use nochatter_sim::proc::{Procedure, RunFor, UntilCardExceeds, WaitCardStable, WaitRounds};
use nochatter_sim::{Action, Obs, Poll};

/// Observations the combinators can distinguish: degree is irrelevant to
/// all of them, `cur_card` is what `UntilCardExceeds`/`WaitCardStable`
/// watch.
fn obs(round: u64, cur_card: u32) -> Obs {
    Obs::synthetic(round, 3, cur_card, Some(Port::new(1)))
}

/// Drives `proc_` through `stream`, and at every step where a positive
/// horizon is promised checks both guarantees against clones. `probe`
/// supplies the arbitrary post-skip observations of guarantee 2.
fn check_promises<P>(mut proc_: P, stream: &[u32], probe: &[u32], skip_frac: u64)
where
    P: Procedure + Clone,
    P::Output: Debug,
{
    for (step, &card) in stream.iter().enumerate() {
        let round = step as u64;
        let o = obs(round, card);
        if matches!(proc_.poll(&o), Poll::Complete(_)) {
            return;
        }

        let h = proc_.min_wait();
        if h == 0 {
            continue;
        }

        // Guarantee 1: the next h identical polls all wait (capped — some
        // horizons are astronomically long by design).
        let mut witness = proc_.clone();
        for n in 0..h.min(50) {
            let w = witness.poll(&obs(round + 1 + n, card));
            assert!(
                matches!(w, Poll::Yield(Action::Wait)),
                "promised to wait {h} rounds but acted after {n}: {w:?}"
            );
        }

        // Guarantee 2: note_skipped(k) == k identical polls, for a k
        // somewhere inside the horizon.
        let k = (h.min(50) * skip_frac.clamp(1, 4)) / 4;
        let mut skipped = proc_.clone();
        skipped.note_skipped(k);
        let mut polled = proc_.clone();
        for n in 0..k {
            let w = polled.poll(&obs(round + 1 + n, card));
            assert!(matches!(w, Poll::Yield(Action::Wait)));
        }
        assert_eq!(
            skipped.min_wait(),
            polled.min_wait(),
            "skipping {k} of {h} promised rounds left a different remaining horizon"
        );
        for (n, &probe_card) in probe.iter().enumerate() {
            let probe_round = round + 1 + k + n as u64;
            let a = skipped.poll(&obs(probe_round, probe_card));
            let b = polled.poll(&obs(probe_round, probe_card));
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "skipped-vs-polled futures diverged {n} probes after the skip"
            );
            if matches!(a, Poll::Complete(_)) {
                break;
            }
        }
    }
}

fn card_stream() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..4, 1..30)
}

proptest! {
    #[test]
    fn wait_rounds_promises_hold(
        rounds in 0u64..120,
        stream in card_stream(),
        probe in card_stream(),
        frac in 1u64..5,
    ) {
        check_promises(WaitRounds::new(rounds), &stream, &probe, frac);
    }

    #[test]
    fn run_for_promises_hold(
        budget in 0u64..80,
        inner in 0u64..120,
        stream in card_stream(),
        probe in card_stream(),
        frac in 1u64..5,
    ) {
        check_promises(RunFor::new(budget, WaitRounds::new(inner)), &stream, &probe, frac);
    }

    #[test]
    fn until_card_exceeds_promises_hold(
        threshold in 0u32..4,
        inner in 0u64..120,
        stream in card_stream(),
        probe in card_stream(),
        frac in 1u64..5,
    ) {
        check_promises(
            UntilCardExceeds::new(threshold, WaitRounds::new(inner)),
            &stream,
            &probe,
            frac,
        );
    }

    #[test]
    fn wait_card_stable_promises_hold(
        window in 1u64..12,
        streak in 0u64..4,
        stream in card_stream(),
        probe in card_stream(),
        frac in 1u64..5,
    ) {
        check_promises(WaitCardStable::new(window, streak, None), &stream, &probe, frac);
    }

    #[test]
    fn nested_combinator_promises_hold(
        budget in 0u64..80,
        threshold in 0u32..4,
        inner in 0u64..120,
        stream in card_stream(),
        probe in card_stream(),
        frac in 1u64..5,
    ) {
        check_promises(
            RunFor::new(budget, UntilCardExceeds::new(threshold, WaitRounds::new(inner))),
            &stream,
            &probe,
            frac,
        );
    }
}
