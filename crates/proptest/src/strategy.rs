//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::{Rejection, TestRng};

/// How many times a filtering strategy retries before rejecting the case.
const FILTER_RETRIES: usize = 256;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: strategies sample directly
/// and failures are reported without shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or rejects the whole case.
    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `f`, retrying a bounded number of times.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Boxes the strategy (compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically typed strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Result<T::Value, Rejection> {
        let mid = self.inner.sample(rng)?;
        (self.f)(mid).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection::new(self.whence.clone()))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                // Widen to i128 so full-domain signed ranges (e.g.
                // i64::MIN..i64::MAX) cannot overflow the subtraction.
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                // Avoid span + 1 overflow when the range covers the whole
                // 64-bit domain.
                if span == u64::MAX {
                    return Ok(rng.next_u64() as $t);
                }
                Ok((start as i128 + rng.below(span + 1) as i128) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn full_domain_signed_ranges_do_not_overflow() {
        let mut rng = TestRng::from_name("full_domain");
        for _ in 0..200 {
            let _ = (i64::MIN..=i64::MAX).sample(&mut rng).unwrap();
            let v = (i32::MIN..i32::MAX).sample(&mut rng).unwrap();
            assert!(v < i32::MAX);
            let _ = (0u64..=u64::MAX).sample(&mut rng).unwrap();
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = (-5i32..7).sample(&mut rng).unwrap();
            assert!((-5..7).contains(&v));
            let w = (3u32..=9).sample(&mut rng).unwrap();
            assert!((3..=9).contains(&w));
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.sample(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
