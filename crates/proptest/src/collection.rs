//! Strategies for collections: `vec`, `btree_set`, `hash_set`.

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::{Rejection, TestRng};

/// How many extra draws a set strategy makes trying to reach its target
/// cardinality before settling for fewer elements.
const SET_FILL_RETRIES: usize = 64;

/// A size or range of sizes for a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates a `Vec` of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
        let len = self.size.pick(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.sample(rng)?);
        }
        Ok(out)
    }
}

/// Generates a `BTreeSet`; duplicates are redrawn a bounded number of
/// times, so the result may end up smaller than the drawn target.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Result<BTreeSet<S::Value>, Rejection> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target + SET_FILL_RETRIES {
            out.insert(self.element.sample(rng)?);
            attempts += 1;
        }
        Ok(out)
    }
}

/// Generates a `HashSet`; duplicates are redrawn a bounded number of times,
/// so the result may end up smaller than the drawn target.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Result<HashSet<S::Value>, Rejection> {
        let target = self.size.pick(rng);
        let mut out = HashSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target + SET_FILL_RETRIES {
            out.insert(self.element.sample(rng)?);
            attempts += 1;
        }
        Ok(out)
    }
}
