//! An offline, API-compatible subset of the [`proptest`] property-testing
//! crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of proptest's surface that the test suites use: the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection`] strategies (`vec`, `btree_set`, `hash_set`),
//! `any::<T>()`, `Just`, `ProptestConfig`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the formatted assertion
//!   message; rerun under the same build to reproduce (generation is
//!   deterministic per test name).
//! * **Deterministic seeding.** The RNG is seeded from the test's name, so
//!   every run of a given binary explores the same cases. This trades
//!   ongoing fuzzing power for reproducibility, which suits a CI gate.
//!
//! Swap this path dependency for the crates.io `proptest` without touching
//! any test code once the environment can fetch registries.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn` body runs once per generated case.
///
/// In test modules, write `#[test]` above each `fn` as with the real
/// crate; the attribute list is passed through verbatim. (This doc example
/// omits it so the function survives the non-test doctest build and can be
/// invoked directly.)
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_proptest(&config, stringify!($name), |__rng| {
                    $(
                        let $pat = match $crate::strategy::Strategy::sample(&($strat), __rng) {
                            ::std::result::Result::Ok(v) => v,
                            ::std::result::Result::Err(r) => {
                                return ::std::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Reject(r),
                                )
                            }
                        };
                    )+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case (without shrinking) if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (does not count towards `cases`) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                $crate::test_runner::Rejection::new(concat!(
                    "assumption failed: ",
                    stringify!($cond)
                )),
            ));
        }
    };
}
