//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::{Rejection, TestRng};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy generating any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type (see [`Arbitrary`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prims {
    ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, $rng: &mut TestRng) -> Result<$t, Rejection> {
                Ok($gen)
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_prims! {
    bool => |rng| rng.bool();
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
}
