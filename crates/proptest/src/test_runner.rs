//! The case runner: deterministic RNG, config, and case outcomes.

use std::fmt;

/// Why a generated case (or a value inside a strategy) was discarded.
#[derive(Clone, Debug)]
pub struct Rejection(String);

impl Rejection {
    /// A rejection with the given human-readable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Rejection(reason.into())
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The outcome of one property-test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case does not apply (`prop_assume!` / filter miss); try another.
    Reject(Rejection),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// Mirror of `proptest::test_runner::Config` for the fields the tests set.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Upper bound on rejected cases across the whole test.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_global_rejects: 4096,
            max_shrink_iters: 0,
        }
    }
}

/// SplitMix64: tiny, high-quality, and identical on every platform.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream deterministically from the test's name so each test
    /// explores a stable, distinct set of cases.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Drives `f` until `config.cases` cases pass, panicking on the first
/// failure. Called by the [`proptest!`](crate::proptest) expansion.
pub fn run_proptest<F>(config: &Config, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many rejected cases ({rejected}); last reason: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {} failed: {msg}", accepted + 1);
            }
        }
    }
}
