//! Error types for graph construction.

use std::error::Error;
use std::fmt;

/// An invalid anonymous port-labeled graph was described.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// An edge endpoint referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The declared node count.
        n: u32,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The node with the loop.
        node: u32,
    },
    /// Two edges connected the same pair of nodes.
    ParallelEdge {
        /// Smaller endpoint.
        u: u32,
        /// Larger endpoint.
        v: u32,
    },
    /// Two edges claimed the same port at one node.
    DuplicatePort {
        /// The node.
        node: u32,
        /// The port claimed twice.
        port: u32,
    },
    /// The ports at a node are not exactly `0..degree`.
    PortGap {
        /// The node.
        node: u32,
        /// The missing port number.
        port: u32,
    },
    /// The graph is not connected.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::ParallelEdge { u, v } => {
                write!(f, "parallel edge between nodes {u} and {v}")
            }
            GraphError::DuplicatePort { node, port } => {
                write!(f, "port {port} used twice at node {node}")
            }
            GraphError::PortGap { node, port } => {
                write!(
                    f,
                    "ports at node {node} are not contiguous: missing port {port}"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl Error for GraphError {}
