//! The core anonymous port-labeled graph representation.

use std::fmt;

use crate::error::GraphError;

/// Identifier of a node, used only by the *simulator* and by generators.
///
/// Agents never observe node identifiers; they exist so that the engine and
/// test assertions can talk about positions. Identifiers are dense indices
/// `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, usable to index per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// A local port number at a node.
///
/// A node of degree `d` has ports `0..d`; taking port `p` traverses the
/// incident edge numbered `p` at that node. Port numbers at the two endpoints
/// of an edge are unrelated.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(u32);

impl Port {
    /// Creates a port from its local number.
    pub fn new(number: u32) -> Self {
        Port(number)
    }

    /// The local port number.
    pub fn number(self) -> u32 {
        self.0
    }

    /// The port number as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Port {
    fn from(number: u32) -> Self {
        Port(number)
    }
}

/// One directed half of an undirected edge, as seen from a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Endpoint {
    /// The node reached through this port.
    to: NodeId,
    /// The port by which the traversal *enters* `to`.
    back: Port,
}

/// An immutable, validated, connected, anonymous port-labeled graph.
///
/// Construct one with [`GraphBuilder`] or one of the [`crate::generators`].
/// Validated invariants:
///
/// * simple (no self-loops, no parallel edges), undirected, connected;
/// * at every node of degree `d`, the incident edges carry exactly the ports
///   `0..d`;
/// * port symmetry: if taking port `p` at `u` leads to `v` entering by `q`,
///   then taking port `q` at `v` leads back to `u` entering by `p`.
///
/// # Representation
///
/// The adjacency is stored in CSR (compressed sparse row) form: one
/// `offsets` array of length `n + 1` and one flat `endpoints` array of
/// length `2m`. Node `u`'s incident edges, in port order, occupy
/// `endpoints[offsets[u]..offsets[u + 1]]`, so `degree` is one subtraction
/// and `neighbor` is one bounds-checked indexed load into a contiguous
/// array — no per-node heap indirection on the simulation hot path.
///
/// # Example
///
/// ```
/// use nochatter_graph::{GraphBuilder, NodeId, Port};
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 0, 1, 0); // node 0 port 0 <-> node 1 port 0
/// b.edge(1, 1, 2, 0);
/// b.edge(2, 1, 0, 1);
/// let g = b.build()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// let (to, entry) = g.neighbor(NodeId::new(0), Port::new(0)).unwrap();
/// assert_eq!(to, NodeId::new(1));
/// assert_eq!(entry, Port::new(0));
/// # Ok::<(), nochatter_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row starts: node `u`'s endpoints live at
    /// `endpoints[offsets[u] as usize..offsets[u + 1] as usize]`.
    offsets: Vec<u32>,
    /// All endpoints, concatenated in node order, port order within a node.
    endpoints: Vec<Endpoint>,
}

impl Graph {
    /// The slice of `node`'s endpoints, indexed by port number.
    #[inline]
    fn row(&self, node: NodeId) -> &[Endpoint] {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.endpoints[lo..hi]
    }

    /// The number of nodes `n` (the paper's "size of the graph").
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.endpoints.len() / 2
    }

    /// The degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn degree(&self, node: NodeId) -> u32 {
        self.offsets[node.index() + 1] - self.offsets[node.index()]
    }

    /// The largest degree in the graph.
    pub fn max_degree(&self) -> u32 {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// The node and entry port reached by taking `port` at `node`, or `None`
    /// if `port` is not a valid port of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbor(&self, node: NodeId, port: Port) -> Option<(NodeId, Port)> {
        self.row(node).get(port.index()).map(|e| (e.to, e.back))
    }

    /// Iterates over `node`'s incident edges in port order, yielding the
    /// reached node and its entry port — one contiguous CSR row scan,
    /// cheaper than `neighbor` in a `0..degree` loop.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Port)> + '_ {
        self.row(node).iter().map(|e| (e.to, e.back))
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Whether `node` is a valid node of this graph.
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph(n={}):", self.node_count())?;
        for u in self.nodes() {
            write!(f, "  n{}:", u.index())?;
            for (p, e) in self.row(u).iter().enumerate() {
                write!(f, " {p}->{}@{}", e.to, e.back)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Graph`].
///
/// Add undirected edges with explicit port numbers at both endpoints, then
/// call [`GraphBuilder::build`] to validate. See [`Graph`] for an example.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32, u32, u32)>,
}

impl GraphBuilder {
    /// Starts building a graph with `n` nodes and no edges.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}` with port `pu` at `u` and `pv` at
    /// `v`. Returns `&mut self` for chaining.
    pub fn edge(&mut self, u: u32, pu: u32, v: u32, pv: u32) -> &mut Self {
        self.edges.push((u, pu, v, pv));
        self
    }

    /// Validates the accumulated edges and produces the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph has fewer than one node, a
    /// self-loop, parallel edges, an endpoint or port out of range, ports
    /// that are not exactly `0..degree` at some node, or is disconnected.
    pub fn build(&self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        let n = self.n as usize;
        let mut slots: Vec<Vec<Option<Endpoint>>> = vec![Vec::new(); n];
        let mut seen_pairs = std::collections::HashSet::new();
        for &(u, pu, v, pv) in &self.edges {
            if u >= self.n || v >= self.n {
                return Err(GraphError::NodeOutOfRange {
                    node: u.max(v),
                    n: self.n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen_pairs.insert(key) {
                return Err(GraphError::ParallelEdge { u: key.0, v: key.1 });
            }
            for &(a, pa, b, pb) in &[(u, pu, v, pv), (v, pv, u, pu)] {
                let row = &mut slots[a as usize];
                let idx = pa as usize;
                if row.len() <= idx {
                    row.resize(idx + 1, None);
                }
                if row[idx].is_some() {
                    return Err(GraphError::DuplicatePort { node: a, port: pa });
                }
                row[idx] = Some(Endpoint {
                    to: NodeId::new(b),
                    back: Port::new(pb),
                });
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut endpoints = Vec::with_capacity(2 * self.edges.len());
        offsets.push(0);
        for (u, row) in slots.into_iter().enumerate() {
            for (p, slot) in row.into_iter().enumerate() {
                match slot {
                    Some(e) => endpoints.push(e),
                    None => {
                        return Err(GraphError::PortGap {
                            node: u as u32,
                            port: p as u32,
                        })
                    }
                }
            }
            offsets.push(endpoints.len() as u32);
        }
        let graph = Graph { offsets, endpoints };
        if !crate::algo::is_connected(&graph) {
            return Err(GraphError::Disconnected);
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Graph {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 0, 1, 0);
        b.build().unwrap()
    }

    #[test]
    fn two_node_graph_is_symmetric() {
        let g = two_node();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.neighbor(NodeId::new(0), Port::new(0)),
            Some((NodeId::new(1), Port::new(0)))
        );
        assert_eq!(
            g.neighbor(NodeId::new(1), Port::new(0)),
            Some((NodeId::new(0), Port::new(0)))
        );
    }

    #[test]
    fn invalid_port_is_none() {
        let g = two_node();
        assert_eq!(g.neighbor(NodeId::new(0), Port::new(1)), None);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            GraphBuilder::new(0).build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 0, 0, 1);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop { node: 0 })));
    }

    #[test]
    fn rejects_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 0, 1, 0).edge(1, 1, 0, 1);
        assert!(matches!(b.build(), Err(GraphError::ParallelEdge { .. })));
    }

    #[test]
    fn rejects_port_gap() {
        let mut b = GraphBuilder::new(3);
        // Node 0 uses ports 0 and 2, leaving a gap at 1.
        b.edge(0, 0, 1, 0).edge(0, 2, 2, 0).edge(1, 1, 2, 1);
        assert!(matches!(
            b.build(),
            Err(GraphError::PortGap { node: 0, port: 1 })
        ));
    }

    #[test]
    fn rejects_duplicate_port() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 0, 1, 0).edge(0, 0, 2, 0);
        assert!(matches!(
            b.build(),
            Err(GraphError::DuplicatePort { node: 0, port: 0 })
        ));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 0, 1, 0).edge(2, 0, 3, 0);
        assert!(matches!(b.build(), Err(GraphError::Disconnected)));
    }

    #[test]
    fn rejects_node_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 0, 5, 0);
        assert!(matches!(b.build(), Err(GraphError::NodeOutOfRange { .. })));
    }

    #[test]
    fn debug_rendering_is_nonempty() {
        let g = two_node();
        let s = format!("{g:?}");
        assert!(s.contains("Graph(n=2)"));
        assert!(format!("{:?}", NodeId::new(3)).contains("n3"));
        assert!(format!("{:?}", Port::new(2)).contains("p2"));
    }
}
