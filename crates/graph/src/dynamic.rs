//! Round-varying topologies over a static base graph.
//!
//! The paper's model assumes a static unknown network, but the gathering
//! literature it sits in has moved on to *dynamic* topologies: *Gathering
//! in Dynamic Rings* (Di Luna, Dobrev, Flocchini & Santoro) studies the
//! same problem under an adversary that removes one ring edge per round
//! while keeping the graph connected (*1-interval connectivity*), and the
//! ad-hoc radio gathering line (Chrobak & Costello) treats link
//! availability as adversarial. This module opens that scenario axis
//! without touching the base [`Graph`] representation:
//!
//! * a [`Topology`] is a plain-data *provider* describing how edge
//!   presence varies over rounds ([`Static`], [`PeriodicEdges`],
//!   [`SeededEdgeFailure`], [`DynamicRing`]);
//! * a [`TopologyView`] is the per-run object the simulation engine
//!   consults: advanced once per executed round, queried once per move
//!   attempt;
//! * [`TopologySpec`] is the serializable description threaded through
//!   scenario harnesses, with [`TopologySpec::view`] producing a single
//!   concrete enum-dispatch view ([`SpecView`]) so the engine needs only
//!   two monomorphizations — the zero-cost static one and the dynamic one.
//!
//! The node set, the port numbering and every node's *degree* are fixed by
//! the base graph; only edge *presence* varies. An agent taking a port
//! whose edge is absent this round stays put and observes `blocked: true`
//! next round — absence is discovered by attempting, never announced
//! (matching the radio-gathering model, where a silent link is
//! indistinguishable from an unused one until tried).
//!
//! Presence is a **pure function of the round number**: views receive the
//! absolute round via [`TopologyView::begin_round`] and must answer
//! identically however that round was reached. The engine's quiescence
//! fast-forward jumps over stretches in which every agent waits, so a view
//! keeping incremental per-round state would silently desynchronize.
//!
//! # Example
//!
//! ```
//! use nochatter_graph::dynamic::{DynamicRing, Topology, TopologyView};
//! use nochatter_graph::{generators, NodeId, Port};
//!
//! let ring = generators::ring(5);
//! let mut view = DynamicRing { seed: 7 }.view(&ring);
//! view.begin_round(0);
//! // Exactly one of the five ring edges is absent this round.
//! let present = ring
//!     .nodes()
//!     .map(|u| u32::from(view.edge_present(u, Port::new(1))))
//!     .sum::<u32>();
//! assert_eq!(present, 4);
//! ```

use crate::graph::{Graph, NodeId, Port};
use crate::rng::derive_seed;

/// A per-run view of which base-graph edges are present each round.
///
/// The engine advances the view with [`TopologyView::begin_round`] once per
/// *executed* round and queries [`TopologyView::edge_present`] once per
/// move attempt. Contract:
///
/// * rounds passed to `begin_round` are strictly increasing but may jump
///   (the engine fast-forwards provably quiet stretches), so presence must
///   be a pure function of the round number;
/// * `edge_present` is only called for `(node, port)` pairs that are valid
///   in the base graph, and must answer the same for both directed halves
///   of an undirected edge.
pub trait TopologyView {
    /// Advances the view to the given absolute round.
    fn begin_round(&mut self, round: u64);

    /// Whether the edge behind `(from, port)` is present in the current
    /// round.
    fn edge_present(&self, from: NodeId, port: Port) -> bool;
}

/// A round-varying topology *provider*: plain data describing the dynamics,
/// turned into a per-run [`TopologyView`] over a concrete base graph.
pub trait Topology {
    /// The view type this provider yields.
    type View: TopologyView;

    /// Builds the per-run view over `graph`.
    fn view(&self, graph: &Graph) -> Self::View;
}

/// The static topology: every edge is present in every round.
///
/// This is the default of the simulation engine; its `edge_present` is a
/// constant `true` the optimizer folds away, so an engine monomorphized
/// over `Static` compiles to exactly the pre-dynamic code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Static;

impl TopologyView for Static {
    #[inline(always)]
    fn begin_round(&mut self, _round: u64) {}

    #[inline(always)]
    fn edge_present(&self, _from: NodeId, _port: Port) -> bool {
        true
    }
}

impl Topology for Static {
    type View = Static;

    fn view(&self, _graph: &Graph) -> Static {
        Static
    }
}

/// Dense undirected edge identifiers for a base graph, indexable by a
/// `(node, port)` pair in O(1).
///
/// Edges are numbered `0..m` in the order their first directed half appears
/// scanning nodes (and ports within a node) in increasing order — a pure
/// function of the graph, so every view over the same graph agrees on ids.
#[derive(Clone, Debug)]
struct EdgeIds {
    /// CSR-style row starts into `ids` (recomputed from degrees).
    offsets: Vec<u32>,
    /// Undirected edge id of each directed `(node, port)` slot.
    ids: Vec<u32>,
}

impl EdgeIds {
    fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for u in graph.nodes() {
            offsets.push(offsets[u.index()] + graph.degree(u));
        }
        let total = offsets[n] as usize;
        let mut ids = vec![u32::MAX; total];
        let mut next = 0u32;
        for u in graph.nodes() {
            for (p, (v, back)) in graph.neighbors(u).enumerate() {
                let slot = offsets[u.index()] as usize + p;
                if ids[slot] == u32::MAX {
                    ids[slot] = next;
                    ids[offsets[v.index()] as usize + back.index()] = next;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next as usize, graph.edge_count());
        EdgeIds { offsets, ids }
    }

    #[inline]
    fn id(&self, from: NodeId, port: Port) -> u32 {
        self.ids[self.offsets[from.index()] as usize + port.index()]
    }
}

/// A rotating periodic outage: in round `r`, edge `e` (by dense edge id) is
/// absent iff `(r + e) % period == offset`.
///
/// Every edge is absent exactly once per `period` rounds and roughly
/// `m / period` edges are absent in any one round, so the adversary is
/// relentless but fair — no edge is ever permanently lost (for
/// `period >= 2`; a period of 1 removes every edge every round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodicEdges {
    /// The outage period in rounds (must be >= 1).
    pub period: u64,
    /// The phase of the outage within the period.
    pub offset: u64,
}

/// The per-run view of [`PeriodicEdges`].
#[derive(Clone, Debug)]
pub struct PeriodicView {
    ids: EdgeIds,
    period: u64,
    offset: u64,
    round: u64,
}

impl TopologyView for PeriodicView {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        self.round = round;
    }

    #[inline]
    fn edge_present(&self, from: NodeId, port: Port) -> bool {
        let e = u64::from(self.ids.id(from, port));
        self.round.wrapping_add(e) % self.period != self.offset
    }
}

impl Topology for PeriodicEdges {
    type View = PeriodicView;

    /// # Panics
    ///
    /// Panics if `period` is 0.
    fn view(&self, graph: &Graph) -> PeriodicView {
        assert!(self.period >= 1, "PeriodicEdges period must be >= 1");
        PeriodicView {
            ids: EdgeIds::new(graph),
            period: self.period,
            offset: self.offset % self.period,
            round: 0,
        }
    }
}

/// Independent seeded edge failures: in every round, every edge is absent
/// with probability `p`, independently across `(edge, round)` pairs.
///
/// Failure is derived from `(seed, round, edge id)` through the library's
/// deterministic seed derivation, so a run is bit-reproducible on every
/// platform and unaffected by how (or whether) earlier rounds were
/// queried.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeededEdgeFailure {
    /// Per-round, per-edge failure probability, clamped to `[0, 1]`.
    pub p: f64,
    /// The adversary's seed.
    pub seed: u64,
}

/// The per-run view of [`SeededEdgeFailure`].
#[derive(Clone, Debug)]
pub struct FailureView {
    ids: EdgeIds,
    /// `p` mapped onto the `u64` range: an edge fails iff its per-round
    /// hash lands below this threshold.
    threshold: u64,
    seed: u64,
    round: u64,
}

impl TopologyView for FailureView {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        self.round = round;
    }

    #[inline]
    fn edge_present(&self, from: NodeId, port: Port) -> bool {
        let e = u64::from(self.ids.id(from, port));
        derive_seed(self.seed, &[self.round, e]) >= self.threshold
    }
}

impl Topology for SeededEdgeFailure {
    type View = FailureView;

    fn view(&self, graph: &Graph) -> FailureView {
        // The saturating f64 -> u64 cast sends p >= 1 to u64::MAX (all but
        // one hash in 2^64 fails) and p <= 0 to 0 (no edge ever fails).
        let threshold = (self.p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        FailureView {
            ids: EdgeIds::new(graph),
            threshold,
            seed: self.seed,
            round: 0,
        }
    }
}

/// The 1-interval-connected dynamic ring of Di Luna et al.: each round the
/// adversary removes exactly one edge of a ring base graph (a seeded choice
/// per round), leaving a connected path.
///
/// Requires the base graph to be a cycle — use
/// [`is_cycle`] (or [`TopologySpec::compatible_with`]) to check before
/// building the view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynamicRing {
    /// The adversary's seed (chooses the removed edge each round).
    pub seed: u64,
}

/// The per-run view of [`DynamicRing`].
#[derive(Clone, Debug)]
pub struct RingView {
    ids: EdgeIds,
    edge_count: u64,
    seed: u64,
    removed: u32,
}

impl TopologyView for RingView {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        self.removed = (derive_seed(self.seed, &[round]) % self.edge_count) as u32;
    }

    #[inline]
    fn edge_present(&self, from: NodeId, port: Port) -> bool {
        self.ids.id(from, port) != self.removed
    }
}

impl Topology for DynamicRing {
    type View = RingView;

    /// # Panics
    ///
    /// Panics if the base graph is not a cycle.
    fn view(&self, graph: &Graph) -> RingView {
        assert!(
            is_cycle(graph),
            "DynamicRing requires a cycle base graph (n nodes, n edges, all degrees 2)"
        );
        let mut view = RingView {
            ids: EdgeIds::new(graph),
            edge_count: graph.edge_count() as u64,
            seed: self.seed,
            removed: 0,
        };
        view.begin_round(0);
        view
    }
}

/// The scripted dynamic ring: an *explicit* per-round removal schedule
/// over a cycle base graph — the choice-list form of [`DynamicRing`].
///
/// Where [`DynamicRing`] derives its removed edge from a seed (an
/// *oblivious* adversary), `ScriptedRing` spells out the adversary's
/// choice for every round: in round `r` the edge with dense id
/// `script[r % script.len()]` is absent ([`ScriptedRing::KEEP_ALL`] = no
/// removal that round). This is the representation adversary *search*
/// needs — each slot is one coordinate a local-search step can mutate —
/// while staying a pure function of the round number, so the engine's
/// quiescence fast-forward remains sound and a found witness replays
/// bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptedRing {
    /// Removed dense edge id per round slot (cycled); must be non-empty,
    /// and every entry must be [`ScriptedRing::KEEP_ALL`] or a valid edge
    /// id of the base graph.
    pub script: Vec<u32>,
}

impl ScriptedRing {
    /// Script entry meaning "no edge removed this round" (never a valid
    /// dense edge id).
    pub const KEEP_ALL: u32 = u32::MAX;

    /// Whether the script can run over `graph`: non-empty, cycle base
    /// graph, every entry a valid edge id or [`ScriptedRing::KEEP_ALL`].
    pub fn valid_for(&self, graph: &Graph) -> bool {
        !self.script.is_empty()
            && is_cycle(graph)
            && self
                .script
                .iter()
                .all(|&e| e == Self::KEEP_ALL || (e as usize) < graph.edge_count())
    }
}

/// The per-run view of [`ScriptedRing`].
#[derive(Clone, Debug)]
pub struct ScriptedView {
    ids: EdgeIds,
    script: Vec<u32>,
    removed: u32,
}

impl TopologyView for ScriptedView {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        let slot = (round % self.script.len() as u64) as usize;
        self.removed = self.script[slot];
    }

    #[inline]
    fn edge_present(&self, from: NodeId, port: Port) -> bool {
        // Dense edge ids are < m < u32::MAX, so a KEEP_ALL slot removes
        // nothing.
        self.ids.id(from, port) != self.removed
    }
}

impl Topology for ScriptedRing {
    type View = ScriptedView;

    /// # Panics
    ///
    /// Panics if the script is invalid for `graph` (see
    /// [`ScriptedRing::valid_for`]).
    fn view(&self, graph: &Graph) -> ScriptedView {
        assert!(
            self.valid_for(graph),
            "ScriptedRing requires a non-empty script of valid edge ids over a cycle base graph"
        );
        let mut view = ScriptedView {
            ids: EdgeIds::new(graph),
            script: self.script.clone(),
            removed: ScriptedRing::KEEP_ALL,
        };
        view.begin_round(0);
        view
    }
}

/// Whether `graph` is a cycle (the only base shape [`DynamicRing`]
/// accepts): `n` nodes, `n` edges, every degree 2. Connectivity is already
/// a [`Graph`] invariant.
pub fn is_cycle(graph: &Graph) -> bool {
    graph.edge_count() == graph.node_count() && graph.nodes().all(|u| graph.degree(u) == 2)
}

/// A serializable description of a round-varying topology — the value
/// scenario harnesses thread through their execution axes.
///
/// `TopologySpec` is itself a [`Topology`] whose view is the enum-dispatch
/// [`SpecView`], so one engine monomorphization covers every dynamic
/// provider; harnesses special-case [`TopologySpec::Static`] onto the
/// zero-cost [`Static`] view.
#[derive(Clone, Debug, Default, PartialEq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// The static base graph (the paper's model).
    #[default]
    Static,
    /// Rotating periodic outages.
    Periodic(PeriodicEdges),
    /// Independent seeded edge failures.
    EdgeFailure(SeededEdgeFailure),
    /// The 1-interval-connected dynamic ring adversary.
    Ring(DynamicRing),
    /// The explicit per-round-removal ring adversary (the choice-list form
    /// adversary search mutates one slot at a time).
    Scripted(ScriptedRing),
}

impl TopologySpec {
    /// Whether this is the static topology (the zero-cost engine path).
    pub fn is_static(&self) -> bool {
        matches!(self, TopologySpec::Static)
    }

    /// Whether the spec can run over `graph` ([`DynamicRing`] requires a
    /// cycle, [`ScriptedRing`] a cycle plus in-range edge ids; everything
    /// else accepts any base graph).
    pub fn compatible_with(&self, graph: &Graph) -> bool {
        match self {
            TopologySpec::Ring(_) => is_cycle(graph),
            TopologySpec::Scripted(s) => s.valid_for(graph),
            _ => true,
        }
    }

    /// A short, key-safe name (`"static"`, `"per7.0"`, `"ef100@9"`,
    /// `"dring@9"`, `"sring0.2.x"`) used as the dynamism axis of scenario
    /// keys. Failure probabilities are rendered in permille; scripted
    /// removal slots are dot-joined with `x` for "keep all edges".
    pub fn short_name(&self) -> String {
        match self {
            TopologySpec::Static => "static".into(),
            TopologySpec::Periodic(p) => format!("per{}.{}", p.period, p.offset),
            TopologySpec::EdgeFailure(f) => {
                format!(
                    "ef{}@{}",
                    (f.p.clamp(0.0, 1.0) * 1000.0).round() as u64,
                    f.seed
                )
            }
            TopologySpec::Ring(r) => format!("dring@{}", r.seed),
            TopologySpec::Scripted(s) => format!(
                "sring{}",
                s.script
                    .iter()
                    .map(|&e| if e == ScriptedRing::KEEP_ALL {
                        "x".into()
                    } else {
                        e.to_string()
                    })
                    .collect::<Vec<_>>()
                    .join(".")
            ),
        }
    }
}

impl Topology for TopologySpec {
    type View = SpecView;

    /// # Panics
    ///
    /// Panics if the spec is incompatible with `graph` (see
    /// [`TopologySpec::compatible_with`]).
    fn view(&self, graph: &Graph) -> SpecView {
        match self {
            TopologySpec::Static => SpecView::Static,
            TopologySpec::Periodic(p) => SpecView::Periodic(p.view(graph)),
            TopologySpec::EdgeFailure(f) => SpecView::Failure(f.view(graph)),
            TopologySpec::Ring(r) => SpecView::Ring(r.view(graph)),
            TopologySpec::Scripted(s) => SpecView::Scripted(s.view(graph)),
        }
    }
}

/// The enum-dispatch view behind [`TopologySpec`]: one concrete
/// [`TopologyView`] type covering every provider, so the simulation engine
/// needs a single dynamic monomorphization.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SpecView {
    /// All edges always present.
    Static,
    /// See [`PeriodicEdges`].
    Periodic(PeriodicView),
    /// See [`SeededEdgeFailure`].
    Failure(FailureView),
    /// See [`DynamicRing`].
    Ring(RingView),
    /// See [`ScriptedRing`].
    Scripted(ScriptedView),
}

impl TopologyView for SpecView {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        match self {
            SpecView::Static => {}
            SpecView::Periodic(v) => v.begin_round(round),
            SpecView::Failure(v) => v.begin_round(round),
            SpecView::Ring(v) => v.begin_round(round),
            SpecView::Scripted(v) => v.begin_round(round),
        }
    }

    #[inline]
    fn edge_present(&self, from: NodeId, port: Port) -> bool {
        match self {
            SpecView::Static => true,
            SpecView::Periodic(v) => v.edge_present(from, port),
            SpecView::Failure(v) => v.edge_present(from, port),
            SpecView::Ring(v) => v.edge_present(from, port),
            SpecView::Scripted(v) => v.edge_present(from, port),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Presence of every directed half of every edge in one round.
    fn presence_map<V: TopologyView>(g: &Graph, view: &mut V, round: u64) -> Vec<bool> {
        view.begin_round(round);
        let mut out = Vec::new();
        for u in g.nodes() {
            for p in 0..g.degree(u) {
                out.push(view.edge_present(u, Port::new(p)));
            }
        }
        out
    }

    #[test]
    fn edge_ids_are_symmetric_and_dense() {
        for g in [
            generators::ring(6),
            generators::complete(5),
            generators::random_connected(12, 18, 3),
        ] {
            let ids = EdgeIds::new(&g);
            let mut seen = vec![0u32; g.edge_count()];
            for u in g.nodes() {
                for (p, (v, back)) in g.neighbors(u).enumerate() {
                    let here = ids.id(u, Port::new(p as u32));
                    let there = ids.id(v, back);
                    assert_eq!(here, there, "edge id must match from both ends");
                    assert!((here as usize) < g.edge_count());
                    seen[here as usize] += 1;
                }
            }
            // Every undirected edge id is hit exactly twice (once per half).
            assert!(seen.iter().all(|&c| c == 2), "{seen:?}");
        }
    }

    #[test]
    fn static_view_is_always_present() {
        let g = generators::ring(4);
        let mut v = Static.view(&g);
        assert!(presence_map(&g, &mut v, 0).iter().all(|&b| b));
        assert!(presence_map(&g, &mut v, u64::MAX).iter().all(|&b| b));
    }

    #[test]
    fn periodic_rotates_and_repeats() {
        let g = generators::ring(6);
        let spec = PeriodicEdges {
            period: 3,
            offset: 1,
        };
        let mut v = spec.view(&g);
        // Pure function of the round: same round, same presence, even after
        // jumping around (the fast-forward contract).
        let r2 = presence_map(&g, &mut v, 2);
        let r5 = presence_map(&g, &mut v, 5);
        let _ = presence_map(&g, &mut v, 1000);
        assert_eq!(presence_map(&g, &mut v, 2), r2);
        // One full period apart, the pattern repeats.
        assert_eq!(r2, r5);
        // Exactly m / period = 2 edges (4 directed halves) absent per round.
        assert_eq!(r2.iter().filter(|&&b| !b).count(), 4);
        // Each edge is absent at some round within the period.
        let mut ever_absent = vec![false; r2.len()];
        for round in 0..3 {
            for (slot, present) in presence_map(&g, &mut v, round).iter().enumerate() {
                ever_absent[slot] |= !present;
            }
        }
        assert!(ever_absent.iter().all(|&b| b));
    }

    #[test]
    fn seeded_failure_matches_probability_and_is_pure() {
        let g = generators::complete(8); // 28 edges
        let spec = SeededEdgeFailure { p: 0.25, seed: 9 };
        let mut v = spec.view(&g);
        let r7 = presence_map(&g, &mut v, 7);
        let _ = presence_map(&g, &mut v, 123);
        assert_eq!(presence_map(&g, &mut v, 7), r7, "pure in the round");
        let mut absent = 0u64;
        let mut total = 0u64;
        for round in 0..200 {
            let m = presence_map(&g, &mut v, round);
            absent += m.iter().filter(|&&b| !b).count() as u64;
            total += m.len() as u64;
        }
        let rate = absent as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical failure rate {rate}");
        // Extremes.
        let mut none = SeededEdgeFailure { p: 0.0, seed: 9 }.view(&g);
        assert!(presence_map(&g, &mut none, 3).iter().all(|&b| b));
        let mut all = SeededEdgeFailure { p: 1.0, seed: 9 }.view(&g);
        assert!(presence_map(&g, &mut all, 3).iter().all(|&b| !b));
    }

    #[test]
    fn dynamic_ring_removes_exactly_one_edge_per_round() {
        let g = generators::ring(7);
        let mut v = DynamicRing { seed: 4 }.view(&g);
        let mut removed_ids = std::collections::HashSet::new();
        for round in 0..50 {
            let m = presence_map(&g, &mut v, round);
            // One undirected edge = two absent directed halves.
            assert_eq!(m.iter().filter(|&&b| !b).count(), 2, "round {round}");
            v.begin_round(round);
            removed_ids.insert(v.removed);
        }
        // The seeded adversary varies its choice over rounds.
        assert!(removed_ids.len() > 1, "adversary never moved its removal");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn dynamic_ring_rejects_non_cycles() {
        let g = generators::path(4);
        let _ = DynamicRing { seed: 1 }.view(&g);
    }

    #[test]
    fn scripted_ring_follows_its_script_and_is_pure() {
        let g = generators::ring(5);
        let spec = ScriptedRing {
            script: vec![0, 3, ScriptedRing::KEEP_ALL],
        };
        let mut v = spec.view(&g);
        // Round r removes script[r % 3]; a KEEP_ALL slot removes nothing.
        for round in 0..12 {
            let m = presence_map(&g, &mut v, round);
            let expected_absent = if round % 3 == 2 { 0 } else { 2 };
            assert_eq!(
                m.iter().filter(|&&b| !b).count(),
                expected_absent,
                "round {round}"
            );
        }
        // Pure function of the round: jumping around changes nothing (the
        // fast-forward contract).
        let r4 = presence_map(&g, &mut v, 4);
        let _ = presence_map(&g, &mut v, 1000);
        assert_eq!(presence_map(&g, &mut v, 4), r4);
    }

    #[test]
    fn scripted_ring_validity() {
        let ring = generators::ring(5);
        let keep = ScriptedRing::KEEP_ALL;
        assert!(ScriptedRing { script: vec![0, 4] }.valid_for(&ring));
        assert!(ScriptedRing { script: vec![keep] }.valid_for(&ring));
        // Empty script, out-of-range edge id, non-cycle base: all invalid.
        assert!(!ScriptedRing { script: vec![] }.valid_for(&ring));
        assert!(!ScriptedRing { script: vec![5] }.valid_for(&ring));
        assert!(!ScriptedRing { script: vec![0] }.valid_for(&generators::path(4)));
        let spec = TopologySpec::Scripted(ScriptedRing { script: vec![0] });
        assert!(spec.compatible_with(&ring));
        assert!(!spec.compatible_with(&generators::path(4)));
        assert!(!spec.is_static());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn scripted_ring_rejects_invalid_scripts() {
        let _ = ScriptedRing { script: vec![9] }.view(&generators::ring(4));
    }

    #[test]
    fn scripted_ring_short_name_is_key_safe() {
        let spec = TopologySpec::Scripted(ScriptedRing {
            script: vec![1, ScriptedRing::KEEP_ALL, 0],
        });
        assert_eq!(spec.short_name(), "sring1.x.0");
    }

    #[test]
    fn cycle_detection() {
        assert!(is_cycle(&generators::ring(3)));
        assert!(is_cycle(&generators::ring(9)));
        assert!(!is_cycle(&generators::path(4)));
        assert!(!is_cycle(&generators::complete(4)));
        assert!(!is_cycle(&generators::star(5)));
    }

    #[test]
    fn spec_view_agrees_with_concrete_views() {
        let g = generators::ring(6);
        let provider = SeededEdgeFailure { p: 0.3, seed: 11 };
        let mut concrete = provider.view(&g);
        let mut spec = TopologySpec::EdgeFailure(provider).view(&g);
        for round in [0, 1, 5, 100] {
            assert_eq!(
                presence_map(&g, &mut concrete, round),
                presence_map(&g, &mut spec, round)
            );
        }
    }

    #[test]
    fn spec_names_and_compatibility() {
        assert_eq!(TopologySpec::Static.short_name(), "static");
        assert!(TopologySpec::Static.is_static());
        assert_eq!(
            TopologySpec::Periodic(PeriodicEdges {
                period: 7,
                offset: 0
            })
            .short_name(),
            "per7.0"
        );
        assert_eq!(
            TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.1, seed: 9 }).short_name(),
            "ef100@9"
        );
        let dring = TopologySpec::Ring(DynamicRing { seed: 9 });
        assert_eq!(dring.short_name(), "dring@9");
        assert!(dring.compatible_with(&generators::ring(5)));
        assert!(!dring.compatible_with(&generators::path(5)));
        assert!(TopologySpec::Static.compatible_with(&generators::path(5)));
    }
}
