//! Initial configurations: a graph together with labeled start nodes.
//!
//! An *initial configuration* (paper §4.2) is the complete map of a network
//! with all port numbers, in which a node `v` is labeled `L` iff `v` is the
//! starting node of the agent labeled `L`. These objects play two roles:
//!
//! * as the **scenario** handed to the simulation engine (where agents
//!   actually start), and
//! * as the **hypotheses** `φ_h` enumerated by the unknown-upper-bound
//!   algorithm, which agents reason about without any access to the real
//!   network.

use std::error::Error;
use std::fmt;

use crate::algo;
use crate::graph::{Graph, NodeId, Port};

/// An agent label: a positive integer, unique per agent.
///
/// # Example
///
/// ```
/// use nochatter_graph::Label;
///
/// let l = Label::new(6).unwrap();
/// assert_eq!(l.bit_len(), 3);
/// assert_eq!(l.bits(), vec![true, true, false]); // 110
/// assert!(Label::new(0).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u64);

impl Label {
    /// Creates a label; labels are positive, so `0` yields `None`.
    pub fn new(value: u64) -> Option<Self> {
        if value == 0 {
            None
        } else {
            Some(Label(value))
        }
    }

    /// The numeric value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The length `ℓ` of the binary representation (no leading zeros).
    pub fn bit_len(self) -> u32 {
        64 - self.0.leading_zeros()
    }

    /// The binary representation, most significant bit first.
    pub fn bits(self) -> Vec<bool> {
        let len = self.bit_len();
        (0..len).rev().map(|i| (self.0 >> i) & 1 == 1).collect()
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An invalid initial configuration was described.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Fewer than two labeled nodes (the model assumes at least two agents).
    TooFewAgents,
    /// More labeled nodes than graph nodes, or a start node out of range.
    StartOutOfRange,
    /// Two agents share a start node (the model forbids this).
    SharedStart,
    /// Two agents share a label.
    DuplicateLabel,
    /// The graph has fewer than two nodes.
    GraphTooSmall,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewAgents => write!(f, "configuration needs at least 2 agents"),
            ConfigError::StartOutOfRange => write!(f, "start node out of range"),
            ConfigError::SharedStart => write!(f, "two agents share a start node"),
            ConfigError::DuplicateLabel => write!(f, "two agents share a label"),
            ConfigError::GraphTooSmall => write!(f, "graph needs at least 2 nodes"),
        }
    }
}

impl Error for ConfigError {}

/// A validated initial configuration: a connected port-labeled graph plus at
/// least two labeled start nodes with distinct labels and distinct nodes.
///
/// # Example
///
/// ```
/// use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
///
/// let g = generators::ring(5);
/// let cfg = InitialConfiguration::new(
///     g,
///     vec![
///         (Label::new(9).unwrap(), NodeId::new(0)),
///         (Label::new(4).unwrap(), NodeId::new(2)),
///     ],
/// )?;
/// assert_eq!(cfg.agent_count(), 2);
/// assert_eq!(cfg.smallest_label(), Label::new(4).unwrap());
/// assert_eq!(cfg.central_node(), NodeId::new(2));
/// assert_eq!(cfg.rank(Label::new(9).unwrap()), Some(1));
/// # Ok::<(), nochatter_graph::ConfigError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InitialConfiguration {
    /// Shared: cloning a configuration (or handing its graph to a
    /// behavior that needs shared ownership, see
    /// [`InitialConfiguration::graph_arc`]) never copies the graph itself.
    graph: std::sync::Arc<Graph>,
    /// Sorted by label.
    agents: Vec<(Label, NodeId)>,
}

impl InitialConfiguration {
    /// Validates and builds a configuration.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for each rejected shape.
    pub fn new(graph: Graph, mut agents: Vec<(Label, NodeId)>) -> Result<Self, ConfigError> {
        if graph.node_count() < 2 {
            return Err(ConfigError::GraphTooSmall);
        }
        if agents.len() < 2 {
            return Err(ConfigError::TooFewAgents);
        }
        if agents.len() > graph.node_count() {
            return Err(ConfigError::StartOutOfRange);
        }
        agents.sort_by_key(|&(l, _)| l);
        for w in agents.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ConfigError::DuplicateLabel);
            }
        }
        let mut nodes: Vec<NodeId> = agents.iter().map(|&(_, v)| v).collect();
        nodes.sort();
        for w in nodes.windows(2) {
            if w[0] == w[1] {
                return Err(ConfigError::SharedStart);
            }
        }
        if agents.iter().any(|&(_, v)| !graph.contains(v)) {
            return Err(ConfigError::StartOutOfRange);
        }
        Ok(InitialConfiguration {
            graph: std::sync::Arc::new(graph),
            agents,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared ownership of the underlying graph — an `Arc` clone, never a
    /// graph copy. This is what behaviors that outlive the borrow (the
    /// unknown-bound position oracle, the gossip runners) hold; the graph
    /// is put behind the `Arc` once, when the configuration is built.
    pub fn graph_arc(&self) -> std::sync::Arc<Graph> {
        std::sync::Arc::clone(&self.graph)
    }

    /// The graph size `n`.
    pub fn size(&self) -> usize {
        self.graph.node_count()
    }

    /// The number of agents `k`.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The `(label, start node)` pairs in increasing label order.
    pub fn agents(&self) -> &[(Label, NodeId)] {
        &self.agents
    }

    /// The labels in increasing order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.agents.iter().map(|&(l, _)| l)
    }

    /// Whether `label` belongs to the configuration (the paper's `L_x`).
    pub fn contains_label(&self, label: Label) -> bool {
        self.agents
            .binary_search_by_key(&label, |&(l, _)| l)
            .is_ok()
    }

    /// The smallest label.
    pub fn smallest_label(&self) -> Label {
        self.agents[0].0
    }

    /// The start node of `label`, if present.
    pub fn node_of(&self, label: Label) -> Option<NodeId> {
        self.agents
            .binary_search_by_key(&label, |&(l, _)| l)
            .ok()
            .map(|i| self.agents[i].1)
    }

    /// The *central node* `v_h`: the start node of the smallest label
    /// (paper §4.2).
    pub fn central_node(&self) -> NodeId {
        self.agents[0].1
    }

    /// `rank_h(L)`: the number of labels smaller than `label`, or `None` if
    /// the label is not in the configuration.
    pub fn rank(&self, label: Label) -> Option<usize> {
        self.agents.binary_search_by_key(&label, |&(l, _)| l).ok()
    }

    /// `path_h(L)`: the lexicographically smallest shortest path from the
    /// start node of `label` to the central node, or `None` if the label is
    /// absent.
    pub fn path_to_central(&self, label: Label) -> Option<Vec<Port>> {
        let from = self.node_of(label)?;
        Some(algo::lex_smallest_shortest_path(
            &self.graph,
            from,
            self.central_node(),
        ))
    }

    /// The length of the binary representation of the smallest label — the
    /// paper's `ℓ`, which its time bounds are polynomial in.
    pub fn smallest_label_bit_len(&self) -> u32 {
        // Time bounds depend on the smallest length over the team, which for
        // positive integers is achieved by the smallest label... not in
        // general (e.g. 8 is longer than 7), so take the minimum explicitly.
        self.labels().map(Label::bit_len).min().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    fn ring_cfg() -> InitialConfiguration {
        InitialConfiguration::new(
            generators::ring(6),
            vec![
                (label(5), NodeId::new(1)),
                (label(3), NodeId::new(4)),
                (label(12), NodeId::new(0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn label_zero_rejected() {
        assert!(Label::new(0).is_none());
    }

    #[test]
    fn label_bits_msb_first() {
        assert_eq!(label(1).bits(), vec![true]);
        assert_eq!(label(5).bits(), vec![true, false, true]);
        assert_eq!(label(8).bit_len(), 4);
    }

    #[test]
    fn agents_sorted_by_label() {
        let cfg = ring_cfg();
        let labels: Vec<u64> = cfg.labels().map(Label::value).collect();
        assert_eq!(labels, vec![3, 5, 12]);
        assert_eq!(cfg.smallest_label(), label(3));
        assert_eq!(cfg.central_node(), NodeId::new(4));
    }

    #[test]
    fn ranks() {
        let cfg = ring_cfg();
        assert_eq!(cfg.rank(label(3)), Some(0));
        assert_eq!(cfg.rank(label(5)), Some(1));
        assert_eq!(cfg.rank(label(12)), Some(2));
        assert_eq!(cfg.rank(label(7)), None);
    }

    #[test]
    fn path_to_central_is_shortest() {
        let cfg = ring_cfg();
        let p = cfg.path_to_central(label(5)).unwrap();
        assert_eq!(p.len(), 3); // node 1 -> node 4 on a 6-ring
        assert!(cfg.path_to_central(label(99)).is_none());
        assert!(cfg.path_to_central(label(3)).unwrap().is_empty());
    }

    #[test]
    fn rejects_shared_start() {
        let err = InitialConfiguration::new(
            generators::ring(4),
            vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(0))],
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::SharedStart);
    }

    #[test]
    fn rejects_duplicate_label() {
        let err = InitialConfiguration::new(
            generators::ring(4),
            vec![(label(1), NodeId::new(0)), (label(1), NodeId::new(2))],
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateLabel);
    }

    #[test]
    fn rejects_too_few_agents() {
        let err = InitialConfiguration::new(generators::ring(4), vec![(label(1), NodeId::new(0))])
            .unwrap_err();
        assert_eq!(err, ConfigError::TooFewAgents);
    }

    #[test]
    fn rejects_more_agents_than_nodes() {
        let err = InitialConfiguration::new(
            generators::path(2),
            vec![
                (label(1), NodeId::new(0)),
                (label(2), NodeId::new(1)),
                (label(3), NodeId::new(2)),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::StartOutOfRange);
    }

    #[test]
    fn smallest_bit_len_is_min_over_team() {
        let cfg = InitialConfiguration::new(
            generators::ring(6),
            vec![(label(7), NodeId::new(0)), (label(8), NodeId::new(2))],
        )
        .unwrap();
        // 7 = 111 (3 bits) is smaller than 8 = 1000 (4 bits): ℓ = 3.
        assert_eq!(cfg.smallest_label_bit_len(), 3);
    }
}
