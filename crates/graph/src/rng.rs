//! A tiny deterministic random number generator.
//!
//! The library needs reproducible pseudo-randomness in two places: the
//! randomized graph generators and the pseudorandom universal-exploration
//! sequences. Determinism across platforms and dependency upgrades is a
//! *correctness* requirement (all agents must derive the identical
//! sequence), so rather than depending on an external crate whose stream
//! might change between versions, we implement the public-domain
//! xoshiro256** generator seeded through SplitMix64.
//!
//! # Example
//!
//! ```
//! use nochatter_graph::rng::Rng;
//!
//! let mut a = Rng::seed_from(42);
//! let mut b = Rng::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // bit-reproducible
//! let x = a.range(10);
//! assert!(x < 10);
//! ```

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// MurmurHash3's 64-bit finalizer: a fast, well-mixed bijection on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// Derives an independent seed from a root seed and a list of salts.
///
/// This is the one sanctioned way to split a campaign-level master seed
/// into per-instance streams (one per generated graph, scenario, or port
/// shuffle): every distinct salt list yields a statistically independent
/// seed, while the same `(root, salts)` pair always yields the same seed —
/// on every platform, forever. Never reuse the root seed directly for two
/// different purposes; derive instead.
///
/// # Example
///
/// ```
/// use nochatter_graph::rng::derive_seed;
///
/// let a = derive_seed(42, &[1, 6]);
/// assert_eq!(a, derive_seed(42, &[1, 6])); // reproducible
/// assert_ne!(a, derive_seed(42, &[1, 7])); // salts matter
/// assert_ne!(a, derive_seed(43, &[1, 6])); // root matters
/// assert_ne!(a, 42); // never the identity
/// ```
pub fn derive_seed(root: u64, salts: &[u64]) -> u64 {
    let mut state = root;
    for (i, &salt) in salts.iter().enumerate() {
        // Advance the walk, then absorb the salt (position-dependently, so
        // permuted salt lists derive different seeds).
        let step = splitmix64(&mut state);
        state = step ^ mix64(salt.wrapping_add(i as u64 + 1));
    }
    splitmix64(&mut state)
}

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** must not be seeded with all zeros; SplitMix64 cannot
        // produce four consecutive zeros, but keep the guard for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.range(hi - lo)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range(slice.len() as u64) as usize])
        }
    }

    /// Derives an independent generator; useful to give each subsystem its
    /// own stream from one master seed.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_respects_bound() {
        let mut r = Rng::seed_from(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.range(bound) < bound);
            }
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = Rng::seed_from(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "range bound must be positive")]
    fn range_zero_panics() {
        Rng::seed_from(0).range(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::seed_from(6);
        assert_eq!(r.choose::<u32>(&[]), None);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = Rng::seed_from(9);
        let mut f1 = base.fork();
        let mut f2 = base.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn same_seed_same_generated_graph() {
        use crate::generators;
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(
                generators::random_tree(9, seed),
                generators::random_tree(9, seed)
            );
            assert_eq!(
                generators::random_connected(9, 4, seed),
                generators::random_connected(9, 4, seed)
            );
            let base = generators::grid(3, 3);
            assert_eq!(
                generators::with_shuffled_ports(&base, seed),
                generators::with_shuffled_ports(&base, seed)
            );
        }
    }

    #[test]
    fn different_seeds_give_different_random_graphs() {
        use crate::generators;
        // Not guaranteed for every pair, but these seeds must diverge
        // somewhere across the sweep or the generator is ignoring its seed.
        let distinct = (0u64..8)
            .map(|seed| generators::random_connected(10, 5, seed))
            .collect::<Vec<_>>();
        assert!(
            distinct.windows(2).any(|w| w[0] != w[1]),
            "random_connected ignored its seed"
        );
    }

    #[test]
    fn same_seed_same_initial_configuration() {
        use crate::{generators, InitialConfiguration, Label, NodeId};
        let build = |seed: u64| {
            let g = generators::random_connected(8, 3, seed);
            let mut rng = Rng::seed_from(seed);
            let mut nodes: Vec<u32> = (0..g.node_count() as u32).collect();
            rng.shuffle(&mut nodes);
            let agents = nodes
                .iter()
                .take(3)
                .enumerate()
                .map(|(i, &v)| (Label::new(i as u64 + 1).unwrap(), NodeId::new(v)))
                .collect();
            InitialConfiguration::new(g, agents).unwrap()
        };
        for seed in [3u64, 17, 2026] {
            assert_eq!(build(seed), build(seed));
        }
    }

    #[test]
    fn pinned_stream_golden_values() {
        // Golden outputs for seed 42: the exploration sequences and
        // generated graphs derive from this stream, so any change to the
        // generator silently invalidates recorded experiments. Computed
        // once from this implementation of xoshiro256** + SplitMix64
        // seeding; must never change across platforms or refactors.
        let mut r = Rng::seed_from(42);
        let got: [u64; 4] = std::array::from_fn(|_| r.next_u64());
        assert_eq!(
            got,
            [
                1546998764402558742,
                6990951692964543102,
                12544586762248559009,
                17057574109182124193
            ]
        );
    }

    #[test]
    fn derive_seed_is_stable_and_sensitive() {
        // Pinned values: campaign reproducibility depends on this function
        // never changing (per-scenario seeds derive from it).
        assert_eq!(derive_seed(42, &[]), 13679457532755275413);
        assert_eq!(derive_seed(42, &[0]), 6308137256161667071);
        assert_eq!(derive_seed(42, &[0, 1]), 2764847074884493584);
        // Order and length sensitivity.
        assert_ne!(derive_seed(7, &[1, 2]), derive_seed(7, &[2, 1]));
        assert_ne!(derive_seed(7, &[1]), derive_seed(7, &[1, 0]));
        assert_ne!(derive_seed(7, &[0]), derive_seed(7, &[0, 0]));
    }

    #[test]
    fn derive_seed_spreads_over_salt_space() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0..16u64 {
            for b in 0..16u64 {
                seen.insert(derive_seed(5, &[a, b]));
            }
        }
        assert_eq!(seen.len(), 256, "derived seeds must not collide");
    }

    #[test]
    fn known_first_output() {
        // Pin the stream so accidental algorithm changes are caught: the
        // exploration sequences derived from this generator are part of the
        // reproducibility contract.
        let mut r = Rng::seed_from(0);
        let first = r.next_u64();
        let mut r2 = Rng::seed_from(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, 0);
    }
}
