//! Graph algorithms used by the simulator and the gathering algorithms'
//! *ground-truth* side (distance computations, connectivity, canonical
//! shortest paths).
//!
//! Agents themselves never call these on the real network — anonymity
//! forbids it. They are used (a) to validate generated graphs, (b) by the
//! engine and tests to assert invariants, and (c) on the *hypothetical*
//! configurations `φ_h` of the unknown-upper-bound algorithm, which every
//! agent knows completely by construction (paper §4.2: `path_h`, `rank_h`).

use crate::graph::{Graph, NodeId, Port};

/// Breadth-first distances from `from` to every node; unreachable nodes get
/// `u32::MAX`.
///
/// # Example
///
/// ```
/// use nochatter_graph::{algo, generators, NodeId};
///
/// let g = generators::path(4);
/// let d = algo::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d, vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(graph: &Graph, from: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[from.index()] = 0;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (v, _) in graph.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether the graph is connected.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return false;
    }
    bfs_distances(graph, NodeId::new(0))
        .iter()
        .all(|&d| d != u32::MAX)
}

/// The diameter (largest pairwise distance).
///
/// # Panics
///
/// Panics if the graph is disconnected (validated graphs never are).
pub fn diameter(graph: &Graph) -> u32 {
    graph
        .nodes()
        .map(|u| {
            *bfs_distances(graph, u)
                .iter()
                .max()
                .expect("non-empty graph")
        })
        .max()
        .expect("non-empty graph")
}

/// The distance between two nodes.
///
/// # Panics
///
/// Panics if `to` is unreachable from `from` (cannot happen on validated
/// graphs).
pub fn distance(graph: &Graph, from: NodeId, to: NodeId) -> u32 {
    let d = bfs_distances(graph, from)[to.index()];
    assert_ne!(d, u32::MAX, "nodes not connected");
    d
}

/// The lexicographically smallest shortest path from `from` to `to`, as a
/// port sequence (paper §4.2, the `path_h(L)` function).
///
/// Among all shortest paths, the one whose port sequence is smallest in
/// lexicographic order is unique and computable greedily: at each step take
/// the smallest port that stays on *some* shortest path.
///
/// # Example
///
/// ```
/// use nochatter_graph::{algo, generators, NodeId};
///
/// let g = generators::ring(5);
/// let p = algo::lex_smallest_shortest_path(&g, NodeId::new(0), NodeId::new(2));
/// assert_eq!(p.len(), 2);
/// ```
pub fn lex_smallest_shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Vec<Port> {
    let dist_to = bfs_distances(graph, to);
    assert_ne!(dist_to[from.index()], u32::MAX, "nodes not connected");
    let mut path = Vec::with_capacity(dist_to[from.index()] as usize);
    let mut cur = from;
    while cur != to {
        let need = dist_to[cur.index()] - 1;
        let mut chosen = None;
        for p in 0..graph.degree(cur) {
            let (v, _) = graph
                .neighbor(cur, Port::new(p))
                .expect("port within degree");
            if dist_to[v.index()] == need {
                chosen = Some((Port::new(p), v));
                break;
            }
        }
        let (port, next) = chosen.expect("BFS guarantees a descending neighbor");
        path.push(port);
        cur = next;
    }
    path
}

/// Follows a port path from `from`; returns the nodes visited (including
/// `from`) and stops early if a port does not exist.
pub fn follow_path(graph: &Graph, from: NodeId, path: &[Port]) -> Vec<NodeId> {
    let mut nodes = vec![from];
    let mut cur = from;
    for &p in path {
        match graph.neighbor(cur, p) {
            Some((v, _)) => {
                cur = v;
                nodes.push(v);
            }
            None => break,
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_ring() {
        let g = generators::ring(6);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn diameter_of_standard_graphs() {
        assert_eq!(diameter(&generators::ring(6)), 3);
        assert_eq!(diameter(&generators::path(5)), 4);
        assert_eq!(diameter(&generators::complete(4)), 1);
        assert_eq!(diameter(&generators::star(5)), 2);
    }

    #[test]
    fn lex_path_is_shortest() {
        let g = generators::torus(3, 3);
        for u in g.nodes() {
            for v in g.nodes() {
                let p = lex_smallest_shortest_path(&g, u, v);
                assert_eq!(p.len() as u32, distance(&g, u, v));
                let visited = follow_path(&g, u, &p);
                assert_eq!(*visited.last().unwrap(), v);
            }
        }
    }

    #[test]
    fn lex_path_is_lexicographically_minimal() {
        // On a complete graph every pair is adjacent; the lex-smallest path
        // is the single smallest port leading there.
        let g = generators::complete(4);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let p = lex_smallest_shortest_path(&g, u, v);
                assert_eq!(p.len(), 1);
                // No smaller port reaches v.
                for q in 0..p[0].number() {
                    let (w, _) = g.neighbor(u, Port::new(q)).unwrap();
                    assert_ne!(w, v);
                }
            }
        }
    }

    #[test]
    fn follow_path_stops_at_missing_port() {
        let g = generators::path(3);
        // Node 0 has degree 1, so port 1 does not exist.
        let visited = follow_path(&g, NodeId::new(0), &[Port::new(1), Port::new(0)]);
        assert_eq!(visited, vec![NodeId::new(0)]);
    }

    #[test]
    fn empty_path_to_self() {
        let g = generators::ring(4);
        let p = lex_smallest_shortest_path(&g, NodeId::new(2), NodeId::new(2));
        assert!(p.is_empty());
    }
}
