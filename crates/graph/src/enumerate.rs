//! Exhaustive enumeration of all connected port-labeled graphs of a small
//! size.
//!
//! Two distinct uses:
//!
//! * certifying *genuinely universal* exploration sequences: a sequence
//!   verified against every graph produced by [`connected_graphs`] for all
//!   sizes `2..=n` is a true UXS for that size class (paper §2, `EXPLO`);
//! * realizing the paper's recursive enumeration `Ω` of initial
//!   configurations (§4.2) for the unknown-upper-bound algorithm.
//!
//! The enumeration is by brute force over edge subsets and per-node port
//! permutations; it is intentionally restricted to `n <= 4`, beyond which
//! the count explodes (and the unknown-bound algorithm that consumes it is
//! exponential anyway — the paper presents it as a feasibility result).
//!
//! # Example
//!
//! ```
//! use nochatter_graph::enumerate;
//!
//! // The only connected port-labeled graph on 2 nodes is a single edge.
//! assert_eq!(enumerate::connected_graphs(2).len(), 1);
//! // Three nodes: 3 paths (choice of center) × 2 port orders at the center,
//! // plus the triangle with 2 port orders at each of the 3 nodes: 6 + 8.
//! assert_eq!(enumerate::connected_graphs(3).len(), 14);
//! ```

use crate::graph::{Graph, GraphBuilder};

/// Maximum size accepted by [`connected_graphs`].
pub const MAX_EXHAUSTIVE_N: u32 = 4;

/// All permutations of `0..k` in lexicographic order.
fn permutations(k: usize) -> Vec<Vec<u32>> {
    let mut result = Vec::new();
    let mut cur: Vec<u32> = (0..k as u32).collect();
    loop {
        result.push(cur.clone());
        // Next lexicographic permutation.
        let Some(i) = (0..k.saturating_sub(1))
            .rev()
            .find(|&i| cur[i] < cur[i + 1])
        else {
            break;
        };
        let j = (i + 1..k).rev().find(|&j| cur[j] > cur[i]).expect("exists");
        cur.swap(i, j);
        cur[i + 1..].reverse();
    }
    result
}

/// Every connected port-labeled simple graph on exactly `n` nodes
/// (`1 <= n <= 4`), including all port numberings. Node identifiers are
/// significant (the output enumerates *labeled* graphs), which is what both
/// UXS certification (all start nodes) and configuration enumeration need.
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_EXHAUSTIVE_N`.
pub fn connected_graphs(n: u32) -> Vec<Graph> {
    assert!(n >= 1, "need at least one node");
    assert!(
        n <= MAX_EXHAUSTIVE_N,
        "exhaustive enumeration capped at n = {MAX_EXHAUSTIVE_N}"
    );
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    let m = pairs.len();
    let mut graphs = Vec::new();
    for mask in 0u32..(1 << m) {
        let chosen: Vec<(u32, u32)> = (0..m)
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| pairs[i])
            .collect();
        if chosen.len() + 1 < n as usize {
            continue; // cannot be connected
        }
        // Incident edge indices per node, in pair order.
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n as usize];
        for (i, &(u, v)) in chosen.iter().enumerate() {
            incident[u as usize].push(i);
            incident[v as usize].push(i);
        }
        // Quick connectivity check on the topology before expanding port
        // numberings.
        if !topology_connected(n, &chosen) {
            continue;
        }
        // All combinations of per-node port permutations. perm_choices[u] is
        // the list of candidate assignments: ports[j] is the port of the
        // j-th incident edge.
        let perm_choices: Vec<Vec<Vec<u32>>> =
            incident.iter().map(|inc| permutations(inc.len())).collect();
        let mut idx = vec![0usize; n as usize];
        loop {
            let mut b = GraphBuilder::new(n);
            for (i, &(u, v)) in chosen.iter().enumerate() {
                let pu = port_of(
                    &incident[u as usize],
                    &perm_choices[u as usize][idx[u as usize]],
                    i,
                );
                let pv = port_of(
                    &incident[v as usize],
                    &perm_choices[v as usize][idx[v as usize]],
                    i,
                );
                b.edge(u, pu, v, pv);
            }
            graphs.push(b.build().expect("constructed graph is valid"));
            // Odometer increment over idx.
            let mut carry = true;
            for u in 0..n as usize {
                if !carry {
                    break;
                }
                idx[u] += 1;
                if idx[u] < perm_choices[u].len() {
                    carry = false;
                } else {
                    idx[u] = 0;
                }
            }
            if carry {
                break;
            }
        }
    }
    graphs
}

/// All connected port-labeled graphs of every size in `2..=n`.
///
/// # Panics
///
/// Panics if `n < 2` or `n > MAX_EXHAUSTIVE_N`.
pub fn connected_graphs_up_to(n: u32) -> Vec<Graph> {
    assert!(n >= 2, "need at least two nodes");
    (2..=n).flat_map(connected_graphs).collect()
}

fn port_of(incident: &[usize], perm: &[u32], edge: usize) -> u32 {
    let j = incident
        .iter()
        .position(|&e| e == edge)
        .expect("edge is incident");
    perm[j]
}

fn topology_connected(n: u32, edges: &[(u32, u32)]) -> bool {
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut x = x;
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    let r0 = find(&mut parent, 0);
    (1..n).all(|x| find(&mut parent, x) == r0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn permutations_count_and_uniqueness() {
        for k in 0..5 {
            let perms = permutations(k);
            let expected: usize = (1..=k).product::<usize>().max(1);
            assert_eq!(perms.len(), expected);
            let set: std::collections::HashSet<_> = perms.iter().collect();
            assert_eq!(set.len(), perms.len());
        }
    }

    #[test]
    fn single_node_graph() {
        let gs = connected_graphs(1);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].node_count(), 1);
    }

    #[test]
    fn two_node_unique() {
        assert_eq!(connected_graphs(2).len(), 1);
    }

    #[test]
    fn three_node_count() {
        // 3 paths (choice of the middle node) × 2 port orders at the middle
        // node (endpoints have degree 1, hence no freedom) = 6, plus the
        // triangle with 2 port orders at each of its 3 degree-2 nodes = 8.
        let gs = connected_graphs(3);
        for g in &gs {
            assert_eq!(g.node_count(), 3);
            assert!(algo::is_connected(g));
        }
        let mut keys: Vec<String> = gs.iter().map(|g| format!("{g:?}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), gs.len(), "no duplicate graphs");
        assert_eq!(gs.len(), 14);
    }

    #[test]
    fn four_node_graphs_valid() {
        let gs = connected_graphs(4);
        assert!(!gs.is_empty());
        for g in &gs {
            assert_eq!(g.node_count(), 4);
            assert!(algo::is_connected(g));
        }
    }

    #[test]
    fn up_to_collects_all_sizes() {
        let gs = connected_graphs_up_to(3);
        assert!(gs.iter().any(|g| g.node_count() == 2));
        assert!(gs.iter().any(|g| g.node_count() == 3));
        assert!(gs.iter().all(|g| g.node_count() <= 3));
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn too_large_panics() {
        connected_graphs(5);
    }
}
